"""Stabilized configurations and their small-value characterization (Section 5).

A configuration ``rho`` is *(T, F)-stabilized* when every configuration
reachable from it populates only states of ``F``.  Lemma 5.1 identifies these
configurations with the 0-output-stable configurations of a protocol (taking
``F = gamma^{-1}({0})``).  Lemma 5.4 — the key tool of Section 5 — shows that
a stabilized configuration is characterized by its *small values*: if ``rho``
is stabilized and ``R`` is the set of states where ``rho`` is below the
Rackoff threshold ``h``, then **every** configuration ``alpha`` with
``alpha|_R <= rho|_R`` is stabilized too.

This module implements:

* :func:`is_stabilized` — an exact test using backward coverability
  (a configuration is stabilized iff no forbidden unit configuration is
  coverable from it),
* :func:`violating_state` — a forbidden state reachable with positive count,
  with a witness word,
* :class:`StabilizationCertificate` — the Lemma 5.4 certificate (the
  restriction ``rho|_R``) and its ``implies_stabilized`` test,
* :func:`lift_restricted_word` — Lemma 5.2: lifting a run of ``T|_Q`` to a run
  of ``T`` when the states outside ``Q`` hold enough agents.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.configuration import Configuration, State
from ..core.petrinet import PetriNet
from ..core.transition import Transition
from .coverability import backward_coverability, rackoff_stabilization_threshold

__all__ = [
    "is_stabilized",
    "violating_state",
    "StabilizationCertificate",
    "stabilization_certificate",
    "lift_restricted_word",
]


def is_stabilized(
    net: PetriNet,
    configuration: Configuration,
    allowed_states: Iterable[State],
) -> bool:
    """Decide whether ``configuration`` is ``(T, F)``-stabilized.

    ``configuration`` is stabilized iff for every state ``p`` outside
    ``allowed_states``, the unit configuration ``p`` is **not** coverable from
    it.  Backward coverability makes this an exact, always-terminating test.
    """
    allowed = set(allowed_states)
    for state in net.states:
        if state in allowed:
            continue
        if configuration[state] > 0:
            return False
        if backward_coverability(net, configuration, Configuration.unit(state)):
            return False
    return True


def violating_state(
    net: PetriNet,
    configuration: Configuration,
    allowed_states: Iterable[State],
    max_nodes: Optional[int] = None,
) -> Optional[Tuple[State, List[Transition]]]:
    """A forbidden state reachable with positive count, with a covering witness.

    Returns ``None`` when the configuration is stabilized.  The witness word
    is a shortest covering word found by forward search (so the instance
    should be small or conservative); its length can be compared against the
    Rackoff bound of Lemma 5.3.
    """
    allowed = set(allowed_states)
    for state in net.states:
        if state in allowed:
            continue
        target = Configuration.unit(state)
        if not backward_coverability(net, configuration, target):
            continue
        witness = net.find_covering_path(configuration, target, max_nodes=max_nodes)
        if witness is None:
            # Coverable but the forward search budget was too small; report
            # the state with an empty witness rather than hiding the violation.
            return state, []
        return state, witness
    return None


class StabilizationCertificate:
    """The Lemma 5.4 certificate attached to a stabilized configuration.

    Attributes
    ----------
    net, allowed_states:
        The Petri net ``T`` and the set ``F``.
    configuration:
        The stabilized configuration ``rho`` the certificate was built from.
    threshold:
        The value ``h`` used (must satisfy ``h >= ||T||_inf (1+||T||_inf)^{|P|^|P|}``).
    small_states:
        The set ``R = {p : rho(p) < h}``.

    The main operation is :meth:`implies_stabilized`: any configuration that
    is below ``rho`` on ``R`` is guaranteed stabilized — no exploration
    needed.  This is exactly how Section 8 transfers stability from ``mu`` to
    ``mu + eta``.
    """

    def __init__(
        self,
        net: PetriNet,
        configuration: Configuration,
        allowed_states: FrozenSet[State],
        threshold: int,
    ):
        self.net = net
        self.configuration = configuration
        self.allowed_states = allowed_states
        self.threshold = threshold
        self.small_states: FrozenSet[State] = frozenset(
            state for state in net.states if configuration[state] < threshold
        )

    def implies_stabilized(self, candidate: Configuration) -> bool:
        """True if Lemma 5.4 certifies that ``candidate`` is stabilized.

        The test is simply ``candidate|_R <= rho|_R``; states outside ``R``
        (where ``rho`` already holds at least ``h`` agents) are unconstrained.
        """
        return all(
            candidate[state] <= self.configuration[state] for state in self.small_states
        )

    def __repr__(self) -> str:
        # The Rackoff threshold is doubly exponential; print its bit length
        # rather than the (possibly enormous) value itself.
        return (
            f"StabilizationCertificate(threshold~2^{self.threshold.bit_length() - 1}, "
            f"small_states={sorted(map(str, self.small_states))})"
        )


def stabilization_certificate(
    net: PetriNet,
    configuration: Configuration,
    allowed_states: Iterable[State],
    threshold: Optional[int] = None,
    check: bool = True,
) -> StabilizationCertificate:
    """Build the Lemma 5.4 certificate for a stabilized configuration.

    Parameters
    ----------
    net, configuration, allowed_states:
        The Petri net ``T``, the configuration ``rho`` and the set ``F``.
    threshold:
        The value ``h``; defaults to the Rackoff threshold
        ``||T||_inf (1 + ||T||_inf)^{|P|^|P|}`` of Lemma 5.4.  Any larger value
        is also sound (it only enlarges ``R``... note: a *larger* ``h`` makes
        ``R`` larger hence the certificate weaker but still sound).
    check:
        When True (default), verify that ``configuration`` is indeed
        stabilized before issuing the certificate.

    Raises
    ------
    ValueError
        If ``check`` is True and the configuration is not stabilized, or if a
        threshold below the Rackoff threshold is supplied.
    """
    allowed = frozenset(allowed_states)
    minimum = rackoff_stabilization_threshold(net)
    if threshold is None:
        threshold = minimum
    elif threshold < minimum:
        raise ValueError(
            f"threshold {threshold} is below the Rackoff threshold {minimum}; "
            "Lemma 5.4 would not apply"
        )
    if check and not is_stabilized(net, configuration, allowed):
        raise ValueError("cannot certify a configuration that is not stabilized")
    return StabilizationCertificate(net, configuration, allowed, threshold)


def lift_restricted_word(
    net: PetriNet,
    configuration: Configuration,
    word: Sequence[Transition],
    restricted_states: Iterable[State],
) -> Configuration:
    """Lemma 5.2: lift a run of ``T|_Q`` to a run of ``T``.

    If ``configuration|_Q --word|_Q--> rho`` and ``configuration(p) >=
    |word| * ||T||_inf`` for every ``p`` outside ``Q``, then the *unrestricted*
    word is firable from ``configuration`` and the result ``beta`` satisfies
    ``beta|_Q = rho`` and ``beta(p) >= configuration(p) - |word| ||T||_inf``
    outside ``Q``.

    The function checks the hypothesis, fires the unrestricted word and
    returns the resulting configuration.

    Raises
    ------
    ValueError
        If the quantitative hypothesis of the lemma does not hold (in which
        case firing could fail) or if, despite the hypothesis, some step is
        not enabled (which would indicate a bug and is asserted against).
    """
    restricted = set(restricted_states)
    required = len(word) * net.max_value
    for state in net.states:
        if state in restricted:
            continue
        if configuration[state] < required:
            raise ValueError(
                f"Lemma 5.2 hypothesis fails: state {state!r} holds "
                f"{configuration[state]} < {required} agents"
            )
    current = configuration
    for transition in word:
        successor = transition.fire_if_enabled(current)
        if successor is None:
            raise ValueError(
                "Lemma 5.2 lifting failed: a transition of the word is not enabled; "
                "the restricted run does not match the word"
            )
        current = successor
    return current
