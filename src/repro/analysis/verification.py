"""Verification of protocols on bounded populations.

Deciding whether a protocol stably computes a predicate for *all* inputs is
the well-specification problem, which is Ackermann-complete in general (see
the paper's introduction).  The experiments only need exactness on bounded
populations: this module exhaustively checks the stable-computation condition
of Section 2 for every input configuration up to a given number of agents,
using the explicit reachability graph and the output-stability machinery of
:mod:`repro.core.semantics`.

The main entry points are:

* :func:`check_protocol` — verify a protocol against a predicate for all
  inputs of size at most ``max_agents``; returns a detailed report,
* :func:`find_counterexample` — stop at the first violated input,
* :class:`VerificationReport` / :class:`InputVerdict` — structured results
  consumed by the tests and the E8 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.configuration import Configuration, State
from ..core.petrinet import ExplorationLimitError
from ..core.predicates import Predicate
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from ..core.semantics import always_eventually_stable
from .reachability import enumerate_configurations_up_to

__all__ = [
    "InputVerdict",
    "VerificationReport",
    "verify_input",
    "check_protocol",
    "find_counterexample",
]


@dataclass
class InputVerdict:
    """The outcome of checking a single input configuration.

    Attributes
    ----------
    inputs:
        The input configuration ``rho in N^I``.
    expected:
        The predicate value ``phi(rho)``.
    computed:
        The value the protocol stably computes on this input, or ``None`` if
        it does not stabilize to a consensus (ill-specified input).
    correct:
        ``computed == expected``.
    explored:
        The number of configurations explored for this input.
    """

    inputs: Configuration
    expected: int
    computed: Optional[int]
    correct: bool
    explored: int

    def __repr__(self) -> str:
        status = "ok" if self.correct else "FAIL"
        return (
            f"InputVerdict({self.inputs.pretty()}: expected={self.expected}, "
            f"computed={self.computed}, {status})"
        )


@dataclass
class VerificationReport:
    """Aggregate result of :func:`check_protocol`."""

    protocol_name: str
    max_agents: int
    verdicts: List[InputVerdict] = field(default_factory=list)

    @property
    def num_inputs(self) -> int:
        """The number of input configurations checked."""
        return len(self.verdicts)

    @property
    def num_failures(self) -> int:
        """The number of inputs on which the protocol is wrong or ill-specified."""
        return sum(1 for verdict in self.verdicts if not verdict.correct)

    @property
    def all_correct(self) -> bool:
        """True if the protocol stably computes the predicate on every checked input."""
        return self.num_failures == 0

    @property
    def total_explored(self) -> int:
        """Total number of configurations explored over all inputs."""
        return sum(verdict.explored for verdict in self.verdicts)

    def failures(self) -> List[InputVerdict]:
        """The verdicts of the failing inputs."""
        return [verdict for verdict in self.verdicts if not verdict.correct]

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "PASS" if self.all_correct else "FAIL"
        return (
            f"[{status}] {self.protocol_name}: {self.num_inputs} inputs up to "
            f"{self.max_agents} agents, {self.num_failures} failures, "
            f"{self.total_explored} configurations explored"
        )


def verify_input(
    protocol: Protocol,
    inputs: Configuration,
    expected: int,
    max_nodes: Optional[int] = None,
) -> InputVerdict:
    """Check the stable-computation condition for a single input configuration.

    The protocol must be Petri-net based.  The reachability graph from the
    initial configuration ``rho_L + inputs|_P`` is built explicitly, and the
    paper's condition — from every reachable configuration, a
    ``phi(rho)``-output-stable configuration remains reachable — is evaluated
    exactly on that graph.
    """
    net = protocol.petri_net
    if net is None:
        raise ValueError("verification requires a Petri-net based protocol")
    root = protocol.initial_configuration(inputs)
    graph = net.reachability_graph([root], max_nodes=max_nodes)

    computed: Optional[int] = None
    for value in (OUTPUT_ONE, OUTPUT_ZERO):
        if always_eventually_stable(graph, protocol, root, value):
            computed = value
            break
    return InputVerdict(
        inputs=inputs,
        expected=expected,
        computed=computed,
        correct=(computed == expected),
        explored=len(graph),
    )


def check_protocol(
    protocol: Protocol,
    predicate: Predicate,
    max_agents: int,
    max_nodes: Optional[int] = None,
    inputs: Optional[Iterable[Configuration]] = None,
) -> VerificationReport:
    """Verify that ``protocol`` stably computes ``predicate`` on bounded inputs.

    Parameters
    ----------
    protocol:
        The protocol under test (must be Petri-net based).
    predicate:
        The predicate it is supposed to stably compute.
    max_agents:
        Check every input configuration with at most this many agents
        (ignored when ``inputs`` is supplied).
    max_nodes:
        Optional per-input exploration budget.
    inputs:
        Optional explicit iterable of input configurations to check instead
        of the exhaustive enumeration.
    """
    report = VerificationReport(
        protocol_name=protocol.name or repr(protocol), max_agents=max_agents
    )
    initial_states = sorted(protocol.initial_states, key=str)
    if inputs is None:
        inputs = enumerate_configurations_up_to(initial_states, max_agents)
    for configuration in inputs:
        expected = predicate.evaluate(configuration)
        verdict = verify_input(protocol, configuration, expected, max_nodes=max_nodes)
        report.verdicts.append(verdict)
    return report


def find_counterexample(
    protocol: Protocol,
    predicate: Predicate,
    max_agents: int,
    max_nodes: Optional[int] = None,
) -> Optional[InputVerdict]:
    """Return the first failing input, or ``None`` if every bounded input passes."""
    initial_states = sorted(protocol.initial_states, key=str)
    for configuration in enumerate_configurations_up_to(initial_states, max_agents):
        expected = predicate.evaluate(configuration)
        verdict = verify_input(protocol, configuration, expected, max_nodes=max_nodes)
        if not verdict.correct:
            return verdict
    return None
