"""T-components and bottom configurations (paper, Section 6).

The *T-component* of a configuration ``rho`` is the set of configurations
``beta`` with ``rho -->* beta -->* rho`` (its mutual-reachability class).  A
configuration is *T-bottom* when its component is finite and every reachable
configuration can come back — i.e. its component is a terminal strongly
connected component of the reachability graph.

Theorem 6.1 states that from any configuration one can reach, with short
words, a configuration ``alpha`` and then a configuration ``beta`` that agree
on a set ``Q`` of places, strictly grow outside ``Q``, and such that
``alpha|_Q`` is ``T|_Q``-bottom with a small component.  This is the
springboard of the Section 8 pumping argument.

This module provides:

* :func:`component_of` / :func:`is_bottom` — exact component computation and
  bottom test by bounded exploration,
* :class:`BottomWitness` and :func:`find_bottom_witness` — a constructive
  search for the tuple ``(sigma, w, Q, alpha, beta)`` of Theorem 6.1 on
  laptop-scale instances (exhaustive over subsets ``Q``, bounded BFS
  elsewhere),
* :func:`theorem_6_1_bound` — the explicit bound ``b`` of the theorem, so that
  benchmark E6 can compare the measured witness sizes against it.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.configuration import Configuration, State
from ..core.petrinet import ExplorationLimitError, PetriNet
from ..core.transition import Transition
from .reachability import condensation_is_bottom, strongly_connected_components

__all__ = [
    "component_of",
    "is_bottom",
    "BottomWitness",
    "find_bottom_witness",
    "theorem_6_1_bound",
    "theorem_6_1_bound_log2",
    "lemma_6_2_word_bound",
]


def component_of(
    net: PetriNet, configuration: Configuration, max_nodes: Optional[int] = None
) -> Set[Configuration]:
    """The T-component of ``configuration``: all ``beta`` with ``rho -->* beta -->* rho``.

    Computed by forward exploration followed by a membership filter (``beta``
    must reach ``rho`` back).  For nets whose forward closure is infinite a
    ``max_nodes`` budget must be supplied; exceeding it raises
    :class:`~repro.core.petrinet.ExplorationLimitError`.
    """
    graph = net.reachability_graph([configuration], max_nodes=max_nodes)
    components = strongly_connected_components(graph)
    for component in components:
        if configuration in component:
            return component
    return {configuration}


def is_bottom(
    net: PetriNet, configuration: Configuration, max_nodes: Optional[int] = None
) -> bool:
    """True if ``configuration`` is T-bottom.

    The component must be finite and every reachable configuration must be
    able to return — equivalently, the forward closure equals the component.
    With a ``max_nodes`` budget, a ``False`` answer may be caused by budget
    exhaustion (an :class:`ExplorationLimitError` is raised in that case so
    the caller can tell the difference).
    """
    graph = net.reachability_graph([configuration], max_nodes=max_nodes)
    for component in strongly_connected_components(graph):
        if configuration in component:
            return len(component) == len(graph.nodes) and condensation_is_bottom(
                graph, component
            )
    return False


class BottomWitness:
    """The tuple produced by Theorem 6.1.

    Attributes
    ----------
    sigma:
        The word reaching ``alpha`` from the initial configuration.
    pump:
        The word ``w`` leading from ``alpha`` to ``beta``.
    places:
        The set ``Q``.
    alpha, beta:
        The two configurations; they agree on ``Q`` and ``beta`` is strictly
        larger outside ``Q``.
    component:
        The ``T|_Q``-component of ``alpha|_Q``.
    """

    def __init__(
        self,
        sigma: Sequence[Transition],
        pump: Sequence[Transition],
        places: FrozenSet[State],
        alpha: Configuration,
        beta: Configuration,
        component: Set[Configuration],
    ):
        self.sigma = list(sigma)
        self.pump = list(pump)
        self.places = places
        self.alpha = alpha
        self.beta = beta
        self.component = component

    @property
    def component_size(self) -> int:
        """The cardinal of the ``T|_Q``-component of ``alpha|_Q``."""
        return len(self.component)

    def check(self, net: PetriNet, origin: Configuration) -> bool:
        """Re-verify every clause of Theorem 6.1 on this witness (used by tests)."""
        try:
            alpha = net.fire_word(origin, self.sigma)
            beta = net.fire_word(alpha, self.pump)
        except ValueError:
            return False
        if alpha != self.alpha or beta != self.beta:
            return False
        if not alpha.agrees_on(beta, self.places):
            return False
        outside = set(net.states) - set(self.places)
        if not all(alpha[state] < beta[state] for state in outside):
            return False
        restricted = net.restrict(self.places)
        return is_bottom(restricted, alpha.restrict(self.places), max_nodes=100000)

    def __repr__(self) -> str:
        return (
            f"BottomWitness(|sigma|={len(self.sigma)}, |w|={len(self.pump)}, "
            f"Q={sorted(map(str, self.places))}, component={self.component_size})"
        )


def find_bottom_witness(
    net: PetriNet,
    origin: Configuration,
    max_nodes: int = 20000,
    max_component_nodes: int = 5000,
) -> Optional[BottomWitness]:
    """Search for a Theorem 6.1 witness ``(sigma, w, Q, alpha, beta)``.

    The theorem guarantees existence with sizes bounded by the (astronomical)
    constant ``b``; this function performs the search on laptop-scale
    instances instead of following the proof's worst-case iteration:

    1. explore the reachability graph from ``origin`` breadth-first (bounded
       by ``max_nodes``),
    2. for every reachable ``alpha`` (in BFS order, so ``sigma`` is short) and
       every subset ``Q`` of places (largest first, so the pump condition is
       as weak as possible), test that ``alpha|_Q`` is ``T|_Q``-bottom with a
       finite component and search a pump word ``w`` to a ``beta`` agreeing on
       ``Q`` and strictly larger outside.

    Returns ``None`` when the budget is exhausted without a witness (which,
    by the theorem, means the budget was too small — not that no witness
    exists).
    """
    try:
        graph = net.reachability_graph([origin], max_nodes=max_nodes)
    except ExplorationLimitError:
        graph = _truncated_graph(net, origin, max_nodes)

    order = _bfs_order(graph, origin)
    parents = _bfs_parents(graph, origin)
    states = sorted(net.states, key=str)

    subsets: List[FrozenSet[State]] = []
    for size in range(len(states), -1, -1):
        for combination in itertools.combinations(states, size):
            subsets.append(frozenset(combination))

    for alpha in order:
        sigma = _path_from_parents(parents, origin, alpha)
        for places in subsets:
            restricted = net.restrict(places)
            alpha_q = alpha.restrict(places)
            try:
                if not is_bottom(restricted, alpha_q, max_nodes=max_component_nodes):
                    continue
                component = component_of(restricted, alpha_q, max_nodes=max_component_nodes)
            except ExplorationLimitError:
                continue
            pump = _find_pump(net, alpha, places, max_nodes=max_nodes)
            if pump is None:
                continue
            beta = net.fire_word(alpha, pump)
            return BottomWitness(sigma, pump, places, alpha, beta, component)
    return None


def _find_pump(
    net: PetriNet,
    alpha: Configuration,
    places: FrozenSet[State],
    max_nodes: int,
) -> Optional[List[Transition]]:
    """A word from ``alpha`` to some ``beta`` equal on ``places`` and strictly larger outside."""
    outside = set(net.states) - set(places)
    if not outside:
        return []

    def is_target(candidate: Configuration) -> bool:
        if not candidate.agrees_on(alpha, places):
            return False
        return all(candidate[state] > alpha[state] for state in outside)

    # BFS limited to max_nodes distinct configurations.
    from collections import deque

    parents: Dict[Configuration, Tuple[Configuration, Transition]] = {}
    visited = {alpha}
    frontier = deque([alpha])
    while frontier:
        current = frontier.popleft()
        for transition, successor in net.successors(current):
            if successor in visited:
                continue
            visited.add(successor)
            parents[successor] = (current, transition)
            if is_target(successor):
                word: List[Transition] = []
                node = successor
                while node != alpha:
                    previous, transition_taken = parents[node]
                    word.append(transition_taken)
                    node = previous
                word.reverse()
                return word
            if len(visited) > max_nodes:
                return None
            frontier.append(successor)
    return None


def _truncated_graph(net: PetriNet, origin: Configuration, max_nodes: int):
    """A bounded prefix of the reachability graph (used when the full one is too big)."""
    from collections import deque

    from ..core.petrinet import ReachabilityGraph

    graph = ReachabilityGraph()
    graph.add_node(origin)
    graph.roots.append(origin)
    frontier = deque([origin])
    while frontier and len(graph) < max_nodes:
        current = frontier.popleft()
        for transition, target in net.successors(current):
            is_new = target not in graph.nodes
            if is_new and len(graph) >= max_nodes:
                continue
            graph.add_edge(current, transition, target)
            if is_new:
                frontier.append(target)
    return graph


def _bfs_order(graph, root: Configuration) -> List[Configuration]:
    from collections import deque

    if root not in graph.nodes:
        return []
    order = [root]
    seen = {root}
    frontier = deque([root])
    while frontier:
        current = frontier.popleft()
        for _, target in graph.successors(current):
            if target not in seen:
                seen.add(target)
                order.append(target)
                frontier.append(target)
    return order


def _bfs_parents(graph, root: Configuration) -> Dict[Configuration, Tuple[Configuration, Transition]]:
    from collections import deque

    parents: Dict[Configuration, Tuple[Configuration, Transition]] = {}
    seen = {root}
    frontier = deque([root])
    while frontier:
        current = frontier.popleft()
        for transition, target in graph.successors(current):
            if target not in seen:
                seen.add(target)
                parents[target] = (current, transition)
                frontier.append(target)
    return parents


def _path_from_parents(parents, root: Configuration, target: Configuration) -> List[Transition]:
    word: List[Transition] = []
    current = target
    while current != root:
        previous, transition = parents[current]
        word.append(transition)
        current = previous
    word.reverse()
    return word


# ----------------------------------------------------------------------
# The explicit bounds of Section 6
# ----------------------------------------------------------------------
def theorem_6_1_bound(net: PetriNet, configuration: Configuration) -> int:
    """The constant ``b`` of Theorem 6.1 (exact value).

    ``b = (4 + 4 ||T||_inf + 2 ||rho||_inf)^{d^d (1 + (2 + d^d)^{d+1})}`` with
    ``d = |P|``.  The theorem guarantees a witness whose word lengths,
    component size and (scaled) configuration norms are all at most ``b``.

    .. warning::
       The exact value is astronomically large: already for ``d = 5`` it has
       on the order of ``10^24`` digits and cannot be materialized.  Use
       :func:`theorem_6_1_bound_log2` for anything beyond ``d = 3``.
    """
    d = net.num_states
    if d == 0:
        return 1
    base = 4 + 4 * net.max_value + 2 * configuration.max_value
    exponent = (d ** d) * (1 + (2 + d ** d) ** (d + 1))
    return base ** exponent


def theorem_6_1_bound_log2(net: PetriNet, configuration: Configuration) -> float:
    """``log2`` of the Theorem 6.1 constant ``b`` (usable for every ``d``)."""
    import math

    d = net.num_states
    if d == 0:
        return 0.0
    base = 4 + 4 * net.max_value + 2 * configuration.max_value
    exponent = (d ** d) * (1 + (2 + d ** d) ** (d + 1))
    return exponent * math.log2(base)


def lemma_6_2_word_bound(
    net: PetriNet,
    configuration: Configuration,
    component_size: int,
    remaining_places: int,
) -> int:
    """The Lemma 6.2 bound on ``|sigma|``: ``(1 + d (1 + s ||T||_inf + ||rho||_inf)^{d^d}) s``.

    ``s`` is the cardinal of the current ``T|_Q``-component and ``d`` the
    number of places outside ``Q``.
    """
    d = remaining_places
    s = component_size
    if d == 0:
        return s
    inner = 1 + s * net.max_value + configuration.max_value
    return (1 + d * inner ** (d ** d)) * s
