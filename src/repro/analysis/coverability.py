"""Coverability of Petri nets: Rackoff's bound, backward coverability, Karp–Miller.

Lemma 5.3 of the paper is Rackoff's 1978 theorem: if a configuration ``rho``
is ``T``-coverable from ``alpha``, then it is coverable by a word of length at
most ``(||rho||_inf + ||T||_inf)^{|P|^|P|}``.  The stabilization analysis of
Section 5 only uses the *bound*; this module additionally implements two
classical decision procedures so that the bound can be compared against actual
shortest covering words (benchmark E4):

* :func:`backward_coverability` — the Abdulla-style backward fixpoint on
  upward-closed sets, which decides coverability exactly,
* :func:`shortest_covering_word` — explicit forward BFS returning a shortest
  witness (exponential, used on small instances only),
* :class:`KarpMillerTree` — the classical coverability tree with
  omega-acceleration, deciding coverability and boundedness.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.configuration import Configuration, State
from ..core.petrinet import PetriNet
from ..core.transition import Transition

__all__ = [
    "rackoff_bound",
    "rackoff_stabilization_threshold",
    "is_coverable",
    "backward_coverability",
    "shortest_covering_word",
    "KarpMillerTree",
    "OMEGA",
]

#: Symbolic "unbounded" marking value used by the Karp–Miller construction.
OMEGA = float("inf")


# ----------------------------------------------------------------------
# Rackoff's bound (Lemma 5.3)
# ----------------------------------------------------------------------
def rackoff_bound(target: Configuration, net: PetriNet, num_states: Optional[int] = None) -> int:
    """The Rackoff bound of Lemma 5.3 on the length of a covering word.

    ``(||target||_inf + ||T||_inf)^{|P|^|P|}`` — doubly exponential in the
    number of places.  Python integers are unbounded so the exact value is
    returned; callers interested only in comparisons should beware that it is
    astronomically large beyond a handful of places.
    """
    d = num_states if num_states is not None else net.num_states
    base = target.max_value + net.max_value
    if base <= 0:
        return 0
    return base ** (d ** d)


def rackoff_stabilization_threshold(net: PetriNet, num_states: Optional[int] = None) -> int:
    """The threshold ``h >= ||T||_inf (1 + ||T||_inf)^{|P|^|P|}`` of Lemma 5.4."""
    d = num_states if num_states is not None else net.num_states
    norm = net.max_value
    return norm * (1 + norm) ** (d ** d)


# ----------------------------------------------------------------------
# Backward coverability (exact decision procedure)
# ----------------------------------------------------------------------
def _minimal_elements(configurations: Iterable[Configuration]) -> List[Configuration]:
    """The minimal elements of a set of configurations w.r.t. the componentwise order."""
    minimal: List[Configuration] = []
    for candidate in sorted(configurations, key=lambda c: (c.size, c.max_value)):
        if not any(existing <= candidate for existing in minimal):
            minimal.append(candidate)
    return minimal


def _predecessor_basis(target: Configuration, transition: Transition) -> Configuration:
    """The minimal configuration from which firing ``transition`` covers ``target``.

    Firing ``t = (pre, post)`` from ``x`` yields ``x - pre + post >= target``
    iff ``x >= pre + (target - post)_+`` componentwise; the right-hand side is
    the returned basis element.
    """
    needed = target.saturating_sub(transition.post)
    return transition.pre + needed


def backward_coverability(
    net: PetriNet,
    source: Configuration,
    target: Configuration,
    max_iterations: Optional[int] = None,
) -> bool:
    """Decide whether ``target`` is coverable from ``source`` (exact, always terminates).

    Implements the classical backward fixpoint on upward-closed sets: start
    from the upward closure of ``target`` and repeatedly add minimal
    predecessors until stabilization (guaranteed by Dickson's lemma), then
    test whether ``source`` is in the closure.
    """
    basis: List[Configuration] = [target]
    iterations = 0
    while True:
        iterations += 1
        if max_iterations is not None and iterations > max_iterations:
            raise RuntimeError(f"backward coverability exceeded {max_iterations} iterations")
        new_elements: List[Configuration] = []
        for element in basis:
            for transition in net.transitions:
                predecessor = _predecessor_basis(element, transition)
                if not any(existing <= predecessor for existing in basis):
                    if not any(existing <= predecessor for existing in new_elements):
                        new_elements.append(predecessor)
        if not new_elements:
            break
        basis = _minimal_elements(basis + new_elements)
    return any(element <= source for element in basis)


def is_coverable(net: PetriNet, source: Configuration, target: Configuration) -> bool:
    """Convenience alias for :func:`backward_coverability`."""
    return backward_coverability(net, source, target)


def shortest_covering_word(
    net: PetriNet,
    source: Configuration,
    target: Configuration,
    max_nodes: Optional[int] = None,
) -> Optional[List[Transition]]:
    """A shortest word ``sigma`` with ``source --sigma--> beta >= target``.

    Explicit forward BFS — exact but exponential; meant for the small
    instances of benchmark E4 where the result is compared against
    :func:`rackoff_bound`.  Returns ``None`` when no covering word is found
    within the optional node budget (for unbounded nets a budget should be
    supplied unless coverability was established beforehand).
    """
    return net.find_covering_path(source, target, max_nodes=max_nodes)


# ----------------------------------------------------------------------
# Karp–Miller coverability tree
# ----------------------------------------------------------------------
class _OmegaConfiguration:
    """A marking with possibly-omega entries (internal to the Karp–Miller tree)."""

    __slots__ = ("entries",)

    def __init__(self, entries: Dict[State, float]):
        self.entries = {state: value for state, value in entries.items() if value != 0}

    @staticmethod
    def from_configuration(configuration: Configuration) -> "_OmegaConfiguration":
        return _OmegaConfiguration({state: count for state, count in configuration.items()})

    def __getitem__(self, state: State) -> float:
        return self.entries.get(state, 0)

    def covers(self, configuration: Configuration) -> bool:
        return all(self[state] >= count for state, count in configuration.items())

    def dominates(self, other: "_OmegaConfiguration") -> bool:
        keys = set(self.entries) | set(other.entries)
        return all(self[state] >= other[state] for state in keys)

    def fire(self, transition: Transition) -> Optional["_OmegaConfiguration"]:
        if not all(self[state] >= count for state, count in transition.pre.items()):
            return None
        entries = dict(self.entries)
        for state, count in transition.pre.items():
            value = entries.get(state, 0)
            entries[state] = value if value == OMEGA else value - count
        for state, count in transition.post.items():
            value = entries.get(state, 0)
            entries[state] = value if value == OMEGA else value + count
        return _OmegaConfiguration(entries)

    def accelerate(self, ancestor: "_OmegaConfiguration") -> "_OmegaConfiguration":
        """Replace by omega every entry strictly larger than in the ancestor."""
        entries = dict(self.entries)
        keys = set(entries) | set(ancestor.entries)
        # Order-insensitive: states absent from `entries` have count 0, never
        # exceed the ancestor, and are never written, so the loop only
        # overwrites existing keys and dict insertion order is unchanged.
        # qa: allow[DET201]
        for state in keys:
            if self[state] > ancestor[state]:
                entries[state] = OMEGA
        return _OmegaConfiguration(entries)

    def key(self) -> FrozenSet:
        return frozenset(self.entries.items())

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{state}: {'w' if value == OMEGA else int(value)}"
            for state, value in sorted(self.entries.items(), key=lambda item: str(item[0]))
        )
        return f"OmegaConfiguration({{{inner}}})"


class KarpMillerTree:
    """The Karp–Miller coverability tree of a Petri net from an initial configuration.

    Provides :meth:`covers` (coverability test) and :meth:`is_bounded`
    (boundedness of the reachability set).  The tree is built eagerly at
    construction time; the number of nodes can be large, so a ``max_nodes``
    budget is accepted.
    """

    def __init__(
        self, net: PetriNet, root: Configuration, max_nodes: Optional[int] = None
    ):
        self.net = net
        self.root = root
        self.nodes: List[_OmegaConfiguration] = []
        self._build(max_nodes)

    def _build(self, max_nodes: Optional[int]) -> None:
        root = _OmegaConfiguration.from_configuration(self.root)
        # Each work item carries its branch (ancestor chain) for acceleration.
        work: deque = deque([(root, [root])])
        seen: Set[FrozenSet] = set()
        while work:
            current, ancestors = work.popleft()
            key = current.key()
            if key in seen:
                continue
            seen.add(key)
            self.nodes.append(current)
            if max_nodes is not None and len(self.nodes) > max_nodes:
                raise RuntimeError(f"Karp-Miller tree exceeded {max_nodes} nodes")
            for transition in self.net.transitions:
                successor = current.fire(transition)
                if successor is None:
                    continue
                for ancestor in ancestors:
                    if successor.dominates(ancestor):
                        successor = successor.accelerate(ancestor)
                work.append((successor, ancestors + [successor]))

    def covers(self, target: Configuration) -> bool:
        """True if some reachable (generalized) marking covers ``target``."""
        return any(node.covers(target) for node in self.nodes)

    def is_bounded(self) -> bool:
        """True if the reachability set from the root is finite (no omega anywhere)."""
        return all(
            all(value != OMEGA for value in node.entries.values()) for node in self.nodes
        )

    def place_is_bounded(self, state: State) -> bool:
        """True if the count of ``state`` stays bounded along every execution."""
        return all(node[state] != OMEGA for node in self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)
