"""Explicit-state reachability utilities.

Helper routines shared by the stability, component and verification analyses:
enumeration of configurations of bounded size, strongly connected components
of reachability graphs, and shortest-distance computations.  Everything here
operates on the explicit :class:`~repro.core.petrinet.ReachabilityGraph`
produced by forward exploration — which is finite for conservative nets and
for explorations truncated by a node budget.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.configuration import Configuration, State
from ..core.petrinet import PetriNet, ReachabilityGraph

__all__ = [
    "enumerate_configurations",
    "enumerate_configurations_up_to",
    "shortest_distances",
    "strongly_connected_components",
    "condensation_is_bottom",
]


def enumerate_configurations(states: Sequence[State], total: int) -> Iterator[Configuration]:
    """Enumerate every configuration over ``states`` with exactly ``total`` agents."""
    states = list(states)
    if not states:
        if total == 0:
            yield Configuration.zero()
        return

    def recurse(index: int, remaining: int, current: Dict[State, int]) -> Iterator[Configuration]:
        if index == len(states) - 1:
            if remaining:
                current[states[index]] = remaining
            yield Configuration(current)
            current.pop(states[index], None)
            return
        for count in range(remaining + 1):
            if count:
                current[states[index]] = count
            yield from recurse(index + 1, remaining - count, current)
            current.pop(states[index], None)

    yield from recurse(0, total, {})


def enumerate_configurations_up_to(
    states: Sequence[State], max_total: int
) -> Iterator[Configuration]:
    """Enumerate every configuration over ``states`` with at most ``max_total`` agents."""
    for total in range(max_total + 1):
        yield from enumerate_configurations(states, total)


def shortest_distances(
    graph: ReachabilityGraph, root: Configuration
) -> Dict[Configuration, int]:
    """BFS distances (in transition firings) from ``root`` within the graph."""
    if root not in graph.nodes:
        return {}
    distances = {root: 0}
    frontier = deque([root])
    while frontier:
        current = frontier.popleft()
        for _, target in graph.successors(current):
            if target not in distances:
                distances[target] = distances[current] + 1
                frontier.append(target)
    return distances


def strongly_connected_components(
    graph: ReachabilityGraph,
) -> List[Set[Configuration]]:
    """Tarjan's algorithm on a reachability graph.

    The returned components are in reverse topological order of the
    condensation (every edge of the condensation goes from a later component
    to an earlier one in the list), which is the order Tarjan naturally emits.
    """
    index_counter = [0]
    stack: List[Configuration] = []
    lowlink: Dict[Configuration, int] = {}
    index: Dict[Configuration, int] = {}
    on_stack: Dict[Configuration, bool] = {}
    components: List[Set[Configuration]] = []

    def strongconnect(node: Configuration) -> None:
        work: List[Tuple[Configuration, Iterator[Tuple[object, Configuration]]]] = [
            (node, iter(graph.successors(node)))
        ]
        index[node] = lowlink[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack[node] = True
        while work:
            current, successor_iterator = work[-1]
            advanced = False
            for _, successor in successor_iterator:
                if successor not in index:
                    index[successor] = lowlink[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if on_stack.get(successor, False):
                    lowlink[current] = min(lowlink[current], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component: Set[Configuration] = set()
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.add(member)
                    if member == current:
                        break
                components.append(component)

    for node in graph.nodes:
        if node not in index:
            strongconnect(node)
    return components


def condensation_is_bottom(
    graph: ReachabilityGraph, component: Set[Configuration]
) -> bool:
    """True if the strongly connected ``component`` has no edge leaving it.

    A configuration is *T-bottom* (paper, Section 6) exactly when its
    T-component is finite and is a bottom component of the condensation of the
    reachability graph — i.e. every reachable configuration can come back.
    """
    for node in component:
        for _, target in graph.successors(node):
            if target not in component:
                return False
    return True
