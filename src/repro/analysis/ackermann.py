"""The Ackermann hierarchy and its inverse.

The previous state-complexity lower bound for counting predicates (Czerner &
Esparza, PODC 2021) is ``Omega(A^{-1}(n))`` states for some Ackermannian
function ``A``; the paper improves it to ``Omega((log log n)^h)`` for every
``h < 1/2``.  To plot/compare the two lower bounds (benchmark E3) we need the
fast-growing hierarchy and its inverse.

We use the standard fast-growing Ackermann hierarchy:

* ``A_1(x) = 2x``             (any increasing primitive base works),
* ``A_{k+1}(x) = A_k^{x}(1)`` (the ``x``-fold iterate applied to 1),
* ``A(x) = A_x(x)``           (the diagonal Ackermann function).

The inverse ``A^{-1}(n)`` is the largest ``x`` with ``A(x) <= n``; it grows so
slowly that for every physically meaningful ``n`` it is at most 3, which is
exactly the point the comparison benchmark makes.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ackermann_level",
    "ackermann",
    "inverse_ackermann",
    "czerner_esparza_lower_bound",
]


def ackermann_level(level: int, value: int, ceiling: Optional[int] = None) -> int:
    """``A_level(value)`` in the fast-growing hierarchy.

    Parameters
    ----------
    level:
        The hierarchy level ``k >= 1``.
    value:
        The argument ``x >= 0``.
    ceiling:
        Optional cap: as soon as an intermediate value exceeds the cap the cap
        is returned.  This keeps :func:`inverse_ackermann` fast — we never
        need the exact value of numbers with billions of digits, only whether
        they exceed ``n``.
    """
    if level < 1:
        raise ValueError("the hierarchy is defined for levels >= 1")
    if value < 0:
        raise ValueError("the argument must be non-negative")
    if level == 1:
        result = 2 * value
        if ceiling is not None and result > ceiling:
            return ceiling
        return result
    result = 1
    for _ in range(value):
        result = ackermann_level(level - 1, result, ceiling=ceiling)
        if ceiling is not None and result >= ceiling:
            return ceiling
    return result


def ackermann(value: int, ceiling: Optional[int] = None) -> int:
    """The diagonal Ackermann function ``A(x) = A_x(x)`` (with ``A(0) = 1``)."""
    if value < 0:
        raise ValueError("the argument must be non-negative")
    if value == 0:
        return 1
    return ackermann_level(value, value, ceiling=ceiling)


def inverse_ackermann(n: int) -> int:
    """``A^{-1}(n)``: the largest ``x`` such that ``A(x) <= n`` (0 if none)."""
    if n < 1:
        return 0
    x = 0
    while True:
        value = ackermann(x + 1, ceiling=n + 1)
        if value > n:
            return x
        x += 1


def czerner_esparza_lower_bound(n: int) -> int:
    """The PODC 2021 lower bound on the number of states: ``A^{-1}(n)`` (up to a constant).

    The constant factor in the Omega is not published explicitly; we use 1,
    which only makes the comparison against the paper's bound conservative.
    """
    return inverse_ackermann(n)
