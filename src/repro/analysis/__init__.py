"""Analysis layer: coverability, stability, bottom configurations, verification, bounds.

Implements Sections 5, 6 and 8 of the paper plus the comparison bounds:
Rackoff's coverability bound and decision procedures, the small-value
characterization of stabilized configurations, bottom-configuration search,
exhaustive protocol verification on bounded populations, the Theorem 4.3 /
Corollary 4.4 state-complexity bounds, and the Ackermann hierarchy used by the
Czerner–Esparza comparison.
"""

from .ackermann import (
    ackermann,
    ackermann_level,
    czerner_esparza_lower_bound,
    inverse_ackermann,
)
from .components import (
    BottomWitness,
    component_of,
    find_bottom_witness,
    is_bottom,
    lemma_6_2_word_bound,
    theorem_6_1_bound,
)
from .coverability import (
    OMEGA,
    KarpMillerTree,
    backward_coverability,
    is_coverable,
    rackoff_bound,
    rackoff_stabilization_threshold,
    shortest_covering_word,
)
from .reachability import (
    condensation_is_bottom,
    enumerate_configurations,
    enumerate_configurations_up_to,
    shortest_distances,
    strongly_connected_components,
)
from .stability import (
    StabilizationCertificate,
    is_stabilized,
    lift_restricted_word,
    stabilization_certificate,
    violating_state,
)
from .state_complexity import (
    Section8Constants,
    bej_leaderless_upper_bound,
    bej_upper_bound_with_leaders,
    corollary_4_4_lower_bound,
    max_threshold_for_states,
    max_threshold_for_states_log2_log2,
    min_states_for_threshold,
    section_8_constants,
    section_8_constants_log2,
    theorem_4_3_admits_threshold,
    theorem_4_3_bound,
    theorem_4_3_bound_for_protocol,
    theorem_4_3_holds_for_protocol,
    theorem_4_3_log2_log2_bound,
)
from .verification import (
    InputVerdict,
    VerificationReport,
    check_protocol,
    find_counterexample,
    verify_input,
)

__all__ = [
    "rackoff_bound",
    "rackoff_stabilization_threshold",
    "backward_coverability",
    "is_coverable",
    "shortest_covering_word",
    "KarpMillerTree",
    "OMEGA",
    "enumerate_configurations",
    "enumerate_configurations_up_to",
    "shortest_distances",
    "strongly_connected_components",
    "condensation_is_bottom",
    "is_stabilized",
    "violating_state",
    "StabilizationCertificate",
    "stabilization_certificate",
    "lift_restricted_word",
    "component_of",
    "is_bottom",
    "BottomWitness",
    "find_bottom_witness",
    "theorem_6_1_bound",
    "lemma_6_2_word_bound",
    "theorem_4_3_bound",
    "theorem_4_3_log2_log2_bound",
    "theorem_4_3_admits_threshold",
    "theorem_4_3_bound_for_protocol",
    "theorem_4_3_holds_for_protocol",
    "max_threshold_for_states",
    "max_threshold_for_states_log2_log2",
    "min_states_for_threshold",
    "corollary_4_4_lower_bound",
    "bej_upper_bound_with_leaders",
    "bej_leaderless_upper_bound",
    "Section8Constants",
    "section_8_constants",
    "section_8_constants_log2",
    "ackermann",
    "ackermann_level",
    "inverse_ackermann",
    "czerner_esparza_lower_bound",
    "InputVerdict",
    "VerificationReport",
    "verify_input",
    "check_protocol",
    "find_counterexample",
]
