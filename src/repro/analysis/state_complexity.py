"""The state-complexity bounds of the paper (Theorem 4.3, Corollary 4.4, Section 8).

Theorem 4.3: every finite-interaction-width protocol stably computing the
counting predicate ``(i >= n)`` satisfies

    ``n <= (4 + 4 * width + 2 * |leaders|) ** (|P| * (|P| + 2)**2)``.

Corollary 4.4: for every ``h < 1/2`` and every ``m >= 1``, a protocol for
``(i >= n)`` with interaction-width and leader count bounded by ``m`` has at
least ``Omega((log log n)^h)`` states; the constructive form proved in the
paper is

    ``|P| >= ((log2 log2 n - log2 log2 (10 m)) / log2 2) ** h - 2``
          =  ``(log2 log2 n - log2 log2 (10 m)) ** h - 2``.

This module evaluates these bounds exactly with Python integers (they are
astronomically large very quickly), provides the inverse direction used by
benchmark E2 (largest ``n`` a protocol with ``|P|`` states could possibly
decide), computes the Section 8 constants ``b, h, k, a, l, r``, and exposes
the matching *upper* bounds of Blondin–Esparza–Jaax for comparison:

* ``O(log n)`` states, leaderless (binary-counter construction),
* ``O(log log n)`` states with a bounded number of leaders, for the infinite
  family ``n = 2^(2^k)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.protocol import Protocol

__all__ = [
    "theorem_4_3_bound",
    "theorem_4_3_log2_log2_bound",
    "theorem_4_3_admits_threshold",
    "theorem_4_3_bound_for_protocol",
    "theorem_4_3_holds_for_protocol",
    "max_threshold_for_states",
    "max_threshold_for_states_log2_log2",
    "min_states_for_threshold",
    "corollary_4_4_lower_bound",
    "bej_upper_bound_with_leaders",
    "bej_leaderless_upper_bound",
    "Section8Constants",
    "section_8_constants",
    "section_8_constants_log2",
]


# ----------------------------------------------------------------------
# Theorem 4.3
# ----------------------------------------------------------------------
def _theorem_4_3_exponent(num_states: int) -> int:
    """The exponent ``|P|^{(|P|+2)^2}`` of Theorem 4.3."""
    return num_states ** ((num_states + 2) ** 2)


def theorem_4_3_bound(num_states: int, width: int, num_leaders: int) -> int:
    """The right-hand side of Theorem 4.3: ``(4 + 4w + 2L)^{|P|^{(|P|+2)^2}}``.

    Any protocol with ``num_states`` states, interaction-width ``width`` and
    ``num_leaders`` leaders that stably computes ``(i >= n)`` must satisfy
    ``n <=`` this value.

    .. warning::
       The exact value is doubly exponential in ``|P|``: it cannot be
       materialized beyond ``|P| = 2`` (already for ``|P| = 3`` it has roughly
       ``10^{12}`` digits).  Use :func:`theorem_4_3_log2_log2_bound` or
       :func:`theorem_4_3_admits_threshold` for anything larger.
    """
    if num_states < 1:
        raise ValueError("a protocol has at least one state")
    if width < 0 or num_leaders < 0:
        raise ValueError("width and leader count are non-negative")
    base = 4 + 4 * width + 2 * num_leaders
    return base ** _theorem_4_3_exponent(num_states)


def theorem_4_3_log2_log2_bound(num_states: int, width: int, num_leaders: int) -> float:
    """``log2 log2`` of the Theorem 4.3 bound (usable for any ``|P|``).

    ``log2 log2 bound = (|P|+2)^2 * log2 |P| + log2 log2 (4 + 4w + 2L)``,
    with the convention that the first term is 0 when ``|P| = 1``.
    """
    if num_states < 1:
        raise ValueError("a protocol has at least one state")
    if width < 0 or num_leaders < 0:
        raise ValueError("width and leader count are non-negative")
    base = 4 + 4 * width + 2 * num_leaders
    exponent_term = ((num_states + 2) ** 2) * math.log2(num_states) if num_states > 1 else 0.0
    return exponent_term + math.log2(math.log2(base))


def theorem_4_3_admits_threshold(
    threshold: int, num_states: int, width: int, num_leaders: int
) -> bool:
    """Whether ``threshold <= theorem_4_3_bound(...)``, computed on a log-log scale.

    This is the inequality the theorem asserts for every protocol that stably
    computes ``(i >= threshold)``; it is evaluated without materializing the
    doubly-exponential bound.
    """
    if threshold < 1:
        raise ValueError("threshold must be positive")
    if threshold <= 2:
        return True
    # log2 threshold via bit_length is exact enough for a strict comparison
    # margin of one bit, and never overflows.
    log2_threshold = float(threshold.bit_length() - 1)
    if log2_threshold <= 1.0:
        return True
    return math.log2(log2_threshold) <= theorem_4_3_log2_log2_bound(
        num_states, width, num_leaders
    )


def theorem_4_3_bound_for_protocol(protocol: Protocol) -> int:
    """Theorem 4.3 evaluated exactly on a concrete protocol object (tiny ``|P|`` only)."""
    width = protocol.width
    if width is None:
        raise ValueError("Theorem 4.3 only applies to finite interaction-width protocols")
    return theorem_4_3_bound(protocol.num_states, width, protocol.num_leaders)


def theorem_4_3_holds_for_protocol(protocol: Protocol, threshold: int) -> bool:
    """Check the Theorem 4.3 inequality for a protocol deciding ``(i >= threshold)``."""
    width = protocol.width
    if width is None:
        raise ValueError("Theorem 4.3 only applies to finite interaction-width protocols")
    return theorem_4_3_admits_threshold(
        threshold, protocol.num_states, width, protocol.num_leaders
    )


def max_threshold_for_states(num_states: int, bound_parameter: int) -> int:
    """The largest ``n`` possibly decidable with ``num_states`` states (exact value).

    ``bound_parameter`` is the common bound ``m`` on the interaction-width and
    the number of leaders, matching the ``(10 m)^{|P|^{(|P|+2)^2}}``
    simplification used in the proof of Corollary 4.4.  Only computable for
    ``num_states <= 2``; use :func:`max_threshold_for_states_log2_log2` beyond.
    """
    if bound_parameter < 1:
        raise ValueError("the width/leader bound must be at least 1")
    if num_states < 1:
        raise ValueError("a protocol has at least one state")
    return (10 * bound_parameter) ** _theorem_4_3_exponent(num_states)


def max_threshold_for_states_log2_log2(num_states: int, bound_parameter: int) -> float:
    """``log2 log2`` of :func:`max_threshold_for_states` (usable for any ``|P|``)."""
    if bound_parameter < 1:
        raise ValueError("the width/leader bound must be at least 1")
    if num_states < 1:
        raise ValueError("a protocol has at least one state")
    exponent_term = ((num_states + 2) ** 2) * math.log2(num_states) if num_states > 1 else 0.0
    return exponent_term + math.log2(math.log2(10 * bound_parameter))


def min_states_for_threshold(threshold: int, bound_parameter: int) -> int:
    """The smallest ``|P|`` compatible with Theorem 4.3 for the predicate ``(i >= threshold)``.

    Computed by inverting the ``(10 m)^{|P|^{(|P|+2)^2}}`` bound with a linear
    scan on a log-log scale (the bound grows doubly exponentially, so the scan
    is tiny).
    """
    if threshold < 1:
        raise ValueError("threshold must be positive")
    if bound_parameter < 1:
        raise ValueError("the width/leader bound must be at least 1")
    if threshold <= 2:
        return 1
    log2_threshold = float(threshold.bit_length() - 1)
    target = math.log2(log2_threshold) if log2_threshold > 1 else 0.0
    num_states = 1
    while max_threshold_for_states_log2_log2(num_states, bound_parameter) < target:
        num_states += 1
    return num_states


# ----------------------------------------------------------------------
# Corollary 4.4 and the matching upper bounds
# ----------------------------------------------------------------------
def corollary_4_4_lower_bound(n: int, bound_parameter: int, h: float) -> float:
    """The constructive lower bound of Corollary 4.4 on the number of states.

    ``((log2 log2 n - log2 log2 (10 m)) ) ** h - 2`` for ``h < 1/2``; the value
    is only meaningful (positive) once ``n`` is large enough.  Returns 0 when
    the inner logarithms are not defined.
    """
    if not 0 < h < 0.5:
        raise ValueError("Corollary 4.4 requires 0 < h < 1/2")
    if bound_parameter < 1:
        raise ValueError("the width/leader bound must be at least 1")
    if n < 4:
        return 0.0
    inner = math.log2(math.log2(n)) - math.log2(math.log2(10 * bound_parameter))
    if inner <= 0:
        return 0.0
    return max(inner ** h - 2, 0.0)


def bej_upper_bound_with_leaders(n: int, constant: float = 1.0) -> float:
    """The Blondin–Esparza–Jaax upper bound ``O(log log n)`` (with leaders).

    Valid for the infinite family of thresholds exhibited in their paper
    (``n = 2^(2^k)`` in our concrete construction); the multiplicative
    constant is configurable for shape comparisons.
    """
    if n < 4:
        return float(constant)
    return constant * math.log2(math.log2(n))


def bej_leaderless_upper_bound(n: int, constant: float = 1.0) -> float:
    """The leaderless upper bound ``O(log n)`` (binary-counter construction)."""
    if n < 2:
        return float(constant)
    return constant * math.log2(n)


# ----------------------------------------------------------------------
# The Section 8 constants
# ----------------------------------------------------------------------
@dataclass
class Section8Constants:
    """The explicit constants ``b, h, k, a, l, r`` defined at the start of Section 8.

    They are functions of ``d = |P|``, ``||T||_inf`` and ``||rho_L||_inf``;
    the final contradiction shows ``n <= h^(5 d^2 + 2 d + 4)`` which is then
    coarsened into Theorem 4.3.  All values are exact Python integers.
    """

    d: int
    t_norm: int
    leader_norm: int
    b: int
    h: int
    k: int
    a: int
    l: int
    r: int

    @property
    def threshold_bound(self) -> int:
        """The bound ``h^(5 d^2 + 2 d + 4)`` on ``n`` established by Section 8."""
        return self.h ** (5 * self.d ** 2 + 2 * self.d + 4)

    @property
    def coarse_bound(self) -> int:
        """The coarsened bound ``(4 + 4||T||_inf + 2||rho_L||_inf)^r`` of the end of Section 8.

        The exponent ``r`` is further bounded by ``d^{(d+2)^2}`` in the paper,
        which yields the Theorem 4.3 statement.
        """
        return (4 + 4 * self.t_norm + 2 * self.leader_norm) ** self.r


def section_8_constants(d: int, t_norm: int, leader_norm: int) -> Section8Constants:
    """Compute the constants ``b, h, k, a, l, r`` of Section 8.

    Parameters
    ----------
    d:
        The number of states ``|P|`` (must be at least 2; the paper handles
        ``d = 1`` separately since then ``n = 1``).
    t_norm:
        ``||T||_inf`` — bounded by the interaction-width of the protocol.
    leader_norm:
        ``||rho_L||_inf`` — bounded by the number of leaders.
    """
    if d < 2:
        raise ValueError("Section 8 assumes d >= 2 (d = 1 forces n = 1)")
    d1 = d - 1
    b = (4 + 4 * t_norm + 2 * leader_norm) ** (
        (d1 ** d1) * (1 + (2 + d1 ** d1) ** d)
    )
    h = d * (1 + t_norm) * b
    k = d * h ** (d ** 2 + d + 1)
    a = h ** (2 * d + 3)
    l = h ** (5 * d ** 2)
    r = 2 * (d1 ** d1) * (1 + (2 + d1 ** d1) ** d) * (5 * d ** 2 + 2 * d + 4)
    return Section8Constants(
        d=d, t_norm=t_norm, leader_norm=leader_norm, b=b, h=h, k=k, a=a, l=l, r=r
    )


def section_8_constants_log2(d: int, t_norm: int, leader_norm: int) -> Dict[str, float]:
    """Base-2 logarithms of the Section 8 constants.

    The exact constants have astronomically many digits as soon as ``d >= 4``
    (``b`` alone has tens of millions of digits for ``d = 4``), so parameter
    sweeps (benchmark E2) work with logarithms instead.  Returns a dict with
    keys ``b``, ``h``, ``k``, ``a``, ``l``, ``threshold_bound`` and
    ``coarse_bound``.
    """
    if d < 2:
        raise ValueError("Section 8 assumes d >= 2 (d = 1 forces n = 1)")
    d1 = d - 1
    log_base = math.log2(4 + 4 * t_norm + 2 * leader_norm)
    exponent_b = (d1 ** d1) * (1 + (2 + d1 ** d1) ** d)
    log_b = exponent_b * log_base
    log_h = math.log2(d * (1 + t_norm)) + log_b
    log_k = math.log2(d) + (d ** 2 + d + 1) * log_h
    log_a = (2 * d + 3) * log_h
    log_l = (5 * d ** 2) * log_h
    log_threshold = (5 * d ** 2 + 2 * d + 4) * log_h
    r = 2 * (d1 ** d1) * (1 + (2 + d1 ** d1) ** d) * (5 * d ** 2 + 2 * d + 4)
    log_coarse = r * log_base
    return {
        "b": log_b,
        "h": log_h,
        "k": log_k,
        "a": log_a,
        "l": log_l,
        "threshold_bound": log_threshold,
        "coarse_bound": log_coarse,
    }
