"""Text reports and the ``python -m repro.analytics`` command line.

Three subcommands over the analytics subsystem:

``report``
    Render the analytics view of a sweep result store: the cell identity
    columns plus convergence rate, predicate accuracy, convergence-time
    quantiles and the top fired transitions — the derived columns
    ``python -m repro.sweep show`` drowns among the raw statistics.

``hist``
    Run one recorded simulation and print its per-transition firing
    histogram (name, count, fraction of all firings).

``diff``
    Run the *same* seeded simulation twice — different engines and/or
    schedulers — and report the first divergent firing.  Engine-vs-engine
    diffs must come back identical (exit code 0; a divergence exits 1, which
    makes the command a scriptable cross-engine check); scheduler-vs-
    scheduler diffs show where the disciplines split.

Examples
--------
::

    python -m repro.analytics report --store results.csv
    python -m repro.analytics hist --protocol majority --population 50 --seed 7
    python -m repro.analytics diff --protocol majority --population 50 --seed 7 \\
        --engine compiled --vs-engine reference
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..experiments.harness import ExperimentTable
from ..simulation.simulator import Simulator
from ..sweep.spec import (
    KEYFIELDS,
    SCHEDULERS,
    available_sweep_protocols,
    build_protocol_and_inputs,
)
from ..sweep.store import ANALYTICS_COLUMNS, open_store
from .diff import describe_diff, diff_results
from .ensemble import top_transitions
from .metrics import firing_histogram

__all__ = ["main", "report_table"]

#: The columns of the ``report`` view: cell identity, a few headline
#: statistics, then every analytics column the store persists (a focused
#: subset of the store's full column set).
REPORT_COLUMNS = KEYFIELDS + (
    "status",
    "runs",
    "convergence_rate",
    "mean_consensus_step",
) + ANALYTICS_COLUMNS


def report_table(
    store, experiment_id: str = "ANALYTICS", title: Optional[str] = None
) -> ExperimentTable:
    """The analytics view of a result store, as an experiment table."""
    table = ExperimentTable(
        experiment_id=experiment_id,
        title=title or "sweep analytics",
        columns=list(REPORT_COLUMNS),
    )
    for row in store.rows():
        table.add_row(**{column: row[column] for column in REPORT_COLUMNS})
    return table


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared how-to-run-one-simulation argument block (hist and diff)."""
    parser.add_argument(
        "--protocol", required=True,
        help="registered protocol name (available: "
        + ", ".join(available_sweep_protocols()) + ")",
    )
    parser.add_argument(
        "--params", default="{}", metavar="JSON",
        help='protocol parameters, e.g. \'{"threshold": 8}\'',
    )
    parser.add_argument(
        "--population", type=int, required=True, help="population size"
    )
    parser.add_argument("--seed", type=int, default=0, help="run seed")
    parser.add_argument(
        "--scheduler", choices=tuple(sorted(SCHEDULERS)), default="uniform"
    )
    parser.add_argument("--engine", default="auto", help="simulation engine")
    parser.add_argument("--max-steps", type=int, default=20000)
    parser.add_argument("--stability-window", type=int, default=500)


def _run_recorded(args, scheduler_kind: str, engine: str):
    """One recorded run of the CLI-described simulation."""
    params = json.loads(args.params)
    protocol, inputs = build_protocol_and_inputs(
        args.protocol, args.population, params
    )
    simulator = Simulator(
        protocol,
        scheduler=SCHEDULERS[scheduler_kind](),
        seed=args.seed,
        engine=engine,
    )
    result = simulator.run(
        inputs,
        max_steps=args.max_steps,
        stability_window=args.stability_window,
        record_trajectory=True,
        trajectory_capacity=max(1, args.max_steps),
    )
    return protocol, result


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analytics",
        description="Trajectory analytics: sweep reports, firing histograms, "
        "and trajectory diffs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser(
        "report", help="render the analytics columns of a sweep result store"
    )
    report.add_argument("--store", required=True, metavar="FILE")

    hist = commands.add_parser(
        "hist", help="run one recorded simulation and print its firing histogram"
    )
    _add_run_arguments(hist)
    hist.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="show only the N most-fired transitions",
    )

    diff = commands.add_parser(
        "diff",
        help="run the same seeded simulation twice (different engine and/or "
        "scheduler) and locate the first divergent firing",
    )
    _add_run_arguments(diff)
    diff.add_argument(
        "--vs-engine", default=None,
        help="engine of the second run (default: same as --engine)",
    )
    diff.add_argument(
        "--vs-scheduler", choices=tuple(sorted(SCHEDULERS)), default=None,
        help="scheduler of the second run (default: same as --scheduler)",
    )
    return parser


def _command_report(args: argparse.Namespace) -> int:
    try:
        store = open_store(args.store)
    except ValueError as error:
        print(f"cannot open store: {error}", file=sys.stderr)
        return 2
    if len(store) == 0:
        print(f"store {args.store} is empty")
        return 0
    print(report_table(store).render())
    # top_transitions is the best discriminator available: under analytics
    # it is populated whenever anything fired at all (unlike the quantiles,
    # which are legitimately empty for unconverged ensembles).
    missing = sum(
        1 for row in store.rows()
        if row["status"] == "done" and row["top_transitions"] is None
    )
    if missing:
        print(
            f"note: {missing} done cell(s) carry no analytics columns — "
            'run the sweep with "analytics": true in the spec to fill them'
        )
    return 0


def _command_hist(args: argparse.Namespace) -> int:
    protocol, result = _run_recorded(args, args.scheduler, args.engine)
    histogram = firing_histogram(
        result.trajectory, protocol.petri_net.num_transitions
    )
    total = sum(histogram)
    print(
        f"{args.protocol} population={args.population} seed={args.seed} "
        f"scheduler={args.scheduler}: {result.steps} steps, "
        f"consensus={result.consensus} (step {result.consensus_step})"
    )
    if total == 0:
        print("no transitions fired (the initial configuration is terminal)")
        return 0
    table = ExperimentTable(
        experiment_id="HIST",
        title=f"firing histogram ({total} firings)",
        columns=["transition", "fired", "fraction"],
    )
    names = [transition.name for transition in protocol.petri_net.transitions]
    ranked = top_transitions(
        histogram, names, k=args.top if args.top is not None else len(histogram)
    )
    for name, count in ranked:
        table.add_row(transition=name, fired=count, fraction=count / total)
    print(table.render())
    return 0


def _command_diff(args: argparse.Namespace) -> int:
    scheduler_b = args.vs_scheduler or args.scheduler
    engine_b = args.vs_engine or args.engine
    protocol, result_a = _run_recorded(args, args.scheduler, args.engine)
    _, result_b = _run_recorded(args, scheduler_b, engine_b)
    label_a = f"{args.engine}/{args.scheduler}"
    label_b = f"{engine_b}/{scheduler_b}"
    print(f"a: {label_a} -> {result_a.steps} steps, consensus={result_a.consensus}")
    print(f"b: {label_b} -> {result_b.steps} steps, consensus={result_b.consensus}")
    diff = diff_results(result_a, result_b)
    print(
        describe_diff(
            diff, net=protocol.petri_net, label_a=label_a, label_b=label_b
        )
    )
    return 0 if diff.identical else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "report":
        return _command_report(args)
    try:
        if args.command == "hist":
            return _command_hist(args)
        return _command_diff(args)
    except (ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
