"""Trajectory analytics: per-run metrics, ensemble aggregation, diffs, reports.

The consumption layer for PR 2's trajectory recording — the paper's central
quantities (does the protocol stabilize to the correct predicate value, and
how fast does consensus emerge) extracted from recorded paths instead of
re-derived by hand per experiment:

* :mod:`~repro.analytics.metrics` — per-run extraction: time-to-first /
  time-to-stable consensus, per-transition firing histograms,
  consensus-fraction curves at configurable checkpoints, predicate
  correctness.  :class:`AnalyticsSpec` packages the configuration and is
  shipped to worker processes by the batch layer's ``analytics=`` knob, so
  extraction runs **in the worker** and only compact metric dicts cross the
  pool — never the 65536-entry trajectory rings.
* :mod:`~repro.analytics.ensemble` — deterministic aggregation into
  :class:`EnsembleAnalytics`: convergence-time quantiles, pooled histograms,
  accuracy rates, mean curves.
* :mod:`~repro.analytics.diff` — trajectory diffing: the first divergent
  fired index between two runs, the debugging signal for engine-vs-engine
  and scheduler-vs-scheduler comparisons.
* :mod:`~repro.analytics.report` / ``python -m repro.analytics`` — text
  reports over sweep stores (``report``), firing histograms (``hist``) and
  trajectory diffs (``diff``) from the command line.

The sweep subsystem persists the derived columns per grid cell (see the
``analytics`` flag of :class:`~repro.sweep.spec.SweepSpec`), and experiment
E13 drives the whole stack across engines and schedulers.  All extraction
and aggregation is deterministic, so analytics inherit the simulation
stack's bit-identity guarantees: same seeds → same metric dicts, on every
engine and backend.
"""

from .diff import TrajectoryDiff, describe_diff, diff_results, diff_trajectories
from .ensemble import (
    DEFAULT_QUANTILE_POINTS,
    EnsembleAnalytics,
    aggregate_run_metrics,
    pooled_histogram,
    quantile,
    top_transitions,
)
from .metrics import AnalyticsSpec, extract_run_metrics, firing_histogram
from .report import main, report_table

__all__ = [
    "AnalyticsSpec",
    "extract_run_metrics",
    "firing_histogram",
    "DEFAULT_QUANTILE_POINTS",
    "EnsembleAnalytics",
    "aggregate_run_metrics",
    "pooled_histogram",
    "quantile",
    "top_transitions",
    "TrajectoryDiff",
    "describe_diff",
    "diff_results",
    "diff_trajectories",
    "main",
    "report_table",
]
