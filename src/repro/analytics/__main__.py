"""``python -m repro.analytics`` — see :mod:`repro.analytics.report`."""

import sys

from .report import main

if __name__ == "__main__":
    sys.exit(main())
