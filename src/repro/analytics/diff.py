"""Trajectory diffing: pinpoint the first divergent firing between two runs.

The engine-equivalence guarantee ("all three engines consume the random
stream identically") and the golden-trajectory pins both reduce to comparing
*fired transition sequences*.  When they disagree, the first divergent index
is the debugging signal: everything before it is shared history, the firing
at it is where the RNG discipline (or the scheduler) split.  This module
turns two recorded trajectories into exactly that:

* :func:`diff_trajectories` / :func:`diff_results` — compare two complete
  recorded paths and locate the first index where they fire different
  transitions (engine-vs-engine diffs should come back identical; a
  scheduler-vs-scheduler diff typically splits within a few steps),
* :func:`describe_diff` — render the verdict as human-readable text, naming
  the divergent transitions when the net is supplied.

Truncated trajectories are rejected: a ring buffer that overwrote early
firings lost the shared prefix, so index ``i`` of one recording no longer
corresponds to index ``i`` of the other and any "divergence" found would be
an artifact of the truncation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.petrinet import PetriNet
from ..simulation.simulator import SimulationResult
from ..simulation.trajectory import Trajectory

__all__ = ["TrajectoryDiff", "diff_results", "diff_trajectories", "describe_diff"]


@dataclass(frozen=True)
class TrajectoryDiff:
    """The comparison of two complete fired-transition sequences."""

    #: 0-based index of the first position firing different transitions, or
    #: ``None`` when one sequence is a prefix of the other (or they are equal).
    first_divergence: Optional[int]
    #: Length of the shared prefix (== ``first_divergence`` when divergent,
    #: else the shorter sequence's length).
    common_prefix: int
    #: The two sequence lengths.
    length_a: int
    length_b: int
    #: The transition indices fired at the divergence point (both None when
    #: no divergence was found — equal sequences or a pure length difference).
    fired_a: Optional[int] = None
    fired_b: Optional[int] = None

    @property
    def identical(self) -> bool:
        """True when the two runs fired the same word, step for step."""
        return self.first_divergence is None and self.length_a == self.length_b

    def __repr__(self) -> str:
        verdict = (
            "identical"
            if self.identical
            else f"first_divergence={self.first_divergence}"
        )
        return (
            f"TrajectoryDiff({verdict}, lengths=({self.length_a}, "
            f"{self.length_b}))"
        )


def diff_trajectories(a: Trajectory, b: Trajectory) -> TrajectoryDiff:
    """Locate the first divergent fired index between two complete paths."""
    for label, trajectory in (("first", a), ("second", b)):
        if not trajectory.is_complete:
            raise ValueError(
                f"cannot diff a truncated trajectory: the {label} recording "
                f"dropped {trajectory.dropped} early firings, so positions no "
                "longer align; record with a larger trajectory_capacity"
            )
    fired_a = a.transition_indices
    fired_b = b.transition_indices
    shared = min(len(fired_a), len(fired_b))
    for index in range(shared):
        if fired_a[index] != fired_b[index]:
            return TrajectoryDiff(
                first_divergence=index,
                common_prefix=index,
                length_a=len(fired_a),
                length_b=len(fired_b),
                fired_a=fired_a[index],
                fired_b=fired_b[index],
            )
    return TrajectoryDiff(
        first_divergence=None,
        common_prefix=shared,
        length_a=len(fired_a),
        length_b=len(fired_b),
    )


def diff_results(a: SimulationResult, b: SimulationResult) -> TrajectoryDiff:
    """Diff two simulation results' recorded trajectories."""
    for label, result in (("first", a), ("second", b)):
        if result.trajectory is None:
            raise ValueError(
                f"the {label} result carries no recorded trajectory; "
                "run with record_trajectory=True"
            )
    return diff_trajectories(a.trajectory, b.trajectory)


def describe_diff(
    diff: TrajectoryDiff,
    net: Optional[PetriNet] = None,
    label_a: str = "a",
    label_b: str = "b",
) -> str:
    """Render a diff verdict as text, naming transitions when a net is given."""

    def name(index: int) -> str:
        if net is not None:
            return f"{net.transitions[index].name} (#{index})"
        return f"#{index}"

    lines: List[str] = []
    if diff.identical:
        lines.append(
            f"trajectories are identical ({diff.length_a} fired transitions)"
        )
    elif diff.first_divergence is None:
        shorter, longer = (
            (label_a, label_b)
            if diff.length_a < diff.length_b
            else (label_b, label_a)
        )
        lines.append(
            f"no divergent firing, but {shorter} ended after "
            f"{diff.common_prefix} steps while {longer} continued to "
            f"{max(diff.length_a, diff.length_b)}"
        )
    else:
        lines.append(
            f"first divergence at step {diff.first_divergence + 1} "
            f"(after {diff.common_prefix} shared firings):"
        )
        lines.append(f"  {label_a} fired {name(diff.fired_a)}")
        lines.append(f"  {label_b} fired {name(diff.fired_b)}")
    return "\n".join(lines)
