"""Per-run metric extraction from simulation results and recorded paths.

A :class:`~repro.simulation.simulator.SimulationResult` summarizes a run; its
recorded :class:`~repro.simulation.trajectory.Trajectory` carries the *path*.
This module turns the pair into a **compact metric dict** — the quantities the
paper's convergence experiments actually consume:

* ``time_to_stable_consensus`` — the step after which the final consensus
  never changed again (the result's ``consensus_step``),
* ``time_to_first_consensus`` — the first step at which *any* consensus held,
  recovered by replaying the recorded firing sequence over the protocol's
  output classes (a consensus can appear, dissolve, and re-form; the summary
  alone cannot distinguish the first appearance from the last),
* ``histogram`` — how often each transition fired, indexed by the net's
  transition order (the same order trajectories record),
* ``curve`` — the consensus fraction over time, sampled at configurable
  checkpoint steps: the fraction of output-carrying agents whose individual
  output already equals the run's final consensus,
* ``correct`` — whether the consensus matches an expected predicate value.

The replay never re-simulates: it only folds each fired transition's
precomputed effect on the three output-class counters (1-output / 0-output /
``*``-output agents), which costs a few integer additions per step — far less
than the simulation step that produced it — and stops early once every
requested quantity is known.  Extraction is a pure function of
``(protocol, result)``, so the three engines and both batch backends produce
**identical metric dicts** for identical trajectories; the golden-metric
tests pin this.

:class:`AnalyticsSpec` packages the extraction configuration.  It is a small
frozen dataclass of scalars, picklable by design: the batch layer ships it to
worker processes so extraction runs **in the worker** and only the metric
dict crosses the pool (see the ``analytics=`` knob of
:class:`~repro.simulation.batch.BatchRunner`).
"""

from __future__ import annotations

import weakref
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.configuration import Configuration
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from ..simulation.simulator import SimulationResult

__all__ = ["AnalyticsSpec", "extract_run_metrics", "firing_histogram"]


#: Per-protocol replay tables, built once per protocol object and shared by
#: every extraction (worker processes hold one protocol per spec, so each
#: worker pays the O(|P| + |T|) table construction once per spec).
_REPLAY_TABLES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _replay_tables(protocol: Protocol):
    """``(class_of_state, consensus_deltas)`` for a protocol, cached.

    ``class_of_state`` maps each state to 1 / 0 / None ("*"-output) or is
    missing for states outside the output table (they never influence the
    consensus, mirroring :meth:`Protocol.configuration_output`).
    ``consensus_deltas[t]`` is the ``(d_one, d_zero, d_undefined)`` effect of
    firing transition ``t`` on the three output-class counters — the same
    classification the dense engines maintain, so the replay reproduces their
    consensus decisions exactly.
    """
    tables = _REPLAY_TABLES.get(protocol)
    if tables is not None:
        return tables
    net = protocol.petri_net
    if net is None:
        raise ValueError("analytics extraction requires a Petri-net based protocol")
    output_table = protocol.output_table

    def class_of(state) -> Optional[int]:
        # 1 -> one, 0 -> zero, 2 -> undefined, None -> ignored.
        if state not in output_table:
            return None
        value = output_table[state]
        if value == OUTPUT_ONE:
            return 1
        if value == OUTPUT_ZERO:
            return 0
        return 2

    deltas = []
    for transition in net.transitions:
        d_one = d_zero = d_undef = 0
        for state, count in transition.post.items():
            kind = class_of(state)
            if kind == 1:
                d_one += count
            elif kind == 0:
                d_zero += count
            elif kind == 2:
                d_undef += count
        for state, count in transition.pre.items():
            kind = class_of(state)
            if kind == 1:
                d_one -= count
            elif kind == 0:
                d_zero -= count
            elif kind == 2:
                d_undef -= count
        deltas.append((d_one, d_zero, d_undef))
    # The largest per-step movement of any single counter: the block-skip
    # replay uses it to bound how long a consensus stays provably out of
    # reach (zero when no transition moves agents across output classes).
    max_delta = max(
        (max(abs(d_one), abs(d_zero), abs(d_undef))
         for d_one, d_zero, d_undef in deltas),
        default=0,
    )
    tables = (class_of, tuple(deltas), max_delta)
    _REPLAY_TABLES[protocol] = tables
    return tables


def _initial_counters(
    configuration: Configuration, class_of
) -> Tuple[int, int, int]:
    one = zero = undef = 0
    for state, count in configuration.items():
        kind = class_of(state)
        if kind == 1:
            one += count
        elif kind == 0:
            zero += count
        elif kind == 2:
            undef += count
    return one, zero, undef


def _consensus_of(one: int, zero: int, undef: int) -> Optional[int]:
    """The consensus value of counter state, matching the engines exactly."""
    if undef:
        return None
    if one == 0:
        return 0
    if zero == 0:
        return 1
    return None


def _histogram_from_counter(
    counter: Counter, num_transitions: int
) -> Tuple[int, ...]:
    if num_transitions < 1:
        raise ValueError(
            f"num_transitions must be at least 1, got {num_transitions} "
            "(a net without transitions has no firings to count)"
        )
    counts = [0] * num_transitions
    for index, fired in counter.items():
        if not 0 <= index < num_transitions:
            raise ValueError(
                f"trajectory records transition index {index}, outside the "
                f"net's 0..{num_transitions - 1} range"
            )
        counts[index] = fired
    return tuple(counts)


def firing_histogram(trajectory, num_transitions: int) -> Tuple[int, ...]:
    """How often each transition index fired, over the recorded suffix.

    Indexed by the net's transition order (the order trajectories record).
    An empty trajectory yields an all-zero histogram; for a *truncated* one
    the counts cover only the surviving suffix (the caller can check
    :attr:`~repro.simulation.trajectory.Trajectory.is_complete`).
    """
    return _histogram_from_counter(
        Counter(trajectory.transition_indices), num_transitions
    )


@dataclass(frozen=True)
class AnalyticsSpec:
    """What to extract from each run, and against which expectation.

    Parameters
    ----------
    histogram:
        Record the per-transition firing histogram.
    consensus_times:
        Recover ``time_to_first_consensus`` by counter replay
        (``time_to_stable_consensus`` is free — the result already carries
        it).
    curve_checkpoints:
        Steps at which to sample the consensus-fraction curve (sorted unique
        non-negative ints; empty disables the curve).  Checkpoints beyond the
        run's length report the final fraction — the configuration stops
        changing when the run does.
    expected_output:
        The predicate value the consensus *should* reach (0 or 1); enables
        the per-run ``correct`` flag.  ``None`` leaves it unset.

    Instances are immutable, hashable and picklable; the batch layer ships
    them to worker processes unchanged.
    """

    histogram: bool = True
    consensus_times: bool = True
    curve_checkpoints: Tuple[int, ...] = ()
    expected_output: Optional[int] = None

    def __post_init__(self):
        checkpoints = tuple(self.curve_checkpoints)
        for checkpoint in checkpoints:
            if not isinstance(checkpoint, int) or isinstance(checkpoint, bool):
                raise ValueError(
                    f"curve checkpoints must be integers, got {checkpoint!r}"
                )
            if checkpoint < 0:
                raise ValueError(
                    f"curve checkpoints must be non-negative, got {checkpoint}"
                )
        if len(set(checkpoints)) != len(checkpoints):
            raise ValueError(f"duplicate curve checkpoints: {checkpoints}")
        if tuple(sorted(checkpoints)) != checkpoints:
            raise ValueError(
                f"curve checkpoints must be sorted ascending: {checkpoints}"
            )
        object.__setattr__(self, "curve_checkpoints", checkpoints)
        if self.expected_output not in (None, 0, 1):
            raise ValueError(
                f"expected_output must be 0, 1 or None, got {self.expected_output!r}"
            )

    def extract(
        self, result: SimulationResult, protocol: Protocol
    ) -> Dict[str, object]:
        """The metric dict of one run (see :func:`extract_run_metrics`)."""
        return extract_run_metrics(result, protocol, self)


def extract_run_metrics(
    result: SimulationResult,
    protocol: Protocol,
    spec: Optional[AnalyticsSpec] = None,
) -> Dict[str, object]:
    """Extract a compact metric dict from one simulation result.

    The result must carry a recorded trajectory whenever the spec asks for a
    path-derived quantity (histogram, first-consensus time, curve).  Returned
    keys are always present, with ``None`` marking quantities that were
    disabled or unrecoverable:

    ========================== ==============================================
    key                        value
    ========================== ==============================================
    ``steps``                  the run's step count
    ``consensus``              the final consensus (0 / 1 / None)
    ``time_to_stable_consensus`` step the final consensus was reached (None
                               for unconverged runs)
    ``time_to_first_consensus``  first step *any* consensus held (0 when the
                               initial configuration already agrees; None
                               when no consensus ever appeared, the replay
                               was disabled, or the trajectory is truncated)
    ``correct``                consensus == expected (None without an
                               expectation)
    ``trajectory_complete``    whether the full path survived the ring buffer
    ``histogram``              per-transition firing counts (tuple), or None
    ``curve``                  ``((checkpoint, fraction), ...)`` consensus
                               fractions, or None (disabled / truncated /
                               unconverged run)
    ========================== ==============================================

    A truncated trajectory (the ring buffer overwrote early firings) cannot
    be replayed from the initial configuration: consensus times and curve
    degrade to ``None`` and the histogram covers the surviving suffix only,
    with ``trajectory_complete`` flagging the loss.
    """
    if spec is None:
        spec = AnalyticsSpec()
    trajectory = result.trajectory
    needs_path = spec.histogram or spec.consensus_times or spec.curve_checkpoints
    if needs_path and trajectory is None:
        raise ValueError(
            "result carries no recorded trajectory; run with "
            "record_trajectory=True (or hand the spec to the batch layer's "
            "analytics= knob, which records internally)"
        )
    complete = trajectory.is_complete if trajectory is not None else False

    metrics: Dict[str, object] = {
        "steps": result.steps,
        "consensus": result.consensus,
        "time_to_stable_consensus": result.consensus_step,
        "time_to_first_consensus": None,
        "correct": (
            None
            if spec.expected_output is None
            else result.consensus == spec.expected_output
        ),
        "trajectory_complete": complete,
        "histogram": None,
        "curve": None,
    }

    wants_curve = bool(spec.curve_checkpoints) and result.consensus is not None
    if complete and (spec.consensus_times or wants_curve):
        first, curve, histogram = _replay_consensus(
            result, protocol, spec, wants_curve
        )
        if spec.consensus_times:
            metrics["time_to_first_consensus"] = first
        if wants_curve:
            metrics["curve"] = curve
        if spec.histogram:
            metrics["histogram"] = histogram
    elif spec.histogram:
        metrics["histogram"] = firing_histogram(
            trajectory, protocol.petri_net.num_transitions
        )
    return metrics


#: Exact-scan chunk used by the block-skip replay when a consensus is within
#: reach of the counters; bulk skips shorter than this scan instead.
_SCAN_CHUNK = 32


def _replay_consensus(
    result: SimulationResult,
    protocol: Protocol,
    spec: AnalyticsSpec,
    wants_curve: bool,
) -> Tuple[
    Optional[int],
    Optional[Tuple[Tuple[int, float], ...]],
    Optional[Tuple[int, ...]],
]:
    """Replay the output-class counters along the trajectory.

    Returns ``(first_consensus_step, curve, histogram)``, the histogram as a
    by-product (``None`` unless the spec asked for it): the replay counts
    block occurrences anyway, so folding the histogram in here makes it free.

    Without a curve the replay runs in **block-skip** mode: while
    ``undef > 0`` no consensus can exist until ``undef`` reaches zero, and
    with ``undef == 0`` none can exist until ``one`` or ``zero`` does — and
    one step moves each counter by at most ``max_delta``.  Whole stretches of
    ``(counter - 1) // max_delta`` steps are therefore provably
    consensus-free and are folded in C speed via a :class:`collections.Counter`
    over the block (which also feeds the histogram); only the stretches where
    a consensus is arithmetically within reach are scanned step by step.  The
    loop stops at the first consensus, with the histogram finished by one
    bulk count over the remaining suffix — this is what keeps in-worker
    extraction a small fraction of the simulation cost (benchmark E13 bounds
    it).  With curve checkpoints the exact per-step loop runs instead
    (curves need counter values at precise steps); curves are a
    small-ensemble analysis tool, not part of the sweep hot path.
    """
    class_of, deltas, max_delta = _replay_tables(protocol)
    one, zero, undef = _initial_counters(result.initial, class_of)
    fired = result.trajectory.transition_indices
    num_transitions = protocol.petri_net.num_transitions
    first: Optional[int] = 0 if _consensus_of(one, zero, undef) is not None else None

    if wants_curve:
        return _replay_exact(
            spec, deltas, fired, num_transitions, one, zero, undef, first,
            result.consensus,
        )

    counter: Counter = Counter()
    position = 0
    # max_delta == 0 means no transition moves agents across output classes:
    # the initial consensus state is the run's consensus state forever, so
    # the scan is skipped entirely (the histogram still counts the full
    # sequence via the suffix bulk-count below).
    while max_delta > 0 and first is None and position < len(fired):
        guard = undef if undef else (one if one < zero else zero)
        skip = (guard - 1) // max_delta
        remaining = len(fired) - position
        if skip > remaining:
            skip = remaining
        if skip >= _SCAN_CHUNK:
            # Consensus provably impossible for `skip` steps: fold the whole
            # block at C speed.
            block = Counter(fired[position:position + skip])
            for index, count in block.items():
                d_one, d_zero, d_undef = deltas[index]
                one += d_one * count
                zero += d_zero * count
                undef += d_undef * count
            counter.update(block)
            position += skip
        else:
            # A consensus is within arithmetic reach: scan step by step.
            end = min(position + _SCAN_CHUNK, len(fired))
            while position < end:
                index = fired[position]
                counter[index] += 1
                position += 1
                d_one, d_zero, d_undef = deltas[index]
                if d_one or d_zero or d_undef:
                    one += d_one
                    zero += d_zero
                    undef += d_undef
                    if _consensus_of(one, zero, undef) is not None:
                        first = position
                        break

    histogram: Optional[Tuple[int, ...]] = None
    if spec.histogram:
        counter.update(fired[position:])  # bulk-count the unscanned suffix
        histogram = _histogram_from_counter(counter, num_transitions)
    return first, None, histogram


def _replay_exact(
    spec: AnalyticsSpec,
    deltas,
    fired,
    num_transitions: int,
    one: int,
    zero: int,
    undef: int,
    first: Optional[int],
    final_consensus: Optional[int],
) -> Tuple[
    Optional[int],
    Optional[Tuple[Tuple[int, float], ...]],
    Optional[Tuple[int, ...]],
]:
    """The per-step replay variant, sampling curve checkpoints exactly."""
    samples = []
    checkpoints = spec.curve_checkpoints
    pending = 0  # index of the next unsampled checkpoint
    if one + zero + undef == 0:
        raise ValueError(
            "cannot sample a consensus-fraction curve: no agent occupies an "
            "output-carrying state (the protocol's output table does not "
            "cover the initial configuration)"
        )

    def fraction() -> float:
        population = one + zero + undef
        if population == 0:
            raise ValueError(
                "cannot sample a consensus-fraction curve: the configuration "
                "lost every output-carrying agent mid-run"
            )
        agreeing = one if final_consensus == 1 else zero
        return agreeing / population

    while pending < len(checkpoints) and checkpoints[pending] == 0:
        samples.append((0, fraction()))
        pending += 1

    histogram = [0] * num_transitions if spec.histogram else None
    for step, index in enumerate(fired, start=1):
        if histogram is not None:
            histogram[index] += 1
        d_one, d_zero, d_undef = deltas[index]
        if d_one or d_zero or d_undef:
            one += d_one
            zero += d_zero
            undef += d_undef
            if first is None and _consensus_of(one, zero, undef) is not None:
                first = step
        while pending < len(checkpoints) and checkpoints[pending] == step:
            samples.append((step, fraction()))
            pending += 1

    # Checkpoints beyond the run's length sample the final, unchanging
    # configuration.
    for checkpoint in checkpoints[pending:]:
        samples.append((checkpoint, fraction()))
    return (
        first,
        tuple(samples),
        tuple(histogram) if histogram is not None else None,
    )
