"""Aggregation of per-run metric dicts into ensemble-level analytics.

One run yields a compact metric dict (:mod:`repro.analytics.metrics`); a
seeded ensemble yields a list of them.  This module folds that list into an
:class:`EnsembleAnalytics` — the quantities the sweep tables persist per grid
cell and the experiments report:

* quantiles of the convergence times (time-to-stable and time-to-first
  consensus) over the converged runs,
* the pooled per-transition firing histogram (and its top-k rendering),
* the accuracy rate against an expected predicate value,
* the mean consensus-fraction curve across converged runs.

Every aggregate is a deterministic pure function of the metric list —
quantiles use fixed linear interpolation, pooling is elementwise integer
summation — so serial and process backends, all three engines, and resumed
sweeps agree byte for byte.  Empty inputs raise :class:`ValueError` with a
clear message, matching the ``summarize_runs([])`` convention (an empty
ensemble is a caller bug, not a zero statistic).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_QUANTILE_POINTS",
    "EnsembleAnalytics",
    "aggregate_run_metrics",
    "pooled_histogram",
    "quantile",
    "top_transitions",
]

#: The convergence-time quantiles the sweep tables persist per cell.
DEFAULT_QUANTILE_POINTS = (0.1, 0.5, 0.9)


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile of ``values`` under linear interpolation.

    The deterministic textbook rule (NumPy's default): sort, place ``q`` at
    fractional rank ``q * (n - 1)``, interpolate linearly between the two
    neighbouring order statistics.  Raises :class:`ValueError` on an empty
    sequence — a quantile of nothing is a caller bug, and a silent ``nan``
    (or an ``IndexError`` from the order statistics) would hide it.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile point must be within [0, 1], got {q}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError(
            "cannot take a quantile of an empty sequence; "
            "aggregate at least one value"
        )
    rank = q * (len(ordered) - 1)
    low = floor(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def pooled_histogram(
    histograms: Sequence[Sequence[int]],
) -> Tuple[int, ...]:
    """Elementwise sum of per-run firing histograms.

    All histograms must index the same transition set (equal lengths); an
    empty list raises — pooling nothing is a caller bug, not a zero
    histogram.
    """
    histograms = list(histograms)
    if not histograms:
        raise ValueError(
            "cannot pool an empty list of histograms; extract metrics from "
            "at least one run"
        )
    width = len(histograms[0])
    pooled = [0] * width
    for histogram in histograms:
        if len(histogram) != width:
            raise ValueError(
                f"histogram lengths disagree ({len(histogram)} != {width}); "
                "were these runs simulated on different nets?"
            )
        for index, count in enumerate(histogram):
            pooled[index] += count
    return tuple(pooled)


def top_transitions(
    histogram: Sequence[int],
    names: Optional[Sequence[str]] = None,
    k: int = 3,
) -> Tuple[Tuple[str, int], ...]:
    """The ``k`` most-fired transitions as ``(label, count)`` pairs.

    Ordered by descending count, ties broken by transition index (a total,
    deterministic order).  Transitions that never fired are omitted; the
    label is ``names[index]`` when names are given, else the index as text.
    """
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    ranked = sorted(
        ((index, count) for index, count in enumerate(histogram) if count),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return tuple(
        (names[index] if names is not None else str(index), count)
        for index, count in ranked[:k]
    )


@dataclass(frozen=True)
class EnsembleAnalytics:
    """Ensemble-level analytics aggregated from per-run metric dicts."""

    #: Runs aggregated.
    runs: int
    #: Runs that ended in a consensus.
    converged: int
    #: Fraction of *scored* runs whose consensus matched the expectation —
    #: runs without a ``correct`` flag (no expectation was set for them) are
    #: excluded from the denominator; None when no run was scored at all.
    accuracy: Optional[float]
    #: The quantile points the two quantile tuples are sampled at.
    quantile_points: Tuple[float, ...]
    #: Quantiles of time-to-stable-consensus over converged runs (None when
    #: no run converged or consensus times were not extracted).
    stable_consensus_quantiles: Optional[Tuple[float, ...]]
    #: Quantiles of time-to-first-consensus over runs where it was recovered.
    first_consensus_quantiles: Optional[Tuple[float, ...]]
    #: Pooled per-transition firing histogram (None when not extracted).
    histogram: Optional[Tuple[int, ...]]
    #: Mean consensus-fraction per checkpoint over runs carrying a curve.
    mean_curve: Optional[Tuple[Tuple[int, float], ...]]
    #: True when every aggregated run's full path survived its ring buffer.
    all_complete: bool

    @property
    def convergence_rate(self) -> float:
        """The fraction of runs that reached a consensus."""
        if self.runs == 0:
            return 0.0
        return self.converged / self.runs

    def __repr__(self) -> str:
        return (
            f"EnsembleAnalytics(runs={self.runs}, converged={self.converged}, "
            f"accuracy={self.accuracy}, "
            f"stable_q={self.stable_consensus_quantiles})"
        )


def aggregate_run_metrics(
    metrics: Sequence[Mapping[str, object]],
    quantile_points: Sequence[float] = DEFAULT_QUANTILE_POINTS,
) -> EnsembleAnalytics:
    """Fold per-run metric dicts into one :class:`EnsembleAnalytics`.

    ``metrics`` are the dicts produced by
    :func:`~repro.analytics.metrics.extract_run_metrics` (the
    ``SimulationResult.analytics`` payloads of an ensemble).  An empty list
    raises, matching ``summarize_runs``.
    """
    metrics = list(metrics)
    if not metrics:
        raise ValueError(
            "cannot aggregate an empty list of run metrics; "
            "run at least one repetition with analytics enabled"
        )
    points = tuple(float(point) for point in quantile_points)
    for point in points:
        if not 0.0 <= point <= 1.0:
            raise ValueError(f"quantile point must be within [0, 1], got {point}")

    converged = sum(1 for m in metrics if m.get("consensus") is not None)
    stable = [
        m["time_to_stable_consensus"]
        for m in metrics
        if m.get("time_to_stable_consensus") is not None
    ]
    first = [
        m["time_to_first_consensus"]
        for m in metrics
        if m.get("time_to_first_consensus") is not None
    ]
    corrects = [m.get("correct") for m in metrics if m.get("correct") is not None]
    histograms = [m["histogram"] for m in metrics if m.get("histogram") is not None]
    curves = [m["curve"] for m in metrics if m.get("curve") is not None]

    mean_curve: Optional[Tuple[Tuple[int, float], ...]] = None
    if curves:
        by_checkpoint: Dict[int, List[float]] = {}
        order: List[int] = []
        for curve in curves:
            for checkpoint, value in curve:
                if checkpoint not in by_checkpoint:
                    by_checkpoint[checkpoint] = []
                    order.append(checkpoint)
                by_checkpoint[checkpoint].append(value)
        mean_curve = tuple(
            (checkpoint, sum(by_checkpoint[checkpoint]) / len(by_checkpoint[checkpoint]))
            for checkpoint in sorted(order)
        )

    return EnsembleAnalytics(
        runs=len(metrics),
        converged=converged,
        accuracy=(
            sum(1 for c in corrects if c) / len(corrects) if corrects else None
        ),
        quantile_points=points,
        stable_consensus_quantiles=(
            tuple(quantile(stable, point) for point in points) if stable else None
        ),
        first_consensus_quantiles=(
            tuple(quantile(first, point) for point in points) if first else None
        ),
        histogram=pooled_histogram(histograms) if histograms else None,
        mean_curve=mean_curve,
        all_complete=all(m.get("trajectory_complete", False) for m in metrics),
    )
