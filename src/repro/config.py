"""Central runtime configuration: the only sanctioned environment reader.

Every knob the library takes from the process environment is read *here* and
nowhere else.  This is a determinism measure, not a convenience: environment
reads scattered across modules are invisible inputs to the simulation — two
"identical" runs can diverge because a worker inherited a variable the caller
never knew was consulted.  Funnelling them through one module keeps the full
set of environmental inputs auditable at a glance, and the determinism linter
(:mod:`repro.qa.determinism`, rule ``DET103``) enforces the funnel statically:
``os.environ`` / ``os.getenv`` anywhere else in ``src/repro`` is a lint error.

The recognized variables:

``REPRO_FORCE_ENGINE``
    Overrides the ``engine="auto"`` choice of
    :class:`~repro.simulation.simulator.Simulator` (one of ``reference`` /
    ``compiled`` / ``numpy`` / ``ensemble`` / ``auto``).  The precedence is
    strict: an explicit ``engine=`` argument always wins (the override is
    then ignored, with a one-time :class:`RuntimeWarning` from
    :func:`notice_explicit_engine` so the mismatch is never silent), the
    override beats the auto heuristic, and the heuristic decides otherwise.
    Unknown engine names raise a :class:`ValueError` from either helper.
    Read through :func:`forced_engine`.

``REPRO_BATCH_DEFAULT_WORKERS``
    Default worker count of the process-backend batch layer
    (:mod:`repro.simulation.batch`) when ``max_workers`` is not given.  Read
    through :func:`default_batch_workers`.

``REPRO_FAULT_PLAN``
    A deterministic fault-injection plan for the distributed-sweep chaos
    harness (:mod:`repro.sweep.faults`): named injection points in the claim
    store and claim-loop runner fire scripted ``raise``/``kill``/``drop``
    actions on scripted hit counts, so crash tests are reproducible.  The
    variable holds the plan's text rendering (e.g. ``"mid-cell@1:kill"``);
    parsing lives in :mod:`repro.sweep.faults` — this module only reads the
    raw text through :func:`fault_plan_text`.  Empty/unset means no faults.
    Fault injection only ever interrupts *bookkeeping and control flow*,
    never the simulations themselves, so an installed plan cannot change any
    computed result — only whether (and when) it gets committed.

All helpers read the environment on every call (no caching), so tests can
monkeypatch ``os.environ`` and worker processes inherit whatever the parent
exported at spawn time — the behavior the CI jobs pin.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional, Sequence, Set, Tuple

__all__ = [
    "BATCH_WORKERS_ENV",
    "FAULT_PLAN_ENV",
    "FORCE_ENGINE_ENV",
    "default_batch_workers",
    "fault_plan_text",
    "forced_engine",
    "notice_explicit_engine",
]

#: Environment override consulted by ``engine="auto"`` only (see
#: :func:`forced_engine`).
FORCE_ENGINE_ENV = "REPRO_FORCE_ENGINE"

#: Environment override for the default batch worker count (used by the CI
#: batch smoke job to pin the suite to a known degree of parallelism).
BATCH_WORKERS_ENV = "REPRO_BATCH_DEFAULT_WORKERS"

#: Environment carrier for the deterministic fault-injection plan of the
#: distributed-sweep chaos harness (parsed by :mod:`repro.sweep.faults`).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


def fault_plan_text() -> str:
    """The raw ``REPRO_FAULT_PLAN`` text, or ``""`` when unset.

    Only the *read* lives here (the sanctioned environment funnel); the plan
    grammar and its validation live in :mod:`repro.sweep.faults`, which calls
    this lazily the first time a fault point is evaluated with no plan
    installed programmatically.
    """
    return os.environ.get(FAULT_PLAN_ENV, "").strip()


def forced_engine(valid: Sequence[str]) -> Optional[str]:
    """The ``REPRO_FORCE_ENGINE`` override, validated against ``valid``.

    Returns ``None`` when the variable is unset, empty, or explicitly
    ``"auto"`` (auto is the absence of a force).  Any other value must be one
    of ``valid`` or a :class:`ValueError` names the variable — a typo'd CI
    job must fail loudly rather than silently test the wrong engine.
    """
    forced = os.environ.get(FORCE_ENGINE_ENV)
    if not forced or forced == "auto":
        return None
    if forced not in valid:
        raise ValueError(
            f"{FORCE_ENGINE_ENV} must be one of {tuple(valid)}, got {forced!r}"
        )
    return forced


#: (forced, explicit) pairs already warned about — the ignored-override
#: warning fires once per distinct mismatch per process, not once per
#: Simulator construction (ensembles build thousands).
_IGNORED_FORCE_WARNED: Set[Tuple[str, str]] = set()


def notice_explicit_engine(engine: str, valid: Sequence[str]) -> None:
    """Note that an explicit ``engine=`` argument is in effect.

    ``REPRO_FORCE_ENGINE`` only overrides ``engine="auto"``; with an explicit
    engine the variable is ignored.  Historically that was a *silent* no-op —
    a CI job exporting ``REPRO_FORCE_ENGINE=numpy`` around code passing
    ``engine="compiled"`` kept testing the compiled engine without a trace.
    This helper makes the precedence visible: when the variable is set to a
    different engine than the explicit argument, it emits a one-time
    :class:`RuntimeWarning` per ``(forced, explicit)`` pair.  An unset/empty
    variable, ``"auto"``, or a force that agrees with the explicit engine
    stay silent; an unknown engine name raises :class:`ValueError` exactly
    like :func:`forced_engine`, so a typo fails loudly in every mode.
    """
    forced = os.environ.get(FORCE_ENGINE_ENV)
    if not forced or forced == "auto":
        return
    if forced not in valid:
        raise ValueError(
            f"{FORCE_ENGINE_ENV} must be one of {tuple(valid)}, got {forced!r}"
        )
    if forced == engine:
        return
    key = (forced, engine)
    if key in _IGNORED_FORCE_WARNED:
        return
    _IGNORED_FORCE_WARNED.add(key)
    warnings.warn(
        f"{FORCE_ENGINE_ENV}={forced} is ignored: engine={engine!r} was "
        "passed explicitly (the override only applies to engine='auto')",
        RuntimeWarning,
        stacklevel=3,
    )


def default_batch_workers() -> int:
    """The default batch worker count: the environment override, else the CPU
    count (at least 1).

    A non-integer ``REPRO_BATCH_DEFAULT_WORKERS`` raises a :class:`ValueError`
    naming the variable; values below 1 are clamped to 1.
    """
    override = os.environ.get(BATCH_WORKERS_ENV)
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            raise ValueError(
                f"{BATCH_WORKERS_ENV} must be an integer worker count, "
                f"got {override!r}"
            ) from None
    return os.cpu_count() or 1
