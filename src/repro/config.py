"""Central runtime configuration: the only sanctioned environment reader.

Every knob the library takes from the process environment is read *here* and
nowhere else.  This is a determinism measure, not a convenience: environment
reads scattered across modules are invisible inputs to the simulation — two
"identical" runs can diverge because a worker inherited a variable the caller
never knew was consulted.  Funnelling them through one module keeps the full
set of environmental inputs auditable at a glance, and the determinism linter
(:mod:`repro.qa.determinism`, rule ``DET103``) enforces the funnel statically:
``os.environ`` / ``os.getenv`` anywhere else in ``src/repro`` is a lint error.

The recognized variables:

``REPRO_FORCE_ENGINE``
    Overrides the ``engine="auto"`` choice of
    :class:`~repro.simulation.simulator.Simulator` (one of ``reference`` /
    ``compiled`` / ``numpy`` / ``ensemble`` / ``auto``).  The precedence is
    strict: an explicit ``engine=`` argument always wins (the override is
    then ignored, with a one-time :class:`RuntimeWarning` from
    :func:`notice_explicit_engine` so the mismatch is never silent), the
    override beats the auto heuristic, and the heuristic decides otherwise.
    Unknown engine names raise a :class:`ValueError` from either helper.
    Read through :func:`forced_engine`.

``REPRO_BATCH_DEFAULT_WORKERS``
    Default worker count of the process-backend batch layer
    (:mod:`repro.simulation.batch`) when ``max_workers`` is not given.  Read
    through :func:`default_batch_workers`.

``REPRO_FAULT_PLAN``
    A deterministic fault-injection plan for the distributed-sweep chaos
    harness (:mod:`repro.sweep.faults`): named injection points in the claim
    store and claim-loop runner fire scripted ``raise``/``kill``/``drop``
    actions on scripted hit counts, so crash tests are reproducible.  The
    variable holds the plan's text rendering (e.g. ``"mid-cell@1:kill"``);
    parsing lives in :mod:`repro.sweep.faults` — this module only reads the
    raw text through :func:`fault_plan_text`.  Empty/unset means no faults.
    Fault injection only ever interrupts *bookkeeping and control flow*,
    never the simulations themselves, so an installed plan cannot change any
    computed result — only whether (and when) it gets committed.

``REPRO_SERVE_HOST`` / ``REPRO_SERVE_PORT``
    Bind address of the ``python -m repro.serve`` job server (defaults
    ``127.0.0.1:8765``; port ``0`` asks the OS for an ephemeral port).  Read
    through :func:`serve_host` / :func:`serve_port`.

``REPRO_SERVE_CACHE_SIZE``
    Capacity of the serve layer's content-addressed LRU result cache, in
    completed-job payloads (default 256, minimum 1).  Read through
    :func:`serve_cache_size`.

``REPRO_SERVE_MAX_INFLIGHT``
    Per-client in-flight job cap before the server answers 429 (default 8,
    minimum 1).  Read through :func:`serve_max_inflight`.

``REPRO_TRACE`` / ``REPRO_TRACE_PATH``
    The observability layer's tracing switch (:mod:`repro.obs`): when
    ``REPRO_TRACE`` is truthy, the CLI entry points install a JSONL trace
    writer on ``REPRO_TRACE_PATH`` (default ``repro_trace.jsonl``) and every
    instrumented layer — engines, pools, sweep runners, the serve loop —
    emits span events into it.  Read through :func:`trace_enabled` /
    :func:`trace_path`.  Tracing never feeds back into simulation state, so
    the knob cannot change any computed result.

``REPRO_METRICS``
    Enables the engine profiling hooks (:mod:`repro.obs.profile`): sampled
    stepper timings flow into the process-wide metrics registry.  Off by
    default — the hooks compile down to a single predicate check per run,
    bench-asserted to cost ≤2% on the compiled engine.  Read through
    :func:`metrics_enabled`.

All integer knobs share one discipline (:func:`_positive_int_env`): malformed
or out-of-range values raise a :class:`ValueError` naming the variable —
configuration is never silently repaired.  Boolean knobs
(:func:`_bool_env`) accept ``1/true/yes/on`` and ``0/false/no/off`` only.

This module is also the **clock funnel** of the observability layer:
:func:`wall_time` is the only sanctioned wall-clock read in the library
(trace files carry one wall timestamp in their header so operators can line
a trace up with external logs), and :func:`monotonic_time` is the blessed
monotonic source for span durations.  Routing every observability clock read
through here keeps the determinism linter's DET102 discipline meaningful:
the simulation layers still contain no clock reads at all, and the single
wall-clock site below is pragma'd where any reviewer of environmental inputs
will see it.

All helpers read the environment on every call (no caching), so tests can
monkeypatch ``os.environ`` and worker processes inherit whatever the parent
exported at spawn time — the behavior the CI jobs pin.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Optional, Sequence, Set, Tuple

__all__ = [
    "BATCH_WORKERS_ENV",
    "DEFAULT_SERVE_CACHE_SIZE",
    "DEFAULT_SERVE_HOST",
    "DEFAULT_SERVE_MAX_INFLIGHT",
    "DEFAULT_SERVE_PORT",
    "DEFAULT_TRACE_PATH",
    "FAULT_PLAN_ENV",
    "FORCE_ENGINE_ENV",
    "METRICS_ENV",
    "SERVE_CACHE_SIZE_ENV",
    "SERVE_HOST_ENV",
    "SERVE_MAX_INFLIGHT_ENV",
    "SERVE_PORT_ENV",
    "TRACE_ENV",
    "TRACE_PATH_ENV",
    "default_batch_workers",
    "fault_plan_text",
    "forced_engine",
    "metrics_enabled",
    "monotonic_time",
    "notice_explicit_engine",
    "serve_cache_size",
    "serve_host",
    "serve_max_inflight",
    "serve_port",
    "trace_enabled",
    "trace_path",
    "wall_time",
]

#: Environment override consulted by ``engine="auto"`` only (see
#: :func:`forced_engine`).
FORCE_ENGINE_ENV = "REPRO_FORCE_ENGINE"

#: Environment override for the default batch worker count (used by the CI
#: batch smoke job to pin the suite to a known degree of parallelism).
BATCH_WORKERS_ENV = "REPRO_BATCH_DEFAULT_WORKERS"

#: Environment carrier for the deterministic fault-injection plan of the
#: distributed-sweep chaos harness (parsed by :mod:`repro.sweep.faults`).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: ``repro.serve`` bind host / bind port / result-cache capacity / per-client
#: in-flight cap (see :func:`serve_host` and friends).
SERVE_HOST_ENV = "REPRO_SERVE_HOST"
SERVE_PORT_ENV = "REPRO_SERVE_PORT"
SERVE_CACHE_SIZE_ENV = "REPRO_SERVE_CACHE_SIZE"
SERVE_MAX_INFLIGHT_ENV = "REPRO_SERVE_MAX_INFLIGHT"

#: Defaults for the serve knobs when the variables are unset.
DEFAULT_SERVE_HOST = "127.0.0.1"
DEFAULT_SERVE_PORT = 8765
DEFAULT_SERVE_CACHE_SIZE = 256
DEFAULT_SERVE_MAX_INFLIGHT = 8

#: Observability knobs: the tracing switch, the trace file path, and the
#: engine-profiling switch (see :func:`trace_enabled` and friends).
TRACE_ENV = "REPRO_TRACE"
TRACE_PATH_ENV = "REPRO_TRACE_PATH"
METRICS_ENV = "REPRO_METRICS"

#: Where trace events land when ``REPRO_TRACE`` is on and no path is given.
DEFAULT_TRACE_PATH = "repro_trace.jsonl"

#: Truthy / falsy spellings accepted by boolean knobs.
_BOOL_TRUE = frozenset({"1", "true", "yes", "on"})
_BOOL_FALSE = frozenset({"0", "false", "no", "off"})


def fault_plan_text() -> str:
    """The raw ``REPRO_FAULT_PLAN`` text, or ``""`` when unset.

    Only the *read* lives here (the sanctioned environment funnel); the plan
    grammar and its validation live in :mod:`repro.sweep.faults`, which calls
    this lazily the first time a fault point is evaluated with no plan
    installed programmatically.
    """
    return os.environ.get(FAULT_PLAN_ENV, "").strip()


def forced_engine(valid: Sequence[str]) -> Optional[str]:
    """The ``REPRO_FORCE_ENGINE`` override, validated against ``valid``.

    Returns ``None`` when the variable is unset, empty, or explicitly
    ``"auto"`` (auto is the absence of a force).  Any other value must be one
    of ``valid`` or a :class:`ValueError` names the variable — a typo'd CI
    job must fail loudly rather than silently test the wrong engine.
    """
    forced = os.environ.get(FORCE_ENGINE_ENV)
    if not forced or forced == "auto":
        return None
    if forced not in valid:
        raise ValueError(
            f"{FORCE_ENGINE_ENV} must be one of {tuple(valid)}, got {forced!r}"
        )
    return forced


#: (forced, explicit) pairs already warned about — the ignored-override
#: warning fires once per distinct mismatch per process, not once per
#: Simulator construction (ensembles build thousands).
_IGNORED_FORCE_WARNED: Set[Tuple[str, str]] = set()


def notice_explicit_engine(engine: str, valid: Sequence[str]) -> None:
    """Note that an explicit ``engine=`` argument is in effect.

    ``REPRO_FORCE_ENGINE`` only overrides ``engine="auto"``; with an explicit
    engine the variable is ignored.  Historically that was a *silent* no-op —
    a CI job exporting ``REPRO_FORCE_ENGINE=numpy`` around code passing
    ``engine="compiled"`` kept testing the compiled engine without a trace.
    This helper makes the precedence visible: when the variable is set to a
    different engine than the explicit argument, it emits a one-time
    :class:`RuntimeWarning` per ``(forced, explicit)`` pair.  An unset/empty
    variable, ``"auto"``, or a force that agrees with the explicit engine
    stay silent; an unknown engine name raises :class:`ValueError` exactly
    like :func:`forced_engine`, so a typo fails loudly in every mode.
    """
    forced = os.environ.get(FORCE_ENGINE_ENV)
    if not forced or forced == "auto":
        return
    if forced not in valid:
        raise ValueError(
            f"{FORCE_ENGINE_ENV} must be one of {tuple(valid)}, got {forced!r}"
        )
    if forced == engine:
        return
    key = (forced, engine)
    if key in _IGNORED_FORCE_WARNED:
        return
    _IGNORED_FORCE_WARNED.add(key)
    warnings.warn(
        f"{FORCE_ENGINE_ENV}={forced} is ignored: engine={engine!r} was "
        "passed explicitly (the override only applies to engine='auto')",
        RuntimeWarning,
        stacklevel=3,
    )


def _positive_int_env(name: str, default: int, minimum: int = 1) -> int:
    """Read an integer knob, failing loudly on malformed or out-of-range values.

    The fail-loudly convention of :func:`forced_engine` applied to numeric
    knobs: a typo'd CI export must abort, never be silently "repaired" into a
    value the operator did not ask for.
    """
    override = os.environ.get(name)
    if not override:
        return default
    try:
        value = int(override)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {override!r}"
        ) from None
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {override!r}")
    return value


def default_batch_workers() -> int:
    """The default batch worker count: the environment override, else the CPU
    count (at least 1).

    A non-integer ``REPRO_BATCH_DEFAULT_WORKERS`` raises a :class:`ValueError`
    naming the variable, and so do values below 1 — a zero or negative worker
    count is always a configuration mistake, and clamping it to 1 (the old
    behavior) hid exactly the kind of silent environmental repair this module
    exists to prevent.
    """
    override = _positive_int_env(BATCH_WORKERS_ENV, 0)
    if override:
        return override
    return os.cpu_count() or 1


def serve_host() -> str:
    """The ``repro.serve`` bind host (``REPRO_SERVE_HOST``, default loopback)."""
    return os.environ.get(SERVE_HOST_ENV, "").strip() or DEFAULT_SERVE_HOST


def serve_port() -> int:
    """The ``repro.serve`` bind port (``REPRO_SERVE_PORT``).

    ``0`` is valid and means "let the OS pick an ephemeral port" (the smoke
    scripts use it to avoid collisions); anything non-integer or negative
    raises a :class:`ValueError` naming the variable.
    """
    return _positive_int_env(SERVE_PORT_ENV, DEFAULT_SERVE_PORT, minimum=0)


def serve_cache_size() -> int:
    """The ``repro.serve`` result-cache capacity (``REPRO_SERVE_CACHE_SIZE``).

    Completed job payloads retained for content-addressed cache hits, evicted
    least-recently-used beyond this many entries.  Must be at least 1.
    """
    return _positive_int_env(SERVE_CACHE_SIZE_ENV, DEFAULT_SERVE_CACHE_SIZE)


def serve_max_inflight() -> int:
    """The ``repro.serve`` per-client in-flight cap (``REPRO_SERVE_MAX_INFLIGHT``).

    How many uncompleted jobs one client may have queued or running before
    new submissions are rejected with HTTP 429.  Must be at least 1.
    """
    return _positive_int_env(SERVE_MAX_INFLIGHT_ENV, DEFAULT_SERVE_MAX_INFLIGHT)


# ----------------------------------------------------------------------
# Observability knobs and the clock funnel
# ----------------------------------------------------------------------
def _bool_env(name: str, default: bool) -> bool:
    """Read a boolean knob, failing loudly on unrecognized spellings.

    The fail-loudly convention of :func:`_positive_int_env` for switches:
    ``REPRO_TRACE=ture`` must abort, never silently disable tracing the
    operator asked for.
    """
    override = os.environ.get(name)
    if override is None or not override.strip():
        return default
    lowered = override.strip().lower()
    if lowered in _BOOL_TRUE:
        return True
    if lowered in _BOOL_FALSE:
        return False
    raise ValueError(
        f"{name} must be one of 1/true/yes/on or 0/false/no/off, got {override!r}"
    )


def trace_enabled() -> bool:
    """Whether ``REPRO_TRACE`` asks the CLI entry points to install tracing.

    This is the *environment* switch consulted at process entry
    (``python -m repro.sweep`` / ``python -m repro.serve``); library callers
    install a tracer programmatically via
    :func:`repro.obs.install_tracer` regardless of the variable.
    """
    return _bool_env(TRACE_ENV, False)


def trace_path() -> str:
    """The trace file path (``REPRO_TRACE_PATH``, default ``repro_trace.jsonl``)."""
    override = os.environ.get(TRACE_PATH_ENV, "").strip()
    return override or DEFAULT_TRACE_PATH


def metrics_enabled() -> bool:
    """Whether ``REPRO_METRICS`` enables the engine profiling hooks.

    Off by default: with the hooks disabled the stepper entry points pay one
    predicate check per run (bench E15 asserts ≤2% on the compiled engine).
    """
    return _bool_env(METRICS_ENV, False)


def monotonic_time() -> float:
    """The sanctioned monotonic clock for span durations and profiling.

    ``time.monotonic`` is DET102-exempt (it measures, it cannot leak into
    results that are pure functions of inputs and seed), but the
    observability layer still reads it through this funnel so every clock
    the library consults is named in one module.
    """
    return time.monotonic()


def wall_time() -> float:
    """The sanctioned wall-clock read: trace-file headers only.

    The single ``time.time()`` site in the library.  Trace files carry one
    wall timestamp in their header so operators can line a trace up with
    external logs; nothing downstream of a simulation ever sees the value,
    and the canonical trace rendering drops it.  The pragma below is the
    clock funnel's one sanctioned exemption — the determinism linter flags
    any other wall-clock read in ``src/repro`` as DET102.
    """
    return time.time()  # qa: allow[DET102] -- the sanctioned wall-clock funnel
