"""The :mod:`repro.serve` asyncio HTTP job server.

One long-lived process, one shared :class:`~repro.simulation.batch.WorkerPool`,
many clients.  The event loop owns *all* server state (submission handling,
the queue, the cache, metrics); only the blocking ensemble execution leaves
the loop, dispatched to a small thread executor whose threads serialize on
the pool's dispatch lock — the thread-safety contract the pool now documents.

The moving parts:

* **Content-addressed cache.**  Jobs are keyed by
  :attr:`~repro.serve.jobs.JobSpec.key` (SHA-256 of the canonical cell
  identity plus run policy).  A completed payload lands in a bounded LRU
  (:data:`~repro.config.DEFAULT_SERVE_CACHE_SIZE` entries); a resubmission
  of the same key is answered from cache with zero pool work.  Submissions
  of a key that is *currently* queued or running coalesce onto the existing
  job — the duplicate does not enqueue twice.
* **Backpressure.**  Each client (the ``X-Client-Id`` header, else the peer
  address) may have at most ``max_inflight`` uncompleted jobs attached; the
  next submission is rejected with HTTP 429 and a ``Retry-After`` hint,
  protecting the pool from any single client's burst.
* **Graceful drain.**  SIGTERM/SIGINT (wired by ``python -m repro.serve``)
  calls :meth:`SimulationServer.request_drain`: new submissions are refused
  with 503, queued and running jobs complete and land in the cache, status
  polls keep working throughout, and the process then exits 0 — the same
  finish-what-you-hold semantics as the sweep layer's ``claim_worker``.

Endpoints (HTTP/1.1, ``Connection: close``):

========================  ====================================================
``POST /jobs``            submit a JSON job spec; 200 with the result on a
                          cache hit, 202 with the job key otherwise, 400 on
                          validation errors, 429 over the in-flight cap,
                          503 while draining
``GET /jobs/<key>``       poll: ``queued`` / ``running`` / ``done`` (with
                          result) / ``error`` (with message), 404 unknown
``GET /metrics``          plain-text counters (jobs, cache, queue, pool)
``GET /healthz``          ``ok`` (or ``draining``)
========================  ====================================================

:class:`BackgroundServer` wraps the whole lifecycle in a daemon thread with
an ephemeral port for tests and the quickstart example.
"""

from __future__ import annotations

import asyncio
import collections
import contextvars
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Deque, Dict, Optional, Set, Tuple

from .. import config
from ..obs import trace as _obs_trace
from ..obs.registry import MetricsRegistry
from ..simulation.batch import WorkerPool
from .jobs import JobExecutor, JobSpec

__all__ = ["BackgroundServer", "ServeMetrics", "SimulationServer"]

#: Submission bodies larger than this are refused outright (413) — a job
#: spec is a handful of scalars; anything bigger is a client bug.
_MAX_BODY_BYTES = 1 << 20

#: Per-read timeout while parsing a request (seconds); keeps a stalled
#: client from pinning a connection handler forever.
_READ_TIMEOUT = 10.0

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServeMetrics:
    """The server's job counters, backed by a metrics registry.

    Each :class:`SimulationServer` owns a private
    :class:`~repro.obs.registry.MetricsRegistry` (servers constructed in the
    same process — tests, embedded replicas — must not share counters), and
    these counters live in it as ``repro_serve_<name>`` families.  Mutation
    goes through :meth:`inc` (still only on the event loop); attribute reads
    (``metrics.jobs_completed``) and attribute writes keep working for
    compatibility, proxied onto the registry counters.
    """

    _COUNTER_HELP = (
        ("jobs_submitted", "Jobs accepted (cache hits, coalesced, queued)."),
        ("jobs_completed", "Jobs that finished and entered the cache."),
        ("jobs_failed", "Jobs whose execution raised."),
        ("jobs_coalesced", "Submissions merged onto an in-flight job."),
        ("rejected_backpressure", "Submissions refused with HTTP 429."),
        ("rejected_draining", "Submissions refused while draining."),
        ("cache_hits", "Submissions answered from the result cache."),
        ("cache_misses", "Submissions that missed the result cache."),
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {
            name: self.registry.counter(f"repro_serve_{name}", help_text)
            for name, help_text in self._COUNTER_HELP
        }

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name].inc(amount)

    def __getattr__(self, name: str) -> int:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value()
        raise AttributeError(
            f"{type(self).__name__} has no attribute {name!r}"
        )

    def __setattr__(self, name: str, value: Any) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            # ``metrics.jobs_failed += 1`` spells read-then-write; apply the
            # delta to the registry counter (negative deltas raise there).
            counters[name].inc(value - counters[name].value())
            return
        super().__setattr__(name, value)

    def as_dict(self) -> Dict[str, int]:
        return {name: counter.value() for name, counter in self._counters.items()}


class _Job:
    """One active (queued or running) job and the clients attached to it."""

    __slots__ = ("spec", "key", "status", "clients", "submitted_at")

    def __init__(self, spec: JobSpec, clients: Set[str]) -> None:
        self.spec = spec
        self.key = spec.key
        self.status = "queued"
        self.clients = clients
        #: Monotonic submission time, for the queue-wait histogram/span.
        self.submitted_at = config.monotonic_time()


class SimulationServer:
    """The job server: HTTP front, queue, cache, and one shared pool.

    Parameters default to the ``REPRO_SERVE_*`` knobs in :mod:`repro.config`
    (the sanctioned environment funnel).  ``backend="serial"`` skips the
    worker pool and runs ensembles on cached in-process simulators — the
    fast path for tests; ``backend="process"`` (the default) fronts a
    :class:`~repro.simulation.batch.WorkerPool` of ``max_workers``
    processes.  ``concurrency`` is how many jobs may execute at once (the
    consumer-task count; pool dispatch still serializes ensembles, so this
    mainly overlaps Python-side build/render work with simulation).
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        backend: str = "process",
        max_workers: Optional[int] = None,
        cache_size: Optional[int] = None,
        max_inflight: Optional[int] = None,
        concurrency: int = 2,
        start_method: Optional[str] = None,
        job_timeout: Optional[float] = None,
    ) -> None:
        if backend not in ("serial", "process"):
            raise ValueError(
                f"backend must be 'serial' or 'process', got {backend!r}"
            )
        if concurrency < 1:
            raise ValueError(f"concurrency must be at least 1, got {concurrency}")
        self.host = host if host is not None else config.serve_host()
        self.requested_port = port if port is not None else config.serve_port()
        self.backend = backend
        self.max_workers = max_workers
        self.cache_size = (
            cache_size if cache_size is not None else config.serve_cache_size()
        )
        if self.cache_size < 1:
            raise ValueError(
                f"cache_size must be at least 1, got {self.cache_size}"
            )
        self.max_inflight = (
            max_inflight if max_inflight is not None else config.serve_max_inflight()
        )
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be at least 1, got {self.max_inflight}"
            )
        self.concurrency = concurrency
        self.start_method = start_method
        self.job_timeout = job_timeout

        self.port: Optional[int] = None
        self.metrics = ServeMetrics()
        self._queue_wait = self.metrics.registry.histogram(
            "repro_serve_job_queue_wait_seconds",
            "Time a job spent queued before a consumer picked it up.",
        )
        self._exec_seconds = self.metrics.registry.histogram(
            "repro_serve_job_exec_seconds",
            "Time a job spent executing (pool dispatch plus ensemble).",
        )
        self._pool: Optional[WorkerPool] = None
        self._job_executor: Optional[JobExecutor] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._http_server: Optional[asyncio.AbstractServer] = None
        self._consumers: list = []
        self._work_available: Optional[asyncio.Event] = None
        self._pending: Deque[_Job] = collections.deque()
        self._active: Dict[str, _Job] = {}
        self._running = 0
        self._cache: "collections.OrderedDict[str, Dict[str, Any]]" = (
            collections.OrderedDict()
        )
        self._failed: "collections.OrderedDict[str, str]" = collections.OrderedDict()
        self._clients: Dict[str, Set[str]] = {}
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener, build the pool, and start the consumers."""
        if self._http_server is not None:
            raise RuntimeError("server already started")
        loop = asyncio.get_running_loop()
        self._work_available = asyncio.Event()
        if self.backend == "process":
            self._pool = WorkerPool(
                max_workers=self.max_workers, start_method=self.start_method
            )
        self._job_executor = JobExecutor(pool=self._pool, timeout=self.job_timeout)
        self._executor = ThreadPoolExecutor(
            max_workers=self.concurrency, thread_name_prefix="repro-serve-job"
        )
        self._http_server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.requested_port
        )
        sockets = self._http_server.sockets or []
        self.port = sockets[0].getsockname()[1] if sockets else self.requested_port
        self._consumers = [
            loop.create_task(self._consume()) for _ in range(self.concurrency)
        ]

    def request_drain(self) -> None:
        """Stop accepting jobs; finish queued and running ones, then stop.

        Idempotent, callable from the event loop (signal handlers) or via
        ``call_soon_threadsafe`` from other threads.  Status polls,
        ``/metrics`` and ``/healthz`` keep answering until the last consumer
        finishes.
        """
        self._draining = True
        if self._work_available is not None:
            self._work_available.set()

    async def wait_drained(self) -> None:
        """Block until every consumer has exited (drain requested + queue dry)."""
        if self._consumers:
            await asyncio.gather(*self._consumers)

    async def shutdown(self) -> None:
        """Close the listener, the executor, and the pool (after drain)."""
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
            self._http_server = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    async def serve(self) -> None:
        """The full lifecycle: start, run until drained, shut down."""
        await self.start()
        await self.wait_drained()
        await self.shutdown()

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    async def _consume(self) -> None:
        loop = asyncio.get_running_loop()
        assert self._work_available is not None
        while True:
            if self._pending:
                job = self._pending.popleft()
                await self._process(loop, job)
                continue
            if self._draining:
                return
            # No await between clear() and wait(): submissions (which append
            # then set) run on this same loop, so the re-check cannot race.
            self._work_available.clear()
            await self._work_available.wait()

    async def _process(self, loop: asyncio.AbstractEventLoop, job: _Job) -> None:
        job.status = "running"
        self._running += 1
        assert self._job_executor is not None
        queue_wait = config.monotonic_time() - job.submitted_at
        self._queue_wait.observe(queue_wait)
        with _obs_trace.span(
            "serve-job", kind="serve-job", job=job.key, queue_wait=queue_wait
        ) as job_span:
            exec_t0 = config.monotonic_time()
            try:
                # copy_context() carries the serve-job span into the executor
                # thread, so the pool's dispatch span (and the adopted worker
                # chunks under it) parent correctly in the trace tree.
                context = contextvars.copy_context()
                payload = await loop.run_in_executor(
                    self._executor, context.run, self._job_executor.run, job.spec
                )
            except Exception as error:
                self._failed[job.key] = f"{type(error).__name__}: {error}"
                while len(self._failed) > self.cache_size:
                    self._failed.popitem(last=False)
                job.status = "error"
                job_span.set(status="error")
                self.metrics.inc("jobs_failed")
            else:
                self._cache[job.key] = payload
                self._cache.move_to_end(job.key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                job.status = "done"
                job_span.set(status="done")
                self.metrics.inc("jobs_completed")
            finally:
                exec_seconds = config.monotonic_time() - exec_t0
                self._exec_seconds.observe(exec_seconds)
                job_span.set(exec_seconds=exec_seconds)
                self._running -= 1
                self._active.pop(job.key, None)
                for client in job.clients:
                    held = self._clients.get(client)
                    if held is not None:
                        held.discard(job.key)
                        if not held:
                            self._clients.pop(client, None)

    # ------------------------------------------------------------------
    # Request handling (sync core, exercised directly by the unit tests)
    # ------------------------------------------------------------------
    def _submit(
        self, payload: Any, client: str
    ) -> Tuple[int, Dict[str, Any]]:
        if self._draining:
            self.metrics.inc("rejected_draining")
            return 503, {"error": "server is draining; not accepting new jobs"}
        try:
            spec = JobSpec.from_dict(payload)
        except (ValueError, TypeError) as error:
            return 400, {"error": str(error)}
        key = spec.key
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.metrics.inc("jobs_submitted")
            self.metrics.inc("cache_hits")
            return 200, {
                "job": key,
                "status": "done",
                "cached": True,
                "result": cached,
            }
        self.metrics.inc("cache_misses")
        held = self._clients.setdefault(client, set())
        active = self._active.get(key)
        if key not in held and len(held) >= self.max_inflight:
            if not held:
                self._clients.pop(client, None)
            self.metrics.inc("rejected_backpressure")
            return 429, {
                "error": (
                    f"client {client!r} already has {len(held)} jobs in "
                    f"flight (cap {self.max_inflight}); retry after one "
                    "completes"
                ),
                "retry_after": 1.0,
            }
        self.metrics.inc("jobs_submitted")
        if active is not None:
            # Same content key already queued or running: coalesce instead
            # of computing the ensemble twice.
            active.clients.add(client)
            held.add(key)
            self.metrics.inc("jobs_coalesced")
            return 202, {
                "job": key,
                "status": active.status,
                "cached": False,
                "coalesced": True,
            }
        job = _Job(spec, {client})
        held.add(key)
        self._active[key] = job
        self._pending.append(job)
        if self._work_available is not None:
            self._work_available.set()
        return 202, {"job": key, "status": "queued", "cached": False}

    def _job_status(self, key: str) -> Tuple[int, Dict[str, Any]]:
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return 200, {"job": key, "status": "done", "result": cached}
        active = self._active.get(key)
        if active is not None:
            return 200, {"job": key, "status": active.status}
        error = self._failed.get(key)
        if error is not None:
            return 200, {"job": key, "status": "error", "error": error}
        return 404, {"error": f"unknown job {key!r}"}

    _GAUGE_HELP = (
        ("queue_depth", "Jobs queued and waiting for a pool slot."),
        ("jobs_inflight", "Jobs currently executing."),
        ("pool_utilization", "Fraction of the concurrency cap in use."),
        ("pool_workers", "Worker processes in the backing pool."),
        ("cache_entries", "Results currently held in the LRU cache."),
        ("cache_capacity", "Configured LRU cache capacity."),
        ("clients_tracked", "Clients with at least one job in flight."),
        ("draining", "1 while the server is draining, else 0."),
    )

    def metrics_text(self) -> str:
        """The ``/metrics`` payload in Prometheus text exposition format.

        Point-in-time state is refreshed into registry gauges on every
        scrape; counters and histograms accumulate at their call sites.
        Deliberately excludes anything clock-derived (no uptime), so two
        scrapes of an idle server are byte-identical — a property the
        regression tests pin.
        """
        registry = self.metrics.registry
        values = {
            "queue_depth": len(self._pending),
            "jobs_inflight": self._running,
            "pool_utilization": round(self._running / self.concurrency, 3),
            "pool_workers": (
                self._pool.workers if self._pool is not None else 0
            ),
            "cache_entries": len(self._cache),
            "cache_capacity": self.cache_size,
            "clients_tracked": len(self._clients),
            "draining": int(self._draining),
        }
        for name, help_text in self._GAUGE_HELP:
            registry.gauge(f"repro_serve_{name}", help_text).set(values[name])
        return registry.render()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _route(
        self, method: str, target: str, client: str, body: bytes
    ) -> Tuple[int, Any, str]:
        """Dispatch one parsed request to (status, payload, content type)."""
        if target == "/healthz":
            if method != "GET":
                return 405, {"error": "healthz is GET-only"}, "application/json"
            text = "draining\n" if self._draining else "ok\n"
            return 200, text, "text/plain; charset=utf-8"
        if target == "/metrics":
            if method != "GET":
                return 405, {"error": "metrics is GET-only"}, "application/json"
            return 200, self.metrics_text(), "text/plain; charset=utf-8"
        if target == "/jobs":
            if method != "POST":
                return 405, {"error": "submit jobs with POST /jobs"}, "application/json"
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return 400, {"error": f"request body is not JSON: {error}"}, "application/json"
            status, response = self._submit(payload, client)
            return status, response, "application/json"
        if target.startswith("/jobs/"):
            if method != "GET":
                return 405, {"error": "poll jobs with GET /jobs/<key>"}, "application/json"
            status, response = self._job_status(target[len("/jobs/"):])
            return status, response, "application/json"
        return 404, {"error": f"no such endpoint: {method} {target}"}, "application/json"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload, content_type = await self._read_and_route(
                reader, writer
            )
            await self._write_response(writer, status, payload, content_type)
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_and_route(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Tuple[int, Any, str]:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=_READ_TIMEOUT
        )
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}, "application/json"
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=_READ_TIMEOUT)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        if not length_text.isdigit():
            return 400, {"error": "invalid Content-Length"}, "application/json"
        length = int(length_text)
        if length > _MAX_BODY_BYTES:
            return 413, {"error": "job spec too large"}, "application/json"
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=_READ_TIMEOUT
            )
        peer = writer.get_extra_info("peername")
        client = headers.get("x-client-id") or (
            str(peer[0]) if isinstance(peer, tuple) and peer else "unknown"
        )
        return self._route(method, target, client, body)

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        content_type: str,
    ) -> None:
        if isinstance(payload, str):
            data = payload.encode("utf-8")
        else:
            data = json.dumps(payload).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        if status in (429, 503):
            head.append("Retry-After: 1")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + data)
        await writer.drain()


class BackgroundServer:
    """A :class:`SimulationServer` running in a daemon thread (tests, demos).

    Context-manager shaped: ``__enter__`` starts the loop thread, waits for
    the listener to bind (port 0 → ephemeral) and returns the handle with
    :attr:`url` set; ``__exit__`` requests a drain and joins the thread.
    """

    def __init__(self, **server_kwargs: Any) -> None:
        server_kwargs.setdefault("port", 0)
        self.server = SimulationServer(**server_kwargs)
        self.url: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=60.0):
            raise RuntimeError("serve thread failed to start within 60s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"serve thread failed to start: {self._startup_error}"
            )
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.drain()
        if self._thread is not None:
            self._thread.join(timeout=120.0)

    def drain(self) -> None:
        """Request a graceful drain from any thread."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self.server.request_drain)
            except RuntimeError:
                pass  # loop already stopped: drain is moot

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # pragma: no cover - startup failures
            self._startup_error = error
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        await self.server.start()
        self.url = f"http://{self.server.host}:{self.server.port}"
        self._started.set()
        await self.server.wait_drained()
        await self.server.shutdown()
