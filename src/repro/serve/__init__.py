"""Simulation-as-a-service: a job server over the batch subsystem.

The serving layer of the stack — where sweeps batch *one user's* grid over
the pool, this package fronts the same pool with a long-lived HTTP process
for *many* clients, built entirely on the stdlib (asyncio, ``json``,
``urllib``):

* :class:`JobSpec` (:mod:`repro.serve.jobs`) — one ensemble request,
  validated and normalized through the sweep layer's rejection rules, with
  a **content-addressed key**: SHA-256 of the canonical cell identity plus
  run policy, so identical requests — however spelled — share one key, one
  computation, and one cache entry.  Seeds derive from the same
  ``sha256(master_seed | scope)`` discipline as sweep cells, making served
  results bit-identical to direct :class:`~repro.simulation.simulator.Simulator`
  runs and to sweep rows.
* :class:`SimulationServer` (:mod:`repro.serve.server`) — the asyncio
  HTTP+JSON server: ``POST /jobs`` / ``GET /jobs/<key>`` / ``GET /metrics``
  / ``GET /healthz``, a bounded LRU result cache (duplicate submissions are
  cache hits; concurrent duplicates coalesce onto one running job), a
  per-client in-flight cap answered with 429, and graceful SIGTERM drain
  (finish what's queued and running, 503 new work, exit 0) mirroring the
  sweep claim-worker semantics.  :class:`BackgroundServer` runs the same
  lifecycle in a daemon thread for tests and examples.
* :class:`ServeClient` (:mod:`repro.serve.client`) — the tiny
  ``urllib`` client: submit / status / wait / run / metrics, with typed
  backpressure errors.
* ``python -m repro.serve`` (:mod:`repro.serve.__main__`) — the deployment
  entry point; configuration flows through the ``REPRO_SERVE_*`` knobs in
  :mod:`repro.config` (flags override).

Everything cacheable hangs off the content key, never the request bytes:
the cache can only ever conflate requests whose simulations are provably
identical, and two clients asking the same scientific question split one
ensemble's cost between them.
"""

from .client import JobFailedError, ServeClient, ServeError, ServeRejected
from .jobs import JobExecutor, JobSpec
from .server import BackgroundServer, ServeMetrics, SimulationServer

__all__ = [
    "BackgroundServer",
    "JobExecutor",
    "JobFailedError",
    "JobSpec",
    "ServeClient",
    "ServeError",
    "ServeMetrics",
    "ServeRejected",
    "SimulationServer",
]
