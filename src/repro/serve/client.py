"""A tiny stdlib client for the :mod:`repro.serve` job server.

``urllib.request`` only — scripting a served simulation needs nothing more
than submit / poll / wait:

.. code-block:: python

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8765")
    result = client.run({"protocol": "majority", "population": 60})
    print(result["statistics"]["convergence_rate"])

Error mapping is deliberately typed: 4xx/5xx answers raise
:class:`ServeError` carrying the HTTP status and decoded payload, with the
retryable rejections (429 backpressure, 503 draining) narrowed to
:class:`ServeRejected` so callers can back off without string-matching.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Mapping, Optional

__all__ = ["JobFailedError", "ServeClient", "ServeError", "ServeRejected"]


class ServeError(RuntimeError):
    """An HTTP-level failure from the job server."""

    def __init__(self, status: int, payload: Any) -> None:
        message = payload.get("error") if isinstance(payload, Mapping) else payload
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServeRejected(ServeError):
    """A retryable rejection: 429 (over the in-flight cap) or 503 (draining)."""


class JobFailedError(RuntimeError):
    """The server executed the job and it errored (status ``error``)."""


class ServeClient:
    """Submit, poll, and await jobs against one server base URL.

    ``client_id`` names this client to the server's per-client in-flight
    cap (the ``X-Client-Id`` header); unset, the server buckets by peer
    address.  ``timeout`` bounds each HTTP request, not a whole job — use
    the ``timeout`` argument of :meth:`wait` / :meth:`run` for that.
    """

    def __init__(
        self,
        base_url: str,
        client_id: Optional[str] = None,
        timeout: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.client_id = client_id
        self.timeout = timeout

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Any:
        headers = {"Content-Type": "application/json"}
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
                kind = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = raw.decode("utf-8", "replace")
            if error.code in (429, 503):
                raise ServeRejected(error.code, payload) from None
            raise ServeError(error.code, payload) from None
        if kind.startswith("application/json"):
            return json.loads(raw.decode("utf-8"))
        return raw.decode("utf-8")

    # ------------------------------------------------------------------
    # The API
    # ------------------------------------------------------------------
    def submit(self, job: Mapping[str, Any]) -> Dict[str, Any]:
        """``POST /jobs``: returns the submission response (see server docs).

        A content-cache hit comes back with ``"cached": True`` and the full
        ``"result"`` inline; otherwise the response carries the job key to
        poll.
        """
        body = json.dumps(dict(job)).encode("utf-8")
        return self._request("POST", "/jobs", body)

    def status(self, key: str) -> Dict[str, Any]:
        """``GET /jobs/<key>``: the job's current status document."""
        return self._request("GET", f"/jobs/{key}")

    def wait(
        self, key: str, timeout: float = 300.0, poll_interval: float = 0.05
    ) -> Dict[str, Any]:
        """Poll until the job completes; return its result payload.

        Raises :class:`JobFailedError` if the server reports the job
        errored, and :class:`TimeoutError` after ``timeout`` seconds
        (monotonic — a client-side budget, never a simulation input).
        """
        deadline = time.monotonic() + timeout
        while True:
            document = self.status(key)
            state = document.get("status")
            if state == "done":
                return document["result"]
            if state == "error":
                raise JobFailedError(document.get("error", "job failed"))
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {key} still {state!r} after {timeout:.1f}s"
                )
            time.sleep(poll_interval)

    def run(
        self, job: Mapping[str, Any], timeout: float = 300.0
    ) -> Dict[str, Any]:
        """Submit and wait in one call; returns the result payload."""
        response = self.submit(job)
        if response.get("cached"):
            return response["result"]
        return self.wait(response["job"], timeout=timeout)

    def metrics(self) -> Dict[str, float]:
        """``GET /metrics`` parsed into a ``{name: value}`` mapping.

        The payload is Prometheus text exposition: ``# HELP``/``# TYPE``
        comment lines are skipped, and a labeled series keeps its label
        suffix in the key (``repro_serve_jobs_total{status="done"}``).
        """
        text = self._request("GET", "/metrics")
        parsed: Dict[str, float] = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            if name and value:
                parsed[name] = float(value)
        return parsed

    def health(self) -> str:
        """``GET /healthz``: ``"ok"`` or ``"draining"``."""
        return self._request("GET", "/healthz").strip()
