"""``python -m repro.serve`` — run the simulation job server.

Binds, prints one JSON ready-line (``{"serving": ..., "pid": ...}``) so
wrapper scripts can discover the bound port (``--port 0`` asks the OS for an
ephemeral one), then serves until SIGTERM/SIGINT.  On a signal the server
drains — running and queued jobs complete, new submissions get 503 — and the
process exits 0 after printing a JSON drain summary with the final counters.

Defaults come from the ``REPRO_SERVE_*`` environment knobs (see
:mod:`repro.config`); flags override them.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from typing import List, Optional

from ..obs import trace as _obs_trace
from .server import SimulationServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve population-protocol simulation jobs over HTTP.",
    )
    parser.add_argument("--host", default=None, help="bind host (default: REPRO_SERVE_HOST or 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None, help="bind port; 0 = ephemeral (default: REPRO_SERVE_PORT or 8765)")
    parser.add_argument("--backend", choices=("process", "serial"), default="process", help="ensemble backend (default: process)")
    parser.add_argument("--workers", type=int, default=None, help="worker-pool process count (default: REPRO_BATCH_DEFAULT_WORKERS or CPU count)")
    parser.add_argument("--concurrency", type=int, default=2, help="jobs executing at once (default: 2)")
    parser.add_argument("--cache-size", type=int, default=None, help="result-cache capacity (default: REPRO_SERVE_CACHE_SIZE or 256)")
    parser.add_argument("--max-inflight", type=int, default=None, help="per-client in-flight cap (default: REPRO_SERVE_MAX_INFLIGHT or 8)")
    parser.add_argument("--job-timeout", type=float, default=None, help="per-job wall-clock budget in seconds (default: none)")
    parser.add_argument("--start-method", default=None, help="multiprocessing start method (default: platform)")
    return parser


async def _amain(server: SimulationServer) -> None:
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_drain)
        except NotImplementedError:  # pragma: no cover - non-Unix loops
            signal.signal(
                signum,
                lambda *_args: loop.call_soon_threadsafe(server.request_drain),
            )
    print(
        json.dumps(
            {
                "serving": f"http://{server.host}:{server.port}",
                "pid": os.getpid(),
                "backend": server.backend,
                "concurrency": server.concurrency,
            }
        ),
        flush=True,
    )
    await server.wait_drained()
    await server.shutdown()
    print(
        json.dumps({"drained": True, **server.metrics.as_dict()}),
        flush=True,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        server = SimulationServer(
            host=args.host,
            port=args.port,
            backend=args.backend,
            max_workers=args.workers,
            cache_size=args.cache_size,
            max_inflight=args.max_inflight,
            concurrency=args.concurrency,
            start_method=args.start_method,
            job_timeout=args.job_timeout,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _obs_trace.tracer_from_env()
    try:
        asyncio.run(_amain(server))
    finally:
        _obs_trace.uninstall_tracer()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
