"""Job specs, content-addressed keys, and execution for :mod:`repro.serve`.

A *job* is one simulation ensemble: a (protocol, params, population,
scheduler, engine) point plus the run policy (repetitions, master seed, step
budget, analytics flag).  That is exactly a 1×1×1×1 sweep grid, and this
module leans on that equivalence instead of re-implementing validation or
seeding:

* :class:`JobSpec` validates by constructing the corresponding single-cell
  :class:`~repro.sweep.spec.SweepSpec` — every rejection rule of the sweep
  layer (unknown protocols/params/schedulers/engines, non-integral scalars,
  params that don't survive a JSON round trip) applies to served jobs for
  free, with the same error messages,
* the job's **content key** is the SHA-256 of the cell's canonical identity
  string (:attr:`~repro.sweep.spec.SweepCell.cell_id`) extended with the run
  policy — two requests that mean the same ensemble hash to the same key no
  matter how the JSON was spelled (key order, ``"NumPy"`` vs ``"numpy"``,
  defaults omitted vs written out), which is what makes the server's result
  cache content-addressed rather than merely request-addressed,
* the ensemble seed is :func:`~repro.sweep.spec.derive_cell_seed` over the
  cell's engine-free seed scope, and the per-repetition seeds are drawn from
  it exactly like the sweep runner draws them — so a served job, the
  equivalent sweep cell, and a direct
  :meth:`~repro.simulation.simulator.Simulator.run_many` with
  ``seed=ensemble_seed`` are all bit-identical.

:class:`JobExecutor` is the blocking run half: it caches built protocols,
inputs, predicates and pickled worker specs per identity (the serve analogue
of the sweep runner's per-cell caches), and fans each job over one shared
:class:`~repro.simulation.batch.WorkerPool` (or a cached serial simulator).
It is thread-safe — the server calls it from several executor threads.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.configuration import Configuration
from ..core.predicates import Predicate
from ..core.protocol import Protocol
from ..simulation.batch import WorkerPool, _dumps_for_workers
from ..simulation.scheduler import Scheduler
from ..simulation.simulator import SimulationResult, Simulator
from ..simulation.statistics import accuracy_against_predicate, summarize_runs
from ..simulation.trajectory import DEFAULT_TRAJECTORY_CAPACITY
from ..sweep.spec import SweepCell, SweepSpec

__all__ = ["JobExecutor", "JobSpec"]

#: The JSON fields a job submission may carry (mirrors the
#: :meth:`JobSpec.from_dict` contract; unknown fields are rejected so typos
#: fail loudly instead of silently running the default).
JOB_FIELDS = (
    "protocol",
    "params",
    "population",
    "scheduler",
    "engine",
    "repetitions",
    "master_seed",
    "max_steps",
    "stability_window",
    "analytics",
)


@dataclass(frozen=True)
class JobSpec:
    """One validated, normalized simulation-ensemble request.

    Construction normalizes (name case/whitespace, integral floats, default
    filling) and validates via the sweep layer; after ``__init__`` every
    field holds its canonical value, so equality, :attr:`key` and
    :meth:`to_dict` all operate on normal forms.  Invalid specs raise
    :class:`ValueError` with the sweep layer's messages.
    """

    protocol: str
    population: int
    params: Mapping[str, object] = field(default_factory=dict)
    scheduler: str = "uniform"
    engine: str = "auto"
    repetitions: int = 8
    master_seed: int = 0
    max_steps: int = 100000
    stability_window: int = 200
    analytics: bool = False

    def __post_init__(self) -> None:
        for name in ("protocol", "scheduler", "engine"):
            value = getattr(self, name)
            if not isinstance(value, str):
                raise ValueError(f"job {name} must be a string, got {value!r}")
            object.__setattr__(self, name, value.strip().lower())
        if not isinstance(self.params, Mapping):
            raise ValueError(
                f"job params must be a mapping, got {type(self.params).__name__}"
            )
        spec = SweepSpec(
            protocols=[(self.protocol, dict(self.params))],
            populations=[self.population],
            schedulers=[self.scheduler],
            engines=[self.engine],
            repetitions=self.repetitions,
            master_seed=self.master_seed,
            max_steps=self.max_steps,
            stability_window=self.stability_window,
            analytics=bool(self.analytics),
        )
        # Read the normalized scalars back out of the validated spec, so a
        # job submitted with e.g. ``population: 25.0`` is field-identical
        # (and therefore key-identical) to one submitted with ``25``.
        _, params = spec.protocols[0]
        object.__setattr__(self, "params", params)
        object.__setattr__(self, "population", spec.populations[0])
        object.__setattr__(self, "repetitions", spec.repetitions)
        object.__setattr__(self, "master_seed", spec.master_seed)
        object.__setattr__(self, "max_steps", spec.max_steps)
        object.__setattr__(self, "stability_window", spec.stability_window)
        object.__setattr__(self, "analytics", spec.analytics)
        object.__setattr__(self, "_spec", spec)
        object.__setattr__(self, "_cell", spec.cells()[0])

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def sweep_spec(self) -> SweepSpec:
        """The equivalent single-cell sweep spec (the validation carrier)."""
        return self._spec  # type: ignore[attr-defined]

    @property
    def cell(self) -> SweepCell:
        """The job as a sweep cell — the canonical-identity anchor."""
        return self._cell  # type: ignore[attr-defined]

    @property
    def identity(self) -> str:
        """The canonical identity string the content key hashes.

        The cell identity (protocol, canonical params JSON, population,
        scheduler, engine) extended with every run-policy field.  Anything
        that can change the served payload is in here; anything that cannot
        (submission order, JSON spelling, client identity) is not.
        """
        cell = self.cell
        return (
            f"{cell.cell_id};repetitions={self.repetitions};"
            f"master_seed={self.master_seed};max_steps={self.max_steps};"
            f"stability_window={self.stability_window};"
            f"analytics={str(self.analytics).lower()}"
        )

    @property
    def key(self) -> str:
        """The content-address of this job: ``sha256(identity)`` hex.

        Doubles as the job id in the HTTP API, so polling URLs are stable
        across resubmissions and across server restarts.
        """
        return hashlib.sha256(self.identity.encode("utf-8")).hexdigest()

    @property
    def ensemble_seed(self) -> int:
        """The 64-bit master seed of the ensemble (the sweep cell seed).

        Derived from the engine-free seed scope, so jobs differing only in
        engine run the same seeds — and must report identical statistics,
        the same cross-engine agreement check sweeps get.
        """
        return self.sweep_spec.cell_seed(self.cell)

    def repetition_seeds(self) -> List[int]:
        """The per-repetition seeds, exactly as the sweep runner draws them."""
        master = random.Random(self.ensemble_seed)
        return [master.getrandbits(64) for _ in range(self.repetitions)]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The normalized spec as a JSON-ready mapping (round-trips)."""
        return {
            "protocol": self.protocol,
            "params": dict(self.params),
            "population": self.population,
            "scheduler": self.scheduler,
            "engine": self.engine,
            "repetitions": self.repetitions,
            "master_seed": self.master_seed,
            "max_steps": self.max_steps,
            "stability_window": self.stability_window,
            "analytics": self.analytics,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobSpec":
        """Build a spec from a submission payload, rejecting unknown fields."""
        if not isinstance(data, Mapping):
            raise ValueError(
                f"a job submission must be a JSON object, got {type(data).__name__}"
            )
        unknown = set(data) - set(JOB_FIELDS)
        if unknown:
            raise ValueError(f"unknown job fields: {sorted(unknown, key=str)}")
        if "protocol" not in data or "population" not in data:
            raise ValueError("a job needs 'protocol' and 'population'")
        return cls(**{str(key): value for key, value in data.items()})


class JobExecutor:
    """Runs validated jobs over one shared pool, with per-identity caches.

    The blocking half of the server: consumer tasks hand jobs to
    :meth:`run` on executor threads while the event loop keeps serving
    polls.  Mirrors the sweep runner's per-cell caches (protocol, inputs,
    predicate, analytics spec, scheduler, pickled worker spec, serial
    simulator) behind one build lock so concurrent jobs never race a
    half-built protocol; actual ensemble execution serializes on the pool's
    own dispatch lock (process backend) or this executor's serial lock
    (``pool=None``), matching the one-ensemble-at-a-time discipline of the
    sweep layer.
    """

    def __init__(
        self,
        pool: Optional[WorkerPool] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self._pool = pool
        self._timeout = timeout
        self._build_lock = threading.Lock()
        self._serial_lock = threading.Lock()
        self._built: Dict[Tuple[str, str, int], Tuple[Protocol, Configuration]] = {}
        self._predicates: Dict[Tuple[str, str, int], Optional[Predicate]] = {}
        self._analytics: Dict[Tuple[str, str, int], Any] = {}
        self._schedulers: Dict[str, Scheduler] = {}
        self._spec_bytes: Dict[Tuple[str, str, str, str], bytes] = {}
        self._serial: Dict[Tuple[str, str, str, str], Simulator] = {}

    # ------------------------------------------------------------------
    # Caches (all under the build lock)
    # ------------------------------------------------------------------
    def _grid_key(self, cell: SweepCell) -> Tuple[str, str, int]:
        return (cell.protocol, cell.params_json, cell.population)

    def _spec_key(self, cell: SweepCell) -> Tuple[str, str, str, str]:
        return (cell.protocol, cell.params_json, cell.scheduler, cell.engine)

    def _materialize(
        self, job: JobSpec
    ) -> Tuple[Protocol, Configuration, Scheduler, Optional[Predicate], Any]:
        cell = job.cell
        grid_key = self._grid_key(cell)
        with self._build_lock:
            built = self._built.get(grid_key)
            if built is None:
                built = cell.build()
                self._built[grid_key] = built
                self._predicates[grid_key] = cell.build_predicate()
            protocol, inputs = built
            predicate = self._predicates[grid_key]
            scheduler = self._schedulers.get(cell.scheduler)
            if scheduler is None:
                scheduler = cell.make_scheduler()
                self._schedulers[cell.scheduler] = scheduler
            analytics = None
            if job.analytics:
                analytics = self._analytics.get(grid_key)
                if analytics is None:
                    from ..analytics.metrics import AnalyticsSpec

                    expected = (
                        None if predicate is None else predicate.evaluate(inputs)
                    )
                    analytics = AnalyticsSpec(
                        histogram=True,
                        consensus_times=True,
                        expected_output=expected,
                    )
                    self._analytics[grid_key] = analytics
        return protocol, inputs, scheduler, predicate, analytics

    def _worker_spec_bytes(
        self, job: JobSpec, protocol: Protocol, scheduler: Scheduler
    ) -> bytes:
        key = self._spec_key(job.cell)
        with self._build_lock:
            payload = self._spec_bytes.get(key)
            if payload is None:
                payload = _dumps_for_workers((protocol, scheduler, job.engine))
                self._spec_bytes[key] = payload
            return payload

    def _serial_simulator(
        self, job: JobSpec, protocol: Protocol, scheduler: Scheduler
    ) -> Simulator:
        key = self._spec_key(job.cell)
        with self._build_lock:
            simulator = self._serial.get(key)
            if simulator is None:
                simulator = Simulator(
                    protocol, scheduler=scheduler, engine=job.engine
                )
                self._serial[key] = simulator
            return simulator

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, job: JobSpec) -> Dict[str, Any]:
        """Execute ``job`` and render its cacheable JSON result payload.

        Blocking; raises whatever the batch layer raises (typed worker
        crash/timeout errors included) — the server records those as a
        failed job and stays up.
        """
        protocol, inputs, scheduler, predicate, analytics = self._materialize(job)
        seeds = job.repetition_seeds()
        results = self._execute(job, protocol, inputs, scheduler, analytics, seeds)
        return self._render(job, inputs, predicate, analytics, seeds, results)

    def _execute(
        self,
        job: JobSpec,
        protocol: Protocol,
        inputs: Configuration,
        scheduler: Scheduler,
        analytics: Any,
        seeds: List[int],
    ) -> List[SimulationResult]:
        if self._pool is not None:
            return self._pool.run_seeds(
                protocol,
                inputs,
                seeds,
                scheduler=scheduler,
                engine=job.engine,
                max_steps=job.max_steps,
                stability_window=job.stability_window,
                analytics=analytics,
                spec_bytes=self._worker_spec_bytes(job, protocol, scheduler),
                timeout=self._timeout,
            )
        # Serial path: cached simulators hold mutable counts buffers, so
        # concurrent jobs must not share one mid-run.
        with self._serial_lock:
            simulator = self._serial_simulator(job, protocol, scheduler)
            configuration = protocol.initial_configuration(inputs)
            return simulator._run_seeds(
                configuration,
                seeds,
                job.max_steps,
                job.stability_window,
                False,
                DEFAULT_TRAJECTORY_CAPACITY,
                analytics,
            )

    def _render(
        self,
        job: JobSpec,
        inputs: Configuration,
        predicate: Optional[Predicate],
        analytics: Any,
        seeds: List[int],
        results: List[SimulationResult],
    ) -> Dict[str, Any]:
        statistics = summarize_runs(results)
        payload: Dict[str, Any] = {
            "job": job.key,
            "spec": job.to_dict(),
            "ensemble_seed": job.ensemble_seed,
            "statistics": {
                "runs": statistics.runs,
                "converged": statistics.converged,
                "convergence_rate": statistics.convergence_rate,
                "mean_steps": statistics.mean_steps,
                "median_steps": statistics.median_steps,
                "max_steps": statistics.max_steps,
                "min_steps": statistics.min_steps,
                "mean_consensus_step": statistics.mean_consensus_step,
            },
            "runs": [
                {
                    "seed": seed,
                    "steps": result.steps,
                    "consensus": result.consensus,
                    "consensus_step": result.consensus_step,
                    "converged": result.converged,
                    "terminated": result.terminated,
                    "interactions_sampled": result.interactions_sampled,
                }
                for seed, result in zip(seeds, results)
            ],
            "accuracy": (
                accuracy_against_predicate(results, predicate, inputs)
                if predicate is not None
                else None
            ),
            "analytics": (
                [dict(result.analytics or {}) for result in results]
                if analytics is not None
                else None
            ),
        }
        return payload
