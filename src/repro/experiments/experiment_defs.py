"""Experiment definitions E1..E14 (see DESIGN.md, "Experiment index").

Each function builds an :class:`~repro.experiments.harness.ExperimentTable`
reproducing one of the paper's quantitative claims on laptop-scale instances.
The benchmark suite wraps these runners with pytest-benchmark; the examples
print their tables; EXPERIMENTS.md records a snapshot of the output.

Default parameters are sized so that the complete suite runs in minutes.
"""

from __future__ import annotations

import math
import random
import time
from typing import Iterable, List, Optional, Sequence

from ..analysis.ackermann import czerner_esparza_lower_bound
from ..analysis.components import find_bottom_witness, theorem_6_1_bound_log2
from ..analysis.coverability import (
    rackoff_bound,
    rackoff_stabilization_threshold,
    shortest_covering_word,
)
from ..analysis.stability import is_stabilized, stabilization_certificate
from ..analysis.state_complexity import (
    bej_leaderless_upper_bound,
    bej_upper_bound_with_leaders,
    corollary_4_4_lower_bound,
    max_threshold_for_states,
    max_threshold_for_states_log2_log2,
    theorem_4_3_bound,
)
from ..analysis.verification import check_protocol
from ..controlstates.pcs import component_control_net
from ..controlstates.small_cycles import total_cycle, total_cycle_length_bound
from ..core.configuration import Configuration
from ..core.petrinet import PetriNet
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from ..core.transition import Transition
from ..protocols.example_4_1 import example_4_1_predicate, example_4_1_protocol
from ..protocols.example_4_2 import (
    STATE_I_BAR,
    STATE_P,
    STATE_P_BAR,
    STATE_Q,
    STATE_Q_BAR,
    example_4_2_petri_net,
    example_4_2_predicate,
    example_4_2_protocol,
)
from ..protocols.flock_of_birds import flock_of_birds_predicate, flock_of_birds_protocol
from ..protocols.majority import STATE_A, STATE_B, majority_protocol
from ..protocols.succinct import (
    bej_with_leaders_state_count,
    succinct_leaderless_predicate,
    succinct_leaderless_protocol,
    succinct_leaderless_state_count,
)
from ..simulation import BatchRunner, Simulator, interactions_per_second
from .harness import ExperimentTable, registry

__all__ = [
    "experiment_e1_state_counts",
    "experiment_e2_theorem_4_3",
    "experiment_e3_lower_bounds",
    "experiment_e4_rackoff",
    "experiment_e5_stability",
    "experiment_e6_bottom",
    "experiment_e7_cycles",
    "experiment_e8_verification",
    "experiment_e9_simulation_throughput",
    "experiment_e10_parallel_batch",
    "experiment_e11_large_net_throughput",
    "experiment_e12_parameter_sweep",
    "experiment_e13_analytics_sweep",
    "experiment_e14_ensemble_throughput",
    "random_interaction_protocol",
]


# ----------------------------------------------------------------------
# E1 — state counts of the constructions
# ----------------------------------------------------------------------
@registry.register("E1")
def experiment_e1_state_counts(
    thresholds: Sequence[int] = (2, 4, 8, 16, 64, 256, 65536, 2 ** 32, 2 ** 64),
    build_protocols_up_to: int = 256,
) -> ExperimentTable:
    """State counts of every construction for the counting predicate ``x >= n``.

    For ``n <= build_protocols_up_to`` the succinct protocol is actually built
    and its state count measured; beyond that the closed-form count is used
    (the construction is explicit, only its size matters here).
    """
    table = ExperimentTable(
        experiment_id="E1",
        title="states needed for (x >= n): classic vs paper examples vs succinct",
        columns=[
            "n",
            "classic (n+1)",
            "example 4.1 (width n)",
            "example 4.2 (n leaders)",
            "BEJ leaderless O(log n)",
            "BEJ leaders O(log log n)",
            "Cor. 4.4 lower bound (h=0.49)",
        ],
        notes=(
            "Example protocols trade states against width / leaders; the succinct "
            "constructions respect width 2 and O(1) leaders.  The last column is the "
            "paper's lower bound with m = 2."
        ),
    )
    for threshold in thresholds:
        if threshold <= build_protocols_up_to:
            succinct_states = succinct_leaderless_protocol(threshold).num_states
        else:
            succinct_states = succinct_leaderless_state_count(threshold)
        table.add_row(
            **{
                "n": threshold,
                "classic (n+1)": threshold + 1,
                "example 4.1 (width n)": 2,
                "example 4.2 (n leaders)": 6,
                "BEJ leaderless O(log n)": succinct_states,
                "BEJ leaders O(log log n)": bej_with_leaders_state_count(threshold),
                "Cor. 4.4 lower bound (h=0.49)": corollary_4_4_lower_bound(threshold, 2, 0.49),
            }
        )
    return table


# ----------------------------------------------------------------------
# E2 — Theorem 4.3: the largest decidable threshold per state count
# ----------------------------------------------------------------------
@registry.register("E2")
def experiment_e2_theorem_4_3(
    state_counts: Sequence[int] = tuple(range(1, 13)),
    bound_parameters: Sequence[int] = (1, 2, 4),
) -> ExperimentTable:
    """Theorem 4.3: upper bound on the decidable threshold as a function of ``|P|``.

    Reports ``log2 log2`` of the bound, the scale on which the theorem says the
    growth is essentially quadratic in ``|P|`` (so that inverting gives the
    ``(log log n)^{1/2}`` lower bound).
    """
    table = ExperimentTable(
        experiment_id="E2",
        title="Theorem 4.3: max threshold decidable with |P| states (log log scale)",
        columns=["|P|"]
        + [f"log2 log2 bound (m={m})" for m in bound_parameters]
        + ["log10 of #digits (m=2)"],
        notes=(
            "the bound is doubly exponential in |P|: its log2 log2 grows like "
            "(|P|+2)^2 log2 |P|, which is what Corollary 4.4 inverts"
        ),
    )
    for num_states in state_counts:
        row = {"|P|": num_states}
        for m in bound_parameters:
            row[f"log2 log2 bound (m={m})"] = max_threshold_for_states_log2_log2(num_states, m)
        # Number of decimal digits of the bound, reported on a log10 scale
        # because the count itself stops fitting in a float beyond |P| ~ 11.
        loglog = max_threshold_for_states_log2_log2(num_states, 2)
        row["log10 of #digits (m=2)"] = (loglog - math.log2(math.log2(10))) * math.log10(2)
        table.add_row(**row)
    return table


# ----------------------------------------------------------------------
# E3 — lower bounds: this paper vs Czerner-Esparza vs the upper bounds
# ----------------------------------------------------------------------
@registry.register("E3")
def experiment_e3_lower_bounds(
    exponents: Sequence[int] = (1, 2, 3, 4, 6, 8, 10, 12, 16, 20),
    bound_parameter: int = 2,
) -> ExperimentTable:
    """Lower/upper state-complexity bounds along the family ``n = 2^(2^j)``.

    Shows the gap closed by the paper: the inverse-Ackermann lower bound of
    PODC'21 is constant (<= 3) for every physically meaningful ``n``, while
    the paper's ``(log log n)^h`` bound tracks the ``O(log log n)`` upper
    bound up to the square-root exponent.
    """
    table = ExperimentTable(
        experiment_id="E3",
        title="state-complexity bounds along n = 2^(2^j)",
        columns=[
            "j",
            "log2 log2 n",
            "Czerner-Esparza A^{-1}(n)",
            "Leroux h=0.3",
            "Leroux h=0.4",
            "Leroux h=0.49",
            "BEJ upper (leaders)",
            "BEJ upper (leaderless)",
        ],
    )
    for exponent in exponents:
        # n = 2^(2^exponent); work with logs to avoid materializing huge ints
        # where possible, but the lower-bound formulas want the real n for
        # small exponents.  log2 log2 n == exponent exactly.
        n = 2 ** (2 ** exponent) if exponent <= 20 else None
        loglog = float(exponent)
        if n is not None:
            czerner = czerner_esparza_lower_bound(min(n, 10 ** 6))
            leroux = {
                h: corollary_4_4_lower_bound(n, bound_parameter, h) for h in (0.3, 0.4, 0.49)
            }
        else:
            czerner = 3
            leroux = {
                h: max((loglog - math.log2(math.log2(10 * bound_parameter))) ** h - 2, 0.0)
                for h in (0.3, 0.4, 0.49)
            }
        table.add_row(
            **{
                "j": exponent,
                "log2 log2 n": loglog,
                "Czerner-Esparza A^{-1}(n)": czerner,
                "Leroux h=0.3": leroux[0.3],
                "Leroux h=0.4": leroux[0.4],
                "Leroux h=0.49": leroux[0.49],
                "BEJ upper (leaders)": loglog,
                "BEJ upper (leaderless)": float(2 ** exponent),
            }
        )
    return table


# ----------------------------------------------------------------------
# E4 — Rackoff bound vs measured covering word lengths
# ----------------------------------------------------------------------
def _e4_instances() -> List[dict]:
    """The coverability instances of experiment E4."""
    instances: List[dict] = []
    for threshold in (2, 3, 4):
        protocol = flock_of_birds_protocol(threshold)
        net = protocol.petri_net
        source = protocol.initial_configuration(protocol.counting_input(threshold))
        target = Configuration.unit(threshold)
        instances.append(
            {"name": f"flock(n={threshold})", "net": net, "source": source, "target": target}
        )
    for threshold in (1, 2, 3):
        protocol = example_4_2_protocol(threshold)
        net = protocol.petri_net
        source = protocol.initial_configuration(protocol.counting_input(threshold))
        target = Configuration.unit(STATE_P)
        instances.append(
            {"name": f"ex4.2(n={threshold})", "net": net, "source": source, "target": target}
        )
    return instances


@registry.register("E4")
def experiment_e4_rackoff(max_nodes: int = 200000) -> ExperimentTable:
    """Lemma 5.3: measured shortest covering word length vs the Rackoff bound."""
    table = ExperimentTable(
        experiment_id="E4",
        title="Rackoff coverability bound vs measured shortest covering words",
        columns=["instance", "|P|", "||T||_inf", "measured length", "log2 Rackoff bound"],
        notes="the bound is doubly exponential; measured witnesses stay tiny",
    )
    for instance in _e4_instances():
        net: PetriNet = instance["net"]
        word = shortest_covering_word(net, instance["source"], instance["target"], max_nodes=max_nodes)
        measured = len(word) if word is not None else -1
        bound = rackoff_bound(instance["target"], net)
        table.add_row(
            **{
                "instance": instance["name"],
                "|P|": net.num_states,
                "||T||_inf": net.max_value,
                "measured length": measured,
                "log2 Rackoff bound": math.log2(bound) if bound > 0 else 0.0,
            }
        )
    return table


# ----------------------------------------------------------------------
# E5 — Lemma 5.4: stabilized configurations and their certificates
# ----------------------------------------------------------------------
@registry.register("E5")
def experiment_e5_stability(
    leader_counts: Sequence[int] = (1, 2, 3),
    extra_agents: int = 3,
) -> ExperimentTable:
    """Lemma 5.4: certificates transfer stability to every configuration below on ``R``.

    Uses Example 4.2: the all-rejecting configurations (everything in the
    barred states) are 0-output stable, i.e. ``(T, F)``-stabilized for
    ``F = {i_bar, p_bar, q_bar}``.  The experiment builds the certificate of a
    stabilized configuration and counts how many configurations it certifies,
    cross-checking each against the exact (backward-coverability) test.
    """
    table = ExperimentTable(
        experiment_id="E5",
        title="Lemma 5.4: small-value certificates for stabilized configurations",
        columns=[
            "leaders",
            "stabilized config",
            "certified",
            "checked",
            "agreement",
            "threshold (log2)",
        ],
    )
    net = example_4_2_petri_net()
    allowed = frozenset({STATE_I_BAR, STATE_P_BAR, STATE_Q_BAR})
    for leaders in leader_counts:
        base = Configuration({STATE_I_BAR: leaders})
        assert is_stabilized(net, base, allowed)
        certificate = stabilization_certificate(net, base, allowed)
        # Candidate configurations: everything over the barred states with a few
        # extra agents, plus configurations that also populate accepting states.
        candidates = []
        for i_bar in range(leaders + extra_agents):
            for p_bar in range(extra_agents):
                for q_bar in range(extra_agents):
                    candidates.append(
                        Configuration(
                            {STATE_I_BAR: i_bar, STATE_P_BAR: p_bar, STATE_Q_BAR: q_bar}
                        )
                    )
        certified = 0
        agreement = 0
        for candidate in candidates:
            by_certificate = certificate.implies_stabilized(candidate)
            exact = is_stabilized(net, candidate, allowed)
            if by_certificate:
                certified += 1
                # Lemma 5.4 is an implication: certified must imply stabilized.
                if exact:
                    agreement += 1
        table.add_row(
            **{
                "leaders": leaders,
                "stabilized config": base.pretty(),
                "certified": certified,
                "checked": len(candidates),
                "agreement": agreement,
                "threshold (log2)": math.log2(certificate.threshold),
            }
        )
    return table


# ----------------------------------------------------------------------
# E6 — Theorem 6.1: bottom-configuration witnesses
# ----------------------------------------------------------------------
@registry.register("E6")
def experiment_e6_bottom(
    leader_counts: Sequence[int] = (1, 2, 3),
    max_nodes: int = 20000,
) -> ExperimentTable:
    """Theorem 6.1: measured witness sizes vs the doubly-exponential bound ``b``.

    Applies the theorem the way Section 8 does: to the restriction of the
    Example 4.2 net to ``P' = P \\ {i}`` starting from the leader
    configuration.
    """
    table = ExperimentTable(
        experiment_id="E6",
        title="Theorem 6.1: bottom-configuration witnesses (Example 4.2, restricted net)",
        columns=[
            "leaders",
            "|sigma|",
            "|w|",
            "|Q|",
            "component size",
            "log2 bound b",
        ],
    )
    base_net = example_4_2_petri_net()
    restricted_states = [s for s in base_net.states if s != "i"]
    net = base_net.restrict(restricted_states)
    for leaders in leader_counts:
        origin = Configuration({STATE_I_BAR: leaders})
        witness = find_bottom_witness(net, origin, max_nodes=max_nodes)
        log_bound = theorem_6_1_bound_log2(net, origin)
        if witness is None:
            table.add_row(
                **{
                    "leaders": leaders,
                    "|sigma|": -1,
                    "|w|": -1,
                    "|Q|": -1,
                    "component size": -1,
                    "log2 bound b": log_bound,
                }
            )
            continue
        table.add_row(
            **{
                "leaders": leaders,
                "|sigma|": len(witness.sigma),
                "|w|": len(witness.pump),
                "|Q|": len(witness.places),
                "component size": witness.component_size,
                "log2 bound b": log_bound,
            }
        )
    return table


# ----------------------------------------------------------------------
# E7 — Lemma 7.2: total cycles vs the |E||S| bound
# ----------------------------------------------------------------------
def _e7_component_nets() -> List[dict]:
    """Strongly connected control-state nets built from protocol components."""
    instances: List[dict] = []

    # Example 4.2 restricted to the barred/unbarred witnesses: the component of
    # configurations reachable by flipping p/q bar status.
    net = example_4_2_petri_net()
    for count in (1, 2):
        seed = Configuration({STATE_P: count, STATE_Q: count, STATE_I_BAR: 1})
        graph = net.reachability_graph([seed], max_nodes=5000)
        # Keep only the configurations mutually reachable with the seed.
        component = [
            node
            for node in graph.nodes
            if net.is_reachable(node, seed, max_nodes=5000)
        ]
        control = component_control_net(net, component)
        instances.append({"name": f"ex4.2 witnesses x{count}", "net": control})

    # A simple token-ring Petri net (cyclic, strongly connected by design).
    ring_states = ["r0", "r1", "r2", "r3"]
    ring_transitions = [
        Transition(Configuration({ring_states[i]: 1}), Configuration({ring_states[(i + 1) % 4]: 1}),
                   name=f"step{i}")
        for i in range(4)
    ]
    ring = PetriNet(ring_transitions, name="ring")
    component = list(ring.reachable_set([Configuration({"r0": 1})]))
    control = component_control_net(ring, component)
    instances.append({"name": "token ring", "net": control})
    return instances


@registry.register("E7")
def experiment_e7_cycles() -> ExperimentTable:
    """Lemma 7.2: the constructed total cycle stays within the ``|E||S|`` bound."""
    table = ExperimentTable(
        experiment_id="E7",
        title="Lemma 7.2: total-cycle length vs the |E||S| bound",
        columns=["instance", "|S|", "|E|", "total cycle length", "bound |E||S|", "within bound"],
    )
    for instance in _e7_component_nets():
        control = instance["net"]
        cycle = total_cycle(control)
        bound = total_cycle_length_bound(control)
        table.add_row(
            **{
                "instance": instance["name"],
                "|S|": control.num_control_states,
                "|E|": control.num_edges,
                "total cycle length": cycle.length,
                "bound |E||S|": bound,
                "within bound": cycle.length <= bound,
            }
        )
    return table


# ----------------------------------------------------------------------
# E8 — exhaustive verification of the constructions
# ----------------------------------------------------------------------
@registry.register("E8")
def experiment_e8_verification(
    flock_thresholds: Sequence[int] = (1, 2, 3),
    example_4_1_thresholds: Sequence[int] = (1, 2, 3),
    example_4_2_thresholds: Sequence[int] = (1, 2),
    succinct_thresholds: Sequence[int] = (2, 3, 4, 5, 6),
    extra_agents: int = 2,
) -> ExperimentTable:
    """Exhaustive verification of every construction on bounded populations."""
    table = ExperimentTable(
        experiment_id="E8",
        title="exhaustive stable-computation checks (bounded populations)",
        columns=["protocol", "states", "max agents", "inputs", "failures", "explored"],
    )

    def record(protocol, predicate, max_agents):
        report = check_protocol(protocol, predicate, max_agents=max_agents)
        table.add_row(
            **{
                "protocol": protocol.name,
                "states": protocol.num_states,
                "max agents": max_agents,
                "inputs": report.num_inputs,
                "failures": report.num_failures,
                "explored": report.total_explored,
            }
        )

    for threshold in flock_thresholds:
        record(
            flock_of_birds_protocol(threshold),
            flock_of_birds_predicate(threshold),
            threshold + extra_agents,
        )
    for threshold in example_4_1_thresholds:
        record(
            example_4_1_protocol(threshold),
            example_4_1_predicate(threshold),
            threshold + extra_agents,
        )
    for threshold in example_4_2_thresholds:
        record(
            example_4_2_protocol(threshold),
            example_4_2_predicate(threshold),
            threshold + extra_agents,
        )
    for threshold in succinct_thresholds:
        record(
            succinct_leaderless_protocol(threshold),
            succinct_leaderless_predicate(threshold),
            min(threshold + extra_agents, 7),
        )
    return table


# ----------------------------------------------------------------------
# E9 — simulation throughput: compiled engine vs sparse reference engine
# ----------------------------------------------------------------------
@registry.register("E9")
def experiment_e9_simulation_throughput(
    populations: Sequence[int] = (200, 1000),
    max_steps: int = 20000,
    seed: int = 2022,
) -> ExperimentTable:
    """Interaction throughput of the compiled engine vs the reference engine.

    Runs the majority protocol (two-thirds ``A`` majority) for ``max_steps``
    interactions under both engines with the same seed.  The engines consume
    the random stream identically, so the two runs must agree step for step —
    the experiment checks this and raises if they diverge, making every
    benchmark run double as an equivalence check.
    """
    table = ExperimentTable(
        experiment_id="E9",
        title="simulation throughput: compiled vs reference engine (majority protocol)",
        columns=["population", "engine", "interactions", "seconds", "interactions/s", "speedup"],
        notes=(
            "same seed on both engines; trajectories are cross-checked to agree exactly, "
            "speedup is relative to the reference engine at the same population"
        ),
    )
    protocol = majority_protocol()
    for population in populations:
        majority_count = (2 * population) // 3
        inputs = Configuration(
            {STATE_A: majority_count, STATE_B: population - majority_count}
        )
        outcomes = {}
        for engine in ("reference", "compiled"):
            simulator = Simulator(protocol, seed=seed, engine=engine)
            start = time.perf_counter()
            result = simulator.run(inputs, max_steps=max_steps, stability_window=max_steps)
            elapsed = time.perf_counter() - start
            outcomes[engine] = (result, elapsed)
        reference_result, reference_elapsed = outcomes["reference"]
        for engine in ("reference", "compiled"):
            result, elapsed = outcomes[engine]
            agrees = (
                result.final == reference_result.final
                and result.steps == reference_result.steps
                and result.consensus == reference_result.consensus
                and result.consensus_step == reference_result.consensus_step
            )
            if not agrees:
                raise RuntimeError(
                    f"engine {engine!r} diverged from the reference trajectory "
                    f"at population {population}"
                )
            table.add_row(
                **{
                    "population": population,
                    "engine": engine,
                    "interactions": result.interactions_sampled,
                    "seconds": elapsed,
                    "interactions/s": interactions_per_second([result], elapsed),
                    "speedup": reference_elapsed / elapsed,
                }
            )
    return table


# ----------------------------------------------------------------------
# E10 — parallel batch throughput: process fan-out vs serial ensembles
# ----------------------------------------------------------------------
@registry.register("E10")
def experiment_e10_parallel_batch(
    population: int = 1000,
    repetitions: int = 32,
    worker_counts: Sequence[int] = (1, 2, 4),
    max_steps: int = 20000,
    seed: int = 2022,
) -> ExperimentTable:
    """Ensemble throughput of the parallel batch backend vs the serial one.

    Runs a ``repetitions``-strong majority ensemble (two-thirds ``A``
    majority at the given population) once serially and once per worker count
    under ``backend="process"``, all from the same master seed.  The batch
    subsystem derives per-repetition seeds before scheduling, so every
    backend must return the exact same per-run results — the experiment
    verifies this run for run and raises on any divergence, making the
    benchmark double as a determinism check.  Speedups are relative to the
    serial backend; on a single-core machine the process rows mostly measure
    fan-out overhead.
    """
    table = ExperimentTable(
        experiment_id="E10",
        title="parallel batch throughput: process fan-out vs serial (majority ensemble)",
        columns=[
            "population",
            "backend",
            "workers",
            "repetitions",
            "interactions",
            "seconds",
            "interactions/s",
            "speedup",
        ],
        notes=(
            "same master seed everywhere; per-run results are cross-checked to be "
            "bit-identical across backends, speedup is relative to the serial backend"
        ),
    )
    protocol = majority_protocol()
    majority_count = (2 * population) // 3
    inputs = Configuration({STATE_A: majority_count, STATE_B: population - majority_count})

    def timed(runner: BatchRunner):
        start = time.perf_counter()
        results = runner.run_many(
            inputs, repetitions, seed=seed, max_steps=max_steps, stability_window=max_steps
        )
        return results, time.perf_counter() - start

    serial_runner = BatchRunner(protocol, backend="serial")
    serial_results, serial_elapsed = timed(serial_runner)
    serial_runner.close()
    interactions = sum(result.interactions_sampled for result in serial_results)
    table.add_row(
        **{
            "population": population,
            "backend": "serial",
            "workers": 1,
            "repetitions": repetitions,
            "interactions": interactions,
            "seconds": serial_elapsed,
            "interactions/s": interactions_per_second(serial_results, serial_elapsed),
            "speedup": 1.0,
        }
    )
    for workers in worker_counts:
        with BatchRunner(protocol, backend="process", max_workers=workers) as runner:
            results, elapsed = timed(runner)
        if results != serial_results:
            raise RuntimeError(
                f"process backend with {workers} workers diverged from the serial "
                f"ensemble at population {population}"
            )
        table.add_row(
            **{
                "population": population,
                "backend": "process",
                "workers": workers,
                "repetitions": repetitions,
                # Recomputed from this backend's own results (not the serial
                # total) so the cross-backend equality is visible in the table.
                "interactions": sum(r.interactions_sampled for r in results),
                "seconds": elapsed,
                "interactions/s": interactions_per_second(results, elapsed),
                "speedup": serial_elapsed / elapsed,
            }
        )
    return table


# ----------------------------------------------------------------------
# E11 — large-net throughput: NumPy engine vs compiled codegen vs reference
# ----------------------------------------------------------------------
def random_interaction_protocol(
    num_transitions: int,
    rng: random.Random,
    density: int = 6,
    agents_per_state: int = 4,
):
    """A random width-2 conservative protocol with ``num_transitions`` transitions.

    The generator for the large-net throughput experiments: transitions are
    distinct random pairwise interactions ``{a, b} -> {c, d}`` over
    ``max(12, num_transitions // density)`` states, so states are shared
    among many transitions the way the succinct-counting constructions share
    their counter states (``density`` controls the coupling: larger means
    fewer states per transition and denser ``affected`` sets).  Returns the
    protocol together with an input configuration placing
    ``agents_per_state`` agents on every state, which enables every
    transition initially.
    """
    num_states = max(12, num_transitions // density)
    # Feasibility: distinct keys are (unordered distinct pre pair) x
    # (unordered post pair with repetition); the rejection loop below would
    # otherwise spin forever on an unsatisfiable request.
    distinct = (num_states * (num_states - 1) // 2) * (num_states * (num_states + 1) // 2)
    if num_transitions > distinct:
        raise ValueError(
            f"cannot build {num_transitions} distinct width-2 transitions over "
            f"{num_states} states (only {distinct} exist); lower `density` to "
            "enlarge the state universe"
        )
    states = [f"q{i}" for i in range(num_states)]
    seen = set()
    transitions = []
    while len(transitions) < num_transitions:
        a, b = rng.sample(range(num_states), 2)
        c = rng.randrange(num_states)
        d = rng.randrange(num_states)
        # PetriNet deduplicates transitions by (pre, post), so reject
        # duplicates here to hit the requested transition count exactly.
        key = (tuple(sorted((a, b))), tuple(sorted((c, d))))
        if key in seen:
            continue
        seen.add(key)
        post = {states[c]: 2} if c == d else {states[c]: 1, states[d]: 1}
        transitions.append(
            Transition(
                {states[a]: 1, states[b]: 1}, post, name=f"t{len(transitions)}"
            )
        )
    net = PetriNet(transitions, states=states, name=f"random-{num_transitions}")
    # q0 says 1, everything else says 0: with agents spread over many states
    # a consensus is effectively never reached, so runs exercise the engines
    # for the whole step budget.
    output = {
        state: (OUTPUT_ONE if index == 0 else OUTPUT_ZERO)
        for index, state in enumerate(states)
    }
    protocol = Protocol.from_petri_net(
        net,
        leaders=Configuration({}),
        initial_states=states,
        output=output,
        name=f"random-{num_transitions}",
    )
    inputs = Configuration({state: agents_per_state for state in states})
    return protocol, inputs


@registry.register("E11")
def experiment_e11_large_net_throughput(
    transition_counts: Sequence[int] = (50, 200, 1000, 2000, 5000),
    max_steps: int = 4000,
    seed: int = 2022,
    net_seed: int = 11,
    density: int = 6,
    reference_up_to: int = 200,
    compiled_up_to: int = 8192,
    reference_fallback_steps: int = 250,
) -> ExperimentTable:
    """Engine throughput on random nets swept over the transition count.

    For each size, the same seeded random width-2 net is simulated with the
    same run seed on every engine, and the engines are cross-checked to agree
    on the final configuration, step count, consensus and consensus step (the
    experiment raises on divergence; exact step-for-step trajectory equality
    is asserted by the recorded-trajectory tests in the test suite).  Two costs are
    reported per engine: the steady-state interaction throughput and the
    one-off engine build time (stepper codegen for the compiled engine,
    kernel-structure construction for the NumPy engine), with speedups
    relative to the compiled engine both excluding (``speedup``) and
    including (``e2e speedup``) the build.

    The sweep shows the regime change the NumPy engine exists for: below a
    couple hundred transitions the generated straight-line code wins, the
    steady-state crossover sits around
    :data:`~repro.simulation.simulator.AUTO_VECTORIZE_THRESHOLD`, and at a
    few thousand transitions (between 2500 and 3000 on CPython 3.11) the
    generated dispatch chain overflows the CPython compiler's recursion guard
    and cannot be built at all — the default sweep's 5000-transition point
    records that real failure as an empty ``engine="compiled"`` row.  Set
    ``compiled_up_to`` below a sweep point to skip hopeless (or merely slow)
    codegen attempts instead of demonstrating them.

    The reference engine is only measured up to ``reference_up_to``
    transitions (it recomputes every weight per step, so large sweeps would
    dominate the experiment's runtime).  The NumPy rows require the optional
    ``sim`` extra; without NumPy they are skipped.

    Where the compiled engine cannot provide the speedup denominator (its
    dispatch chain fails to build, or codegen was skipped via
    ``compiled_up_to``), the baseline falls back to the reference engine
    timed over ``reference_fallback_steps`` steps and extrapolated linearly
    to the sweep's step budget — so the 5000-transition rows report a real
    speedup instead of empty cells.  Every row's ``baseline`` column names
    the denominator it used (``compiled``, or the labeled extrapolation),
    and extrapolated baselines are excluded from the cross-engine agreement
    check (their runs use a different step budget).
    """
    from ..simulation.vectorized import numpy_available

    table = ExperimentTable(
        experiment_id="E11",
        title="large-net throughput: NumPy engine vs compiled codegen (random width-2 nets)",
        columns=[
            "transitions",
            "states",
            "engine",
            "build s",
            "run s",
            "interactions",
            "interactions/s",
            "speedup",
            "e2e speedup",
            "baseline",
        ],
        notes=(
            "same net and run seed per row group; engines cross-checked to agree "
            "on final configuration, steps and consensus; speedups are relative "
            "to the engine named in the baseline column — the compiled engine "
            "(run only vs build+run), falling back to a reference-engine timing "
            "extrapolated from a short run where codegen fails; empty compiled "
            "rows mean the generated stepper exceeded the CPython compiler's "
            "limits"
        ),
    )
    for num_transitions in transition_counts:
        protocol, inputs = random_interaction_protocol(
            num_transitions, random.Random(net_seed), density=density
        )
        engines = []
        if num_transitions <= reference_up_to:
            engines.append("reference")
        engines.append("compiled")
        if numpy_available():
            engines.append("numpy")
        outcomes = {}
        for engine in engines:
            if engine == "compiled" and num_transitions > compiled_up_to:
                outcomes[engine] = None
                continue
            start = time.perf_counter()
            try:
                simulator = Simulator(protocol, seed=seed, engine=engine)
            except RecursionError:
                # The generated dispatch chain exceeded the CPython
                # compiler's recursion guard: record the failure as an empty
                # row rather than aborting the sweep.
                outcomes[engine] = None
                continue
            build = time.perf_counter() - start
            # The engines are deterministic for a fixed seed, so repeated runs
            # retrace the same trajectory; keep the fastest of two timings.
            run_elapsed = None
            for _ in range(2):
                run_simulator = Simulator(protocol, seed=seed, engine=engine)
                start = time.perf_counter()
                result = run_simulator.run(
                    inputs, max_steps=max_steps, stability_window=max_steps
                )
                elapsed = time.perf_counter() - start
                run_elapsed = elapsed if run_elapsed is None else min(run_elapsed, elapsed)
            outcomes[engine] = (build, run_elapsed, result)
        baseline = outcomes.get("compiled")
        baseline_label = "compiled"
        baseline_result = baseline[2] if baseline is not None else None
        if baseline is None and any(
            outcome is not None for outcome in outcomes.values()
        ):
            # Codegen failed (or was skipped): synthesize the denominator
            # from a short reference run, scaled linearly to the sweep's
            # step budget.  The reference engine's per-step cost is flat
            # (it recomputes every weight each step), so the extrapolation
            # is faithful; the label records it was not a full-length run.
            start = time.perf_counter()
            fallback_simulator = Simulator(protocol, seed=seed, engine="reference")
            fallback_build = time.perf_counter() - start
            start = time.perf_counter()
            fallback_result = fallback_simulator.run(
                inputs,
                max_steps=reference_fallback_steps,
                stability_window=reference_fallback_steps,
            )
            fallback_elapsed = time.perf_counter() - start
            if fallback_result.steps:
                scale = max_steps / fallback_result.steps
                baseline = (fallback_build, fallback_elapsed * scale)
                baseline_label = (
                    "reference (extrapolated from "
                    f"{fallback_result.steps} steps)"
                )
        for engine in engines:
            outcome = outcomes[engine]
            if outcome is None:
                table.add_row(
                    **{
                        "transitions": num_transitions,
                        "states": protocol.petri_net.num_states,
                        "engine": engine,
                        "build s": None,
                        "run s": None,
                        "interactions": None,
                        "interactions/s": None,
                        "speedup": None,
                        "e2e speedup": None,
                        "baseline": None,
                    }
                )
                continue
            build, run_elapsed, result = outcome
            if baseline_result is not None:
                reference_result = baseline_result
                agrees = (
                    result.final == reference_result.final
                    and result.steps == reference_result.steps
                    and result.consensus == reference_result.consensus
                    and result.consensus_step == reference_result.consensus_step
                    and result.interactions_sampled == reference_result.interactions_sampled
                )
                if not agrees:
                    raise RuntimeError(
                        f"engine {engine!r} diverged from the compiled trajectory "
                        f"at {num_transitions} transitions"
                    )
            table.add_row(
                **{
                    "transitions": num_transitions,
                    "states": protocol.petri_net.num_states,
                    "engine": engine,
                    "build s": build,
                    "run s": run_elapsed,
                    "interactions": result.interactions_sampled,
                    "interactions/s": interactions_per_second([result], run_elapsed),
                    "speedup": None if baseline is None else baseline[1] / run_elapsed,
                    "e2e speedup": (
                        None
                        if baseline is None
                        else (baseline[0] + baseline[1]) / (build + run_elapsed)
                    ),
                    "baseline": None if baseline is None else baseline_label,
                }
            )
    return table


# ----------------------------------------------------------------------
# E12 — parameter sweep: grids over (protocol x population x engine)
# ----------------------------------------------------------------------
@registry.register("E12")
def experiment_e12_parameter_sweep(
    populations: Sequence[int] = (24, 48),
    engines: Sequence[str] = ("compiled", "reference"),
    schedulers: Sequence[str] = ("uniform",),
    repetitions: int = 4,
    max_steps: int = 20000,
    stability_window: int = 500,
    master_seed: int = 2022,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    store_path: Optional[str] = None,
) -> ExperimentTable:
    """Convergence statistics of majority/succinct swept over populations and engines.

    Drives the sweep harness (:mod:`repro.sweep`) end to end from the
    experiment registry: a :class:`~repro.sweep.spec.SweepSpec` over the
    majority protocol and the succinct counting construction (threshold 8),
    expanded to its deterministic cell grid and executed through a
    :class:`~repro.sweep.runner.SweepRunner`.  Engine rows of one grid point
    share their ensemble seed, so their statistics must agree exactly — the
    experiment raises on any divergence, extending the E9/E11 cross-engine
    checks to whole ensembles.

    With ``store_path`` the table is additionally persisted (and resumable)
    on disk; the default runs against an in-memory store.  ``backend`` and
    ``max_workers`` select the batch backend exactly as for
    :class:`~repro.simulation.batch.BatchRunner`.
    """
    from ..sweep import MemoryResultStore, SweepRunner, SweepSpec, open_store
    from ..sweep.runner import to_experiment_table
    from ..sweep.spec import KEYFIELDS

    spec = SweepSpec(
        protocols=("majority", ("succinct", {"threshold": 8})),
        populations=populations,
        schedulers=schedulers,
        engines=engines,
        repetitions=repetitions,
        master_seed=master_seed,
        max_steps=max_steps,
        stability_window=stability_window,
    )
    store = open_store(store_path) if store_path else MemoryResultStore()
    runner = SweepRunner(spec, store, backend=backend, max_workers=max_workers)
    report = runner.run()
    if not report.complete:
        failing = [
            f"{row['cell']}: {row['error']}"
            for row in store.rows()
            if row["status"] == "error"
        ]
        raise RuntimeError(
            f"sweep did not complete ({report.failed} failed): " + "; ".join(failing)
        )
    # Engine rows of one grid point ran the same seeds, so their statistics
    # must be identical — assert it instead of trusting it.
    statistic_columns = ("runs", "converged", "mean_steps", "median_steps",
                        "min_steps", "max_steps", "mean_consensus_step")
    by_point = {}
    for row in store.rows():
        point = tuple(row[key] for key in KEYFIELDS if key != "engine")
        statistics = tuple(row[column] for column in statistic_columns)
        previous = by_point.setdefault(point, (row["engine"], statistics))
        if previous[1] != statistics:
            raise RuntimeError(
                f"engine {row['engine']!r} diverged from {previous[0]!r} on "
                f"grid point {point}"
            )
    return to_experiment_table(
        store,
        experiment_id="E12",
        title="parameter sweep: majority/succinct over populations and engines",
    )


# ----------------------------------------------------------------------
# E13 — analytics sweep: trajectory-derived metrics across engines/schedulers
# ----------------------------------------------------------------------
@registry.register("E13")
def experiment_e13_analytics_sweep(
    populations: Sequence[int] = (18, 30),
    engines: Sequence[str] = ("compiled", "reference"),
    schedulers: Sequence[str] = ("uniform", "transition"),
    repetitions: int = 4,
    max_steps: int = 20000,
    stability_window: int = 500,
    master_seed: int = 2022,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    store_path: Optional[str] = None,
) -> ExperimentTable:
    """Trajectory analytics of majority/modulo across engines and schedulers.

    Drives the analytics subsystem (:mod:`repro.analytics`) end to end
    through the sweep harness: an analytics-enabled
    :class:`~repro.sweep.spec.SweepSpec` over the majority protocol and the
    remainder predicate, with per-cell metric extraction running *inside the
    batch workers* — predicate accuracy, convergence-time quantiles and the
    top fired transitions land as persisted table columns.

    The experiment doubles as a cross-engine analytics check: engine rows of
    one grid point share their ensemble seed, so their trajectory-derived
    columns (not just their convergence statistics) must agree exactly —
    the run raises on any divergence.  Scheduler rows, by contrast, sample
    genuinely different dynamics; the table shows how the uniform and
    transition disciplines reshape both convergence times and the firing
    histogram.
    """
    from ..analytics.report import report_table
    from ..sweep import MemoryResultStore, SweepRunner, SweepSpec, open_store
    from ..sweep.spec import KEYFIELDS
    from ..sweep.store import ANALYTICS_COLUMNS

    spec = SweepSpec(
        protocols=("majority", ("modulo", {"modulus": 3, "remainder": 1})),
        populations=populations,
        schedulers=schedulers,
        engines=engines,
        repetitions=repetitions,
        master_seed=master_seed,
        max_steps=max_steps,
        stability_window=stability_window,
        analytics=True,
    )
    store = open_store(store_path) if store_path else MemoryResultStore()
    runner = SweepRunner(spec, store, backend=backend, max_workers=max_workers)
    report = runner.run()
    if not report.complete:
        failing = [
            f"{row['cell']}: {row['error']}"
            for row in store.rows()
            if row["status"] == "error"
        ]
        raise RuntimeError(
            f"analytics sweep did not complete ({report.failed} failed): "
            + "; ".join(failing)
        )
    # Engine rows of one grid point ran the same seeds, so the
    # trajectory-derived analytics — not just the summary statistics — must
    # be identical across engines.
    comparison_columns = ANALYTICS_COLUMNS + ("runs", "converged", "mean_steps")
    by_point = {}
    for row in store.rows():
        point = tuple(row[key] for key in KEYFIELDS if key != "engine")
        values = tuple(row[column] for column in comparison_columns)
        previous = by_point.setdefault(point, (row["engine"], values))
        if previous[1] != values:
            raise RuntimeError(
                f"analytics of engine {row['engine']!r} diverged from "
                f"{previous[0]!r} on grid point {point}"
            )
        if row["accuracy"] is None or row["accuracy"] < 1.0:
            raise RuntimeError(
                f"cell {row['cell']} scored accuracy {row['accuracy']!r}; "
                "the majority/modulo protocols should stabilize correctly "
                "within this budget"
            )
    return report_table(
        store,
        experiment_id="E13",
        title="trajectory analytics: majority/modulo across engines and schedulers",
    )


# ----------------------------------------------------------------------
# E14 — ensemble throughput: lock-step stepping vs per-run NumPy loops
# ----------------------------------------------------------------------
@registry.register("E14")
def experiment_e14_ensemble_throughput(
    transition_counts: Sequence[int] = (1000, 5000, 20000, 50000),
    repetition_counts: Sequence[int] = (64, 128),
    max_steps: int = 600,
    seed: int = 2022,
    net_seed: int = 11,
    density: int = 6,
) -> ExperimentTable:
    """Ensemble-vs-per-run throughput on random nets, swept over size and reps.

    For each net size, the same seeded random width-2 net (the E11
    generator) is simulated as an ensemble of ``reps`` repetitions twice:
    once with ``engine="numpy"`` (``reps`` independent per-run step loops)
    and once with ``engine="ensemble"`` (one lock-step ``(reps, states)``
    array program, blocked weight selection).  Both use the same
    ``Simulator`` seed, so the derived per-repetition seeds match and every
    row of the ensemble must be **bit-identical** to its per-run
    counterpart — the experiment raises on any divergence, making the
    benchmark an equivalence check as well.

    The speedup column is the per-run NumPy wall time over the ensemble
    wall time for the same seed list.  The ensemble's per-row step cost is
    ``O(sqrt(|T|) + M)`` against the per-run engine's ``O(|T|)``, so the
    speedup *grows* with the transition count: expect low single digits at
    a thousand transitions and >= 10x by fifty thousand.  ``build s`` is
    the one-time engine construction (kernel plans; for the ensemble, the
    incremental blocked-table build on top of the shared vectorized net) —
    it is excluded from the speedup, as ensembles amortize it across every
    subsequent call.

    Requires NumPy (the ``sim`` extra); raises :class:`ImportError` without
    it.
    """
    from ..simulation.vectorized import require_numpy

    require_numpy()
    table = ExperimentTable(
        experiment_id="E14",
        title='lock-step ensemble throughput: engine="ensemble" vs per-run NumPy',
        columns=[
            "transitions",
            "states",
            "reps",
            "engine",
            "build s",
            "run s",
            "interactions",
            "interactions/s",
            "speedup",
        ],
        notes=(
            "same net and derived per-repetition seeds per row pair; every "
            "ensemble row is checked bit-identical to its per-run NumPy "
            "counterpart; speedup is per-run NumPy wall time over ensemble "
            "wall time (build excluded; build s reports it separately)"
        ),
    )
    compare_fields = (
        "final",
        "steps",
        "consensus",
        "consensus_step",
        "terminated",
        "interactions_sampled",
    )
    for num_transitions in transition_counts:
        protocol, inputs = random_interaction_protocol(
            num_transitions, random.Random(net_seed), density=density
        )
        builds = {}
        for engine in ("numpy", "ensemble"):
            # One-time engine build: simulator construction plus the first
            # (lazy) kernel-structure touch, forced by a 1-step run.  The
            # vectorized net is cached on the Petri net, so the ensemble's
            # build time is its incremental blocked-table cost.
            start = time.perf_counter()
            Simulator(protocol, seed=seed, engine=engine).run_many(
                inputs, 1, max_steps=1, stability_window=1
            )
            builds[engine] = time.perf_counter() - start
        for reps in repetition_counts:
            outcomes = {}
            for engine in ("numpy", "ensemble"):
                # Deterministic for a fixed seed: repeated calls retrace the
                # same trajectories, so keep the fastest of two timings.
                elapsed_best = None
                results = None
                for _ in range(2):
                    simulator = Simulator(protocol, seed=seed, engine=engine)
                    start = time.perf_counter()
                    results = simulator.run_many(
                        inputs,
                        reps,
                        max_steps=max_steps,
                        stability_window=max_steps,
                    )
                    elapsed = time.perf_counter() - start
                    elapsed_best = (
                        elapsed
                        if elapsed_best is None
                        else min(elapsed_best, elapsed)
                    )
                outcomes[engine] = (elapsed_best, results)
            per_run_results = outcomes["numpy"][1]
            ensemble_results = outcomes["ensemble"][1]
            for index, (per_run, lock_step) in enumerate(
                zip(per_run_results, ensemble_results)
            ):
                if any(
                    getattr(per_run, field) != getattr(lock_step, field)
                    for field in compare_fields
                ):
                    raise RuntimeError(
                        f"ensemble row {index} diverged from the per-run "
                        f"NumPy engine at {num_transitions} transitions, "
                        f"{reps} repetitions"
                    )
            baseline_elapsed = outcomes["numpy"][0]
            for engine in ("numpy", "ensemble"):
                elapsed, results = outcomes[engine]
                table.add_row(
                    **{
                        "transitions": num_transitions,
                        "states": protocol.petri_net.num_states,
                        "reps": reps,
                        "engine": engine,
                        "build s": builds[engine],
                        "run s": elapsed,
                        "interactions": sum(
                            result.interactions_sampled for result in results
                        ),
                        "interactions/s": interactions_per_second(
                            results, elapsed
                        ),
                        "speedup": baseline_elapsed / elapsed,
                    }
                )
    return table
