"""Experiment harness: tables, registry, and text rendering.

Every experiment (E1..E8, see DESIGN.md) produces an :class:`ExperimentTable`:
a named list of rows with a fixed column set.  The benchmark suite runs the
experiment functions through pytest-benchmark, the examples print the tables,
and EXPERIMENTS.md records a snapshot of their output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["ExperimentTable", "ExperimentRegistry", "registry"]


@dataclass
class ExperimentTable:
    """A table of results produced by an experiment runner."""

    experiment_id: str
    title: str
    columns: Sequence[str]
    rows: List[Mapping[str, object]] = field(default_factory=list)
    notes: Optional[str] = None

    def add_row(self, **values: object) -> None:
        """Append a row; the keys must be exactly the declared column set.

        Unknown keys are rejected rather than silently dropped by
        :meth:`render` and :meth:`column` later on.
        """
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row is missing columns: {sorted(missing, key=str)}")
        unexpected = set(values) - set(self.columns)
        if unexpected:
            raise ValueError(f"row has unexpected columns: {sorted(unexpected, key=str)}")
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        """The values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]

    def render(self, float_format: str = "{:.3g}") -> str:
        """Render the table as aligned plain text (used by examples and EXPERIMENTS.md)."""
        header = list(self.columns)
        body: List[List[str]] = []
        for row in self.rows:
            rendered_row = []
            for name in header:
                value = row[name]
                if isinstance(value, float):
                    rendered_row.append(float_format.format(value))
                else:
                    rendered_row.append(str(value))
            body.append(rendered_row)
        widths = [
            max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"# {self.experiment_id}: {self.title}"]
        lines.append("  ".join(name.ljust(widths[i]) for i, name in enumerate(header)))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for rendered_row in body:
            lines.append("  ".join(rendered_row[i].ljust(widths[i]) for i in range(len(header))))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)


class ExperimentRegistry:
    """A registry mapping experiment identifiers to their runner functions."""

    def __init__(self) -> None:
        self._runners: Dict[str, Callable[..., ExperimentTable]] = {}

    def register(
        self, experiment_id: str
    ) -> Callable[[Callable[..., ExperimentTable]], Callable[..., ExperimentTable]]:
        """Decorator registering a runner under an experiment identifier."""

        def decorator(function: Callable[..., ExperimentTable]) -> Callable[..., ExperimentTable]:
            if experiment_id in self._runners:
                raise ValueError(f"experiment {experiment_id} is already registered")
            self._runners[experiment_id] = function
            return function

        return decorator

    def run(self, experiment_id: str, **kwargs: object) -> ExperimentTable:
        """Run a registered experiment."""
        if experiment_id not in self._runners:
            raise KeyError(f"unknown experiment: {experiment_id}")
        return self._runners[experiment_id](**kwargs)

    def ids(self) -> List[str]:
        """The registered experiment identifiers, sorted."""
        return sorted(self._runners)

    def __contains__(self, experiment_id: str) -> bool:
        return experiment_id in self._runners


#: The global registry the experiment definitions register into.
registry = ExperimentRegistry()
