"""Experiment harness and the E1..E13 experiment definitions (see DESIGN.md)."""

from . import experiment_defs  # noqa: F401  (registers the experiments)
from .experiment_defs import (
    experiment_e1_state_counts,
    experiment_e2_theorem_4_3,
    experiment_e3_lower_bounds,
    experiment_e4_rackoff,
    experiment_e5_stability,
    experiment_e6_bottom,
    experiment_e7_cycles,
    experiment_e8_verification,
    experiment_e9_simulation_throughput,
    experiment_e10_parallel_batch,
    experiment_e11_large_net_throughput,
    experiment_e12_parameter_sweep,
    experiment_e13_analytics_sweep,
    experiment_e14_ensemble_throughput,
    random_interaction_protocol,
)
from .harness import ExperimentRegistry, ExperimentTable, registry

__all__ = [
    "ExperimentTable",
    "ExperimentRegistry",
    "registry",
    "experiment_e1_state_counts",
    "experiment_e2_theorem_4_3",
    "experiment_e3_lower_bounds",
    "experiment_e4_rackoff",
    "experiment_e5_stability",
    "experiment_e6_bottom",
    "experiment_e7_cycles",
    "experiment_e8_verification",
    "experiment_e9_simulation_throughput",
    "experiment_e10_parallel_batch",
    "experiment_e11_large_net_throughput",
    "experiment_e12_parameter_sweep",
    "experiment_e13_analytics_sweep",
    "experiment_e14_ensemble_throughput",
    "random_interaction_protocol",
]
