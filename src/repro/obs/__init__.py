"""Unified observability: metrics registry, structured tracing, profiling.

The stack spans four layers — engines, worker pools, distributed sweep
runners, and the :mod:`repro.serve` HTTP front — and before this package
each grew its own blind spot: hand-rolled counter structs, silent heartbeat
misses, hot loops with no timing at all, and no way to tie a served job to
the pool dispatch and worker execution that produced it.  ``repro.obs`` is
the one telemetry substrate they all share:

* :mod:`repro.obs.registry` — a process-wide **metrics registry**: counters,
  gauges, and histograms with fixed deterministic bucket bounds, labeled
  series, and Prometheus-style text exposition whose output is byte-stable
  for a given state (``# HELP``/``# TYPE`` lines, lexicographic family and
  label order).  The serve layer's ``/metrics`` endpoint and the sweep
  runners' claim counters are rebased onto it.
* :mod:`repro.obs.trace` — **structured tracing**: :func:`span` context
  managers emitting JSONL events (run, ensemble, sweep-cell, claim,
  serve-job spans with queue-wait vs execution breakdown) through the
  sanctioned :mod:`repro.config` clock funnel.  Worker processes buffer
  their span events and ship them back with results, so a sweep cell's
  trace includes its worker-side execution — cross-process propagation
  without any shared trace file.
* :mod:`repro.obs.profile` — **profiling hooks** in the stepper entry
  points: interactions/sec and per-engine step timing sampled every N
  steps, compiling down to a single predicate check per run when disabled
  (bench E15 asserts the disabled cost is ≤2% on the compiled engine).
* :mod:`repro.obs.render` / ``python -m repro.obs`` — trace-file analysis:
  ``summary`` (per-layer latency breakdown), ``tail``, ``timeline`` (the
  span tree), and ``canon`` (a canonical rendering with every
  non-deterministic field stripped — byte-identical across serial and
  process backends for a fixed seed, the cross-backend determinism check).

Nothing in this package feeds back into simulation state: tracing and
metrics observe result objects and clocks, never RNG streams, so enabling
them cannot change any computed value.
"""

from .profile import (
    EngineProfiler,
    active_profiler,
    disable_profiling,
    enable_profiling,
    profiling_from_env,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .trace import (
    Tracer,
    active_tracer,
    capture_events,
    event,
    install_tracer,
    span,
    tracer_from_env,
    tracing_active,
    uninstall_tracer,
)

__all__ = [
    "Counter",
    "EngineProfiler",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "active_profiler",
    "active_tracer",
    "capture_events",
    "disable_profiling",
    "enable_profiling",
    "event",
    "get_registry",
    "install_tracer",
    "profiling_from_env",
    "set_registry",
    "span",
    "tracer_from_env",
    "tracing_active",
    "uninstall_tracer",
]
