"""Structured tracing: spans, point events, JSONL emission, worker capture.

A *span* is a named, timed region with a kind (``run``, ``ensemble``,
``sweep-cell``, ``claim``, ``serve-job``, ``dispatch``, ``chunk``) and a
dict of attributes; a *point event* is a timestamped record with no
duration (heartbeat warnings, lifecycle markers).  Both serialize as one
JSON object per line.

Three design rules keep this compatible with the repo's determinism
discipline:

* **Clocks go through the funnel.**  Durations use
  :func:`repro.config.monotonic_time`; the single wall-clock read (the
  trace file's ``meta`` header) is :func:`repro.config.wall_time` — the
  one pragma'd call site in the codebase.
* **Disabled tracing is one predicate.**  :func:`span` and :func:`event`
  check :func:`tracing_active` first and return immediately when nothing
  is listening; instrumented call sites may also guard on it themselves
  to skip attribute construction.
* **Workers ship events, not files.**  A worker process wraps its chunk in
  :func:`capture_events` — emission is diverted into an in-memory buffer
  that returns with the results.  The parent calls :func:`adopt` to remap
  span ids into its own id space, re-parent the worker's top-level spans
  under its dispatch span, and re-emit.  Because the pool returns chunks
  in submission order, adopted events land in exactly the order a serial
  run would have emitted them — the property the cross-backend
  byte-identity test pins (after :mod:`repro.obs.render` strips timing).

Span parenting uses a :class:`contextvars.ContextVar`, so nesting follows
the call stack per thread/task; the capture stack is deliberately
module-global (lock-guarded) so events emitted from pool callback threads
still reach the active capture.
"""

from __future__ import annotations

import contextlib
import json
import os
import threading
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Sequence

from .. import config

__all__ = [
    "SpanHandle",
    "Tracer",
    "active_tracer",
    "adopt",
    "capture_events",
    "event",
    "install_tracer",
    "span",
    "span_event",
    "tracer_from_env",
    "tracing_active",
    "uninstall_tracer",
]

# ---------------------------------------------------------------------------
# Emission state
# ---------------------------------------------------------------------------

_STATE_LOCK = threading.Lock()
_TRACER: Optional["Tracer"] = None
#: Module-global (not context-local) so pool callback threads feed the same
#: capture as the dispatching thread.  Innermost capture wins.
_CAPTURE_STACK: List[List[Dict[str, Any]]] = []

_ID_LOCK = threading.Lock()
_NEXT_ID = 0

#: Current span id for parenting — context-local so concurrent serve jobs /
#: sweep threads each see their own ancestry.
_CURRENT_SPAN: ContextVar[Optional[int]] = ContextVar(
    "repro_obs_current_span", default=None
)


def _next_id() -> int:
    global _NEXT_ID
    with _ID_LOCK:
        _NEXT_ID += 1
        return _NEXT_ID


def _emit(record: Dict[str, Any]) -> None:
    """Route one event: innermost capture if any, else the installed tracer."""
    with _STATE_LOCK:
        if _CAPTURE_STACK:
            _CAPTURE_STACK[-1].append(record)
            return
        tracer = _TRACER
    if tracer is not None:
        tracer.write(record)


def tracing_active() -> bool:
    """True when anything is listening (installed tracer or open capture)."""
    return _TRACER is not None or bool(_CAPTURE_STACK)


# ---------------------------------------------------------------------------
# The tracer (JSONL sink)
# ---------------------------------------------------------------------------


class Tracer:
    """An append-mode JSONL trace writer.

    The first line of every session is a ``meta`` record carrying the one
    sanctioned wall-clock read (so a human can anchor the monotonic
    timestamps) and the writer's pid.  All writes serialize on a lock, so
    pool callback threads and the main thread interleave whole lines, never
    partial ones.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")
        self.write(
            {
                "ev": "meta",
                "version": 1,
                "pid": os.getpid(),
                "wall_time": config.wall_time(),
            }
        )

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if self._fh.closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __repr__(self) -> str:
        return f"Tracer(path={self.path!r})"


def install_tracer(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide sink; returns it for chaining."""
    global _TRACER
    with _STATE_LOCK:
        _TRACER = tracer
    return tracer


def uninstall_tracer(close: bool = True) -> Optional[Tracer]:
    """Remove (and by default close) the installed tracer; returns it."""
    global _TRACER
    with _STATE_LOCK:
        tracer, _TRACER = _TRACER, None
    if tracer is not None and close:
        tracer.close()
    return tracer


def active_tracer() -> Optional[Tracer]:
    return _TRACER


def tracer_from_env() -> Optional[Tracer]:
    """Install a tracer if ``REPRO_TRACE`` asks for one (CLI entry points).

    Programmatic use calls :func:`install_tracer` directly and does not
    depend on the environment.  Idempotent: if a tracer is already
    installed, it is returned unchanged.
    """
    if not config.trace_enabled():
        return None
    existing = active_tracer()
    if existing is not None:
        return existing
    return install_tracer(Tracer(config.trace_path()))


# ---------------------------------------------------------------------------
# Spans and point events
# ---------------------------------------------------------------------------


class SpanHandle:
    """Handle for an open span: its ``id`` (for :func:`adopt` parenting)
    and a mutable attribute bag (``sp.set(steps=42)``)."""

    __slots__ = ("id", "attrs")

    def __init__(self, span_id: int, attrs: Dict[str, Any]) -> None:
        self.id = span_id
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


class _NullSpan:
    """The shared no-op handle yielded when tracing is off."""

    __slots__ = ()

    id: Optional[int] = None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


@contextlib.contextmanager
def span(name: str, kind: Optional[str] = None, **attrs: Any):
    """Time a region and emit one ``span`` event when it closes.

    Yields a :class:`SpanHandle` so the body can attach attributes computed
    mid-flight (``sp.set(queue_wait=w)``); when tracing is inactive, yields
    a shared no-op handle and emits nothing.  The span's ``parent`` is
    whatever span encloses it on this thread/task.
    """
    if not tracing_active():
        yield _NULL_SPAN
        return
    span_id = _next_id()
    token = _CURRENT_SPAN.set(span_id)
    handle = SpanHandle(span_id, dict(attrs))
    error: Optional[str] = None
    t0 = config.monotonic_time()
    try:
        yield handle
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        dur = config.monotonic_time() - t0
        _CURRENT_SPAN.reset(token)
        parent = _CURRENT_SPAN.get()
        record: Dict[str, Any] = {
            "ev": "span",
            "kind": kind or name,
            "name": name,
            "id": span_id,
            "parent": parent,
            "pid": os.getpid(),
            "t0": t0,
            "dur": dur,
            "attrs": handle.attrs,
        }
        if error is not None:
            record["error"] = error
        _emit(record)


def span_event(
    name: str, kind: str, t0: float, dur: float, **attrs: Any
) -> None:
    """Emit a span record for a region the caller already timed.

    The hot-loop variant of :func:`span`: the stepper entry points time a
    run with two :func:`repro.config.monotonic_time` reads and call this
    once — no context-manager machinery on the per-run path.  Parents under
    the current span like any other span; no-op when tracing is inactive.
    """
    if not tracing_active():
        return
    _emit(
        {
            "ev": "span",
            "kind": kind,
            "name": name,
            "id": _next_id(),
            "parent": _CURRENT_SPAN.get(),
            "pid": os.getpid(),
            "t0": t0,
            "dur": dur,
            "attrs": dict(attrs),
        }
    )


def event(name: str, kind: str = "event", **attrs: Any) -> None:
    """Emit one point event (no duration) under the current span, if any."""
    if not tracing_active():
        return
    _emit(
        {
            "ev": "event",
            "kind": kind,
            "name": name,
            "id": _next_id(),
            "parent": _CURRENT_SPAN.get(),
            "pid": os.getpid(),
            "t": config.monotonic_time(),
            "attrs": dict(attrs),
        }
    )


# ---------------------------------------------------------------------------
# Cross-process propagation
# ---------------------------------------------------------------------------


@contextlib.contextmanager
def capture_events() -> Iterator[List[Dict[str, Any]]]:
    """Divert all emission into a buffer for the duration of the block.

    The worker side of cross-process propagation: wrap the chunk execution,
    ship the returned list back with the results.  Captures nest (innermost
    wins) and activate tracing by themselves — no tracer needs to be
    installed in the worker process.
    """
    buffer: List[Dict[str, Any]] = []
    with _STATE_LOCK:
        _CAPTURE_STACK.append(buffer)
    try:
        yield buffer
    finally:
        with _STATE_LOCK:
            _CAPTURE_STACK.remove(buffer)


def adopt(
    events: Sequence[Dict[str, Any]], parent: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Re-emit captured worker events into this process's trace.

    Span ids are remapped into this process's id space (worker counters
    restart per process, so shipped ids collide across chunks); parent
    references *within* the batch follow the remap, and events whose parent
    is not in the batch — the worker's top-level spans — are re-parented
    under ``parent`` (typically the pool's dispatch span).  Events re-emit
    in shipped order, which is execution order within the chunk.  Returns
    the remapped events.
    """
    id_map: Dict[int, int] = {}
    for record in events:
        old = record.get("id")
        if isinstance(old, int):
            id_map[old] = _next_id()
    adopted: List[Dict[str, Any]] = []
    for record in events:
        if record.get("ev") == "meta":
            continue
        remapped = dict(record)
        old = remapped.get("id")
        if isinstance(old, int):
            remapped["id"] = id_map[old]
        old_parent = remapped.get("parent")
        if isinstance(old_parent, int) and old_parent in id_map:
            remapped["parent"] = id_map[old_parent]
        else:
            remapped["parent"] = parent
        adopted.append(remapped)
        _emit(remapped)
    return adopted
