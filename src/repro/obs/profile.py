"""Engine profiling hooks: interactions/sec and per-run step timing.

The stepper entry points (:meth:`Simulator._run_seeds` and friends) call
:func:`active_profiler` once per run; when profiling is disabled that is a
single module-global ``None``-check — no object construction, no clock
reads — which is what keeps the disabled-overhead bench (E15) under its
2% budget.  Timing is per *run*, never per step: a run of ``n`` steps
costs two monotonic reads total.

When enabled, an :class:`EngineProfiler` accumulates per-engine totals
(runs, interaction steps, seconds) and flushes them into a
:class:`~repro.obs.registry.MetricsRegistry` every ``sample_every``
records:

* ``repro_engine_runs_total{engine=...}`` / ``repro_engine_steps_total``
  — counters of completed runs and interaction steps,
* ``repro_engine_run_seconds{engine=...}`` — a histogram of per-run wall
  time (fixed deterministic buckets),
* ``repro_engine_steps_per_second{engine=...}`` — a gauge holding the
  throughput over the most recent sample window.

All clock reads happen at the call sites via
:func:`repro.config.monotonic_time`; this module only aggregates numbers
it is handed, so it is trivially clean under the determinism linter.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from .. import config
from .registry import Histogram, MetricsRegistry, get_registry

__all__ = [
    "EngineProfiler",
    "RUN_SECONDS_BUCKETS",
    "active_profiler",
    "disable_profiling",
    "enable_profiling",
    "profiling_from_env",
]

#: Per-run wall-time buckets (seconds).  Runs span ~10µs (tiny reference
#: runs) to minutes (large ensembles), so the ladder starts below the
#: latency default's 1ms floor.  Fixed bounds — deterministic exposition.
RUN_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class _EngineWindow:
    """Accumulated-but-unflushed totals for one engine."""

    __slots__ = ("runs", "steps", "seconds")

    def __init__(self) -> None:
        self.runs = 0
        self.steps = 0
        self.seconds = 0.0


class EngineProfiler:
    """Aggregates per-engine run timings into a metrics registry.

    ``sample_every`` bounds the enabled-mode overhead: registry updates
    (lock + histogram scan) happen once per window, not once per run;
    between flushes a record is three attribute adds under a local lock.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        sample_every: int = 16,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        self.registry = registry if registry is not None else get_registry()
        self.sample_every = int(sample_every)
        self._lock = threading.Lock()
        self._windows: Dict[str, _EngineWindow] = {}
        self._pending = 0
        self._runs = self.registry.counter(
            "repro_engine_runs_total",
            "Completed simulation runs by engine.",
            labelnames=("engine",),
        )
        self._steps = self.registry.counter(
            "repro_engine_steps_total",
            "Interaction steps executed by engine.",
            labelnames=("engine",),
        )
        self._seconds: Histogram = self.registry.histogram(
            "repro_engine_run_seconds",
            "Per-run wall time by engine.",
            labelnames=("engine",),
            buckets=RUN_SECONDS_BUCKETS,
        )
        self._rate = self.registry.gauge(
            "repro_engine_steps_per_second",
            "Interaction throughput over the most recent sample window.",
            labelnames=("engine",),
        )

    def record(self, engine: str, steps: int, seconds: float) -> None:
        """Account one completed run; flushes every ``sample_every`` calls."""
        with self._lock:
            window = self._windows.get(engine)
            if window is None:
                window = self._windows[engine] = _EngineWindow()
            window.runs += 1
            window.steps += steps
            window.seconds += seconds
            self._seconds.observe(seconds, engine=engine)
            self._pending += 1
            if self._pending < self.sample_every:
                return
            windows, self._windows = self._windows, {}
            self._pending = 0
        self._flush(windows)

    def flush(self) -> None:
        """Push any partial window into the registry (end-of-batch drain)."""
        with self._lock:
            windows, self._windows = self._windows, {}
            self._pending = 0
        self._flush(windows)

    def _flush(self, windows: Dict[str, _EngineWindow]) -> None:
        for engine in sorted(windows):
            window = windows[engine]
            self._runs.inc(window.runs, engine=engine)
            self._steps.inc(window.steps, engine=engine)
            if window.seconds > 0:
                self._rate.set(window.steps / window.seconds, engine=engine)

    def __repr__(self) -> str:
        return (
            f"EngineProfiler(sample_every={self.sample_every}, "
            f"registry={self.registry!r})"
        )


#: The module-global hook the stepper entry points check — ``None`` is the
#: entire disabled cost.
_PROFILER: Optional[EngineProfiler] = None
_PROFILER_LOCK = threading.Lock()


def active_profiler() -> Optional[EngineProfiler]:
    """The installed profiler, or ``None`` — the one disabled-path check."""
    return _PROFILER


def enable_profiling(
    registry: Optional[MetricsRegistry] = None, sample_every: int = 16
) -> EngineProfiler:
    """Install (or return the already-installed) process-wide profiler."""
    global _PROFILER
    with _PROFILER_LOCK:
        if _PROFILER is None:
            _PROFILER = EngineProfiler(registry, sample_every=sample_every)
        return _PROFILER


def disable_profiling() -> Optional[EngineProfiler]:
    """Remove the profiler (flushing its partial window); returns it."""
    global _PROFILER
    with _PROFILER_LOCK:
        profiler, _PROFILER = _PROFILER, None
    if profiler is not None:
        profiler.flush()
    return profiler


def profiling_from_env() -> Optional[EngineProfiler]:
    """Enable profiling when ``REPRO_METRICS`` asks for it (CLI entry points)."""
    if not config.metrics_enabled():
        return None
    return enable_profiling()
