"""The process-wide metrics registry: counters, gauges, histograms, labels.

One :class:`MetricsRegistry` holds a set of named metric *families*; a family
with labels holds one *series* per distinct label-value tuple.  Three metric
kinds cover the stack's needs:

* :class:`Counter` — monotonically increasing totals (jobs completed, claims
  parked, heartbeats sent),
* :class:`Gauge` — point-in-time values (queue depth, cache entries),
* :class:`Histogram` — latency/throughput distributions over **fixed,
  deterministic bucket bounds** (no adaptive resizing: two processes
  observing the same values render the same buckets).

Everything is thread-safe behind one registry lock: pool callbacks, serve
executor threads, and heartbeat pumps increment concurrently without losing
updates or corrupting exposition output (``tests/test_obs.py`` hammers this).

Exposition (:meth:`MetricsRegistry.render`) is Prometheus text format and
**deterministic**: families sort lexicographically by name, series by label
values, every family carries ``# HELP``/``# TYPE`` lines, and a value
renders identically for identical state — two scrapes of an idle server are
byte-identical, which is what makes ``/metrics`` diffable in tests and CI.

A process-wide default registry (:func:`get_registry`) serves the sweep and
pool layers; components that need isolation (each
:class:`~repro.serve.server.SimulationServer`, unit tests) construct their
own.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

#: The default histogram bucket bounds (seconds): a fixed 1-2.5-5 ladder from
#: 1 ms to 10 s.  Deterministic by construction — the bounds never depend on
#: observed data — so exposition is comparable across processes and runs.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

_NumberT = Union[int, float]


def _format_value(value: _NumberT) -> str:
    """Render a sample value: integers without a point, floats via repr.

    ``repr`` round-trips floats exactly, so identical state renders to
    identical bytes — the property the deterministic-exposition test pins.
    """
    if isinstance(value, bool):  # bools are ints; never sensible here
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name must not start with a digit: {name!r}")
    return name


def _label_key(
    labelnames: Tuple[str, ...], labels: Mapping[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Family:
    """Shared machinery of one named metric family (series map + lock)."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
    ) -> None:
        self.name = _validate_name(name)
        self.help = " ".join(help_text.split()) or name
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        for label in self.labelnames:
            _validate_name(label)
        self._lock = lock
        self._series: Dict[Tuple[str, ...], object] = {}

    def _series_for(self, labels: Mapping[str, str]) -> object:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._new_series()
                self._series[key] = series
            return series

    def _new_series(self) -> object:
        raise NotImplementedError

    def _render_label_set(self, key: Tuple[str, ...]) -> str:
        if not self.labelnames:
            return ""
        pairs = ",".join(
            f'{name}="{value}"' for name, value in zip(self.labelnames, key)
        )
        return "{" + pairs + "}"

    def _sorted_series(self) -> List[Tuple[Tuple[str, ...], object]]:
        return sorted(self._series.items(), key=lambda item: item[0])

    def render(self) -> List[str]:
        """The family's exposition lines (``# HELP``, ``# TYPE``, samples)."""
        with self._lock:
            lines = [
                f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} {self.kind}",
            ]
            for key, series in self._sorted_series():
                lines.extend(self._render_series(key, series))
            return lines

    def _render_series(self, key: Tuple[str, ...], series: object) -> List[str]:
        raise NotImplementedError


class Counter(_Family):
    """A monotonically increasing total, optionally labeled."""

    kind = "counter"

    def _new_series(self) -> List[_NumberT]:
        return [0]

    def inc(self, amount: _NumberT = 1, **labels: str) -> None:
        """Add ``amount`` (must be non-negative) to the series."""
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount!r}")
        cell = self._series_for(labels)
        with self._lock:
            cell[0] += amount  # type: ignore[index]

    def value(self, **labels: str) -> _NumberT:
        """The series' current total (0 for a never-touched series)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            cell = self._series.get(key)
            return cell[0] if cell is not None else 0  # type: ignore[index]

    def _render_series(self, key: Tuple[str, ...], series: object) -> List[str]:
        value = series[0]  # type: ignore[index]
        return [f"{self.name}{self._render_label_set(key)} {_format_value(value)}"]


class Gauge(_Family):
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def _new_series(self) -> List[_NumberT]:
        return [0]

    def set(self, value: _NumberT, **labels: str) -> None:
        cell = self._series_for(labels)
        with self._lock:
            cell[0] = value  # type: ignore[index]

    def inc(self, amount: _NumberT = 1, **labels: str) -> None:
        cell = self._series_for(labels)
        with self._lock:
            cell[0] += amount  # type: ignore[index]

    def dec(self, amount: _NumberT = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> _NumberT:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            cell = self._series.get(key)
            return cell[0] if cell is not None else 0  # type: ignore[index]

    def _render_series(self, key: Tuple[str, ...], series: object) -> List[str]:
        value = series[0]  # type: ignore[index]
        return [f"{self.name}{self._render_label_set(key)} {_format_value(value)}"]


class _HistogramSeries:
    __slots__ = ("buckets", "total", "count")

    def __init__(self, bucket_count: int) -> None:
        self.buckets = [0] * bucket_count
        self.total = 0.0
        self.count = 0


class Histogram(_Family):
    """A distribution over fixed bucket bounds (cumulative on exposition).

    Bounds are set at construction and never adapt to data — determinism
    over cleverness.  ``observe`` costs one binary search plus three
    increments under the registry lock.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        lock: threading.RLock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.bounds = bounds
        super().__init__(name, help_text, labelnames, lock)

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(len(self.bounds))

    def observe(self, value: _NumberT, **labels: str) -> None:
        series = self._series_for(labels)
        with self._lock:
            # Linear scan: bucket ladders are short (~13 bounds) and the
            # scan is branch-predictable; a bisect buys nothing at this size.
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    series.buckets[index] += 1  # type: ignore[union-attr]
                    break
            series.total += float(value)  # type: ignore[union-attr]
            series.count += 1  # type: ignore[union-attr]

    def snapshot(self, **labels: str) -> Tuple[int, float]:
        """``(count, sum)`` of the series — 0s for a never-touched series."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return 0, 0.0
            return series.count, series.total  # type: ignore[union-attr]

    def _render_series(self, key: Tuple[str, ...], series: object) -> List[str]:
        assert isinstance(series, _HistogramSeries)
        lines: List[str] = []
        cumulative = 0
        for bound, bucket in zip(self.bounds, series.buckets):
            cumulative += bucket
            label_set = self._bucket_label_set(key, _format_value(bound))
            lines.append(f"{self.name}_bucket{label_set} {cumulative}")
        label_set = self._bucket_label_set(key, "+Inf")
        lines.append(f"{self.name}_bucket{label_set} {series.count}")
        plain = self._render_label_set(key)
        lines.append(f"{self.name}_sum{plain} {_format_value(series.total)}")
        lines.append(f"{self.name}_count{plain} {series.count}")
        return lines

    def _bucket_label_set(self, key: Tuple[str, ...], le: str) -> str:
        pairs = [
            f'{name}="{value}"' for name, value in zip(self.labelnames, key)
        ]
        pairs.append(f'le="{le}"')
        return "{" + ",".join(pairs) + "}"


class MetricsRegistry:
    """A named collection of metric families with deterministic exposition.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first call
    for a name registers the family, later calls return the same object
    (mismatched kind, labels, or bucket bounds raise — one name, one
    meaning).  All mutation and rendering serializes on one re-entrant lock,
    so concurrent increments from pool callbacks never lose updates and a
    scrape never observes a half-applied histogram sample.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # Family registration (get-or-create)
    # ------------------------------------------------------------------
    def _family(
        self, kind: type, name: str, help_text: str,
        labelnames: Sequence[str], **extra: object,
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = kind(name, help_text, labelnames, self._lock, **extra)
                self._families[name] = family
                return family
            if type(family) is not kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            if family.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{family.labelnames}, not {tuple(labelnames)}"
                )
            if extra.get("buckets") is not None and isinstance(family, Histogram):
                bounds = tuple(float(b) for b in extra["buckets"])  # type: ignore[union-attr]
                if family.bounds != bounds:
                    raise ValueError(
                        f"histogram {name!r} already registered with bounds "
                        f"{family.bounds}, not {bounds}"
                    )
            return family

    def counter(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._family(Counter, name, help_text, labelnames)  # type: ignore[return-value]

    def gauge(
        self, name: str, help_text: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._family(Gauge, name, help_text, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._family(  # type: ignore[return-value]
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Prometheus text exposition, byte-stable for identical state.

        Families render in lexicographic name order, series in label-value
        order, each family led by its ``# HELP``/``# TYPE`` pair.
        """
        with self._lock:
            lines: List[str] = []
            for name in sorted(self._families):
                lines.extend(self._families[name].render())
            return "\n".join(lines) + "\n" if lines else ""

    def sample_values(self) -> Dict[str, _NumberT]:
        """Flat ``{sample_line_name: value}`` of plain counters and gauges.

        Histograms are omitted (their exposition is multi-line); the helper
        backs quick assertions and the serve layer's drain summary.
        """
        with self._lock:
            values: Dict[str, _NumberT] = {}
            for name in sorted(self._families):
                family = self._families[name]
                if isinstance(family, (Counter, Gauge)):
                    for key, series in family._sorted_series():
                        values[name + family._render_label_set(key)] = series[0]  # type: ignore[index]
            return values

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families

    def __repr__(self) -> str:
        with self._lock:
            return f"MetricsRegistry({len(self._families)} families)"


#: The process-wide default registry (sweep claims, pools, profiling).
_DEFAULT_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT_REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous
