"""``python -m repro.obs`` — render a JSONL trace file.

Subcommands:

* ``summary <trace>`` — per-layer latency breakdown (count/total/mean/max
  per span kind, point-event tallies).
* ``tail <trace> [-n N]`` — the last N events as one-liners.
* ``timeline <trace>`` — the span tree (serve job → sweep cell → ensemble
  → dispatch → worker chunks → runs), children in emission order.
* ``canon <trace>`` — the canonical deterministic rendering; byte-identical
  across serial and process backends for a fixed seed (the cross-backend
  determinism check uses ``cmp`` on two of these).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import render


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render a repro JSONL trace file.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="per-layer latency breakdown"
    )
    p_summary.add_argument("trace", help="path to a JSONL trace file")

    p_tail = sub.add_parser("tail", help="show the last N events")
    p_tail.add_argument("trace", help="path to a JSONL trace file")
    p_tail.add_argument(
        "-n", "--count", type=int, default=10, help="events to show (default 10)"
    )

    p_timeline = sub.add_parser("timeline", help="render the span tree")
    p_timeline.add_argument("trace", help="path to a JSONL trace file")

    p_canon = sub.add_parser(
        "canon", help="canonical deterministic rendering (for diffing)"
    )
    p_canon.add_argument("trace", help="path to a JSONL trace file")
    p_canon.add_argument(
        "-o", "--output", default=None,
        help="write to this file instead of stdout",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        events = render.load_events(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.command == "summary":
        print(render.summary(events))
    elif args.command == "tail":
        print(render.tail(events, count=args.count))
    elif args.command == "timeline":
        print(render.timeline(events))
    elif args.command == "canon":
        text = render.canon(events)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text)
        else:
            sys.stdout.write(text)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
