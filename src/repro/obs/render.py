"""Trace-file analysis: summary, tail, timeline, canonical rendering.

Backs ``python -m repro.obs``.  Everything here is a pure function from a
parsed event list to text, so the CLI and the tests share one code path.

The *canonical rendering* (:func:`canon`) is the cross-backend determinism
check: it keeps only the span kinds whose content is fully determined by
(spec, seed) — ``run``, ``ensemble``, ``sweep-cell`` — and strips every
field that legitimately varies between executions (ids, parents, pids,
timestamps, durations, and the attribute keys on the denylist below).
Because worker-side events are adopted in chunk submission order, a fixed
seed renders byte-identically across the serial and process backends.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CANON_KINDS",
    "NONDETERMINISTIC_ATTRS",
    "canon",
    "load_events",
    "summary",
    "tail",
    "timeline",
]

#: Span kinds whose canonical content is determined by (spec, seed) alone.
CANON_KINDS: Tuple[str, ...] = ("ensemble", "run", "sweep-cell")

#: Attribute keys stripped from the canonical rendering: anything timing-,
#: placement-, or backend-dependent.
NONDETERMINISTIC_ATTRS = frozenset(
    {
        "backend",
        "chunk",
        "chunks",
        "exec_seconds",
        "lock_wait",
        "owner",
        "pid",
        "queue_wait",
        "seconds",
        "workers",
    }
)

#: Fixed layer order for the summary breakdown — outermost first.  Kinds
#: not listed sort alphabetically after these.
_LAYER_ORDER: Tuple[str, ...] = (
    "serve-job",
    "sweep-cell",
    "claim",
    "ensemble",
    "dispatch",
    "chunk",
    "run",
)


def load_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file; raises ``ValueError`` naming a bad line."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})") from None
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: expected an object")
            events.append(record)
    return events


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def _kind_sort_key(kind: str) -> Tuple[int, str]:
    try:
        return (_LAYER_ORDER.index(kind), kind)
    except ValueError:
        return (len(_LAYER_ORDER), kind)


def summary(events: Iterable[Dict[str, Any]]) -> str:
    """A per-layer latency breakdown: count, total, mean, max per span kind."""
    spans: Dict[str, List[float]] = {}
    points: Dict[str, int] = {}
    errors = 0
    for record in events:
        ev = record.get("ev")
        if ev == "span":
            spans.setdefault(str(record.get("kind")), []).append(
                float(record.get("dur", 0.0))
            )
            if record.get("error"):
                errors += 1
        elif ev == "event":
            kind = str(record.get("kind"))
            points[kind] = points.get(kind, 0) + 1
    lines: List[str] = []
    header = f"{'layer':<12} {'count':>7} {'total':>12} {'mean':>12} {'max':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for kind in sorted(spans, key=_kind_sort_key):
        durs = spans[kind]
        total = sum(durs)
        lines.append(
            f"{kind:<12} {len(durs):>7} {_fmt_seconds(total):>12} "
            f"{_fmt_seconds(total / len(durs)):>12} {_fmt_seconds(max(durs)):>12}"
        )
    if not spans:
        lines.append("(no spans)")
    if points:
        lines.append("")
        lines.append("point events:")
        for kind in sorted(points):
            lines.append(f"  {kind}: {points[kind]}")
    if errors:
        lines.append("")
        lines.append(f"spans with errors: {errors}")
    return "\n".join(lines)


def tail(events: List[Dict[str, Any]], count: int = 10) -> str:
    """The last ``count`` events as compact one-liners."""
    lines: List[str] = []
    for record in events[-count:]:
        ev = record.get("ev")
        if ev == "span":
            dur = _fmt_seconds(float(record.get("dur", 0.0)))
            lines.append(
                f"span  {record.get('kind'):<12} {record.get('name')} "
                f"dur={dur} attrs={_compact_attrs(record)}"
            )
        elif ev == "event":
            lines.append(
                f"event {record.get('kind'):<12} {record.get('name')} "
                f"attrs={_compact_attrs(record)}"
            )
        else:
            lines.append(f"{ev:<5} {_compact_attrs(record)}")
    return "\n".join(lines) if lines else "(empty trace)"


def _compact_attrs(record: Dict[str, Any]) -> str:
    attrs = record.get("attrs")
    if not isinstance(attrs, dict) or not attrs:
        return "{}"
    body = ", ".join(f"{key}={attrs[key]!r}" for key in sorted(attrs))
    return "{" + body + "}"


def timeline(events: List[Dict[str, Any]]) -> str:
    """The span tree, children in emission order, point events inline."""
    nodes: Dict[int, Dict[str, Any]] = {}
    order: Dict[int, int] = {}
    children: Dict[Optional[int], List[int]] = {}
    for index, record in enumerate(events):
        if record.get("ev") not in ("span", "event"):
            continue
        node_id = record.get("id")
        if not isinstance(node_id, int):
            continue
        nodes[node_id] = record
        order[node_id] = index
        parent = record.get("parent")
        children.setdefault(
            parent if isinstance(parent, int) else None, []
        ).append(node_id)
    # Spans emit on close, so a parent's line follows its children's — the
    # full scan above sees every id before tree-building.  Children whose
    # parent id never appeared at all are re-homed as roots.
    roots: List[int] = []
    for parent, ids in list(children.items()):
        if parent is None or parent in nodes:
            continue
        roots.extend(ids)
        del children[parent]
    roots.extend(children.get(None, []))
    roots.sort(key=lambda node_id: order[node_id])
    lines: List[str] = []

    def walk(node_id: int, depth: int) -> None:
        record = nodes[node_id]
        indent = "  " * depth
        if record.get("ev") == "span":
            dur = _fmt_seconds(float(record.get("dur", 0.0)))
            lines.append(
                f"{indent}{record.get('name')} [{record.get('kind')}] "
                f"dur={dur} pid={record.get('pid')} "
                f"attrs={_compact_attrs(record)}"
            )
        else:
            lines.append(
                f"{indent}* {record.get('name')} [{record.get('kind')}] "
                f"attrs={_compact_attrs(record)}"
            )
        for child in sorted(children.get(node_id, []), key=lambda i: order[i]):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines) if lines else "(no spans)"


def canon(events: Iterable[Dict[str, Any]]) -> str:
    """The canonical deterministic rendering (see module docstring).

    One JSON object per line, keys sorted, in file order — byte-comparable
    across backends for a fixed seed.
    """
    lines: List[str] = []
    for record in events:
        if record.get("ev") != "span":
            continue
        kind = record.get("kind")
        if kind not in CANON_KINDS:
            continue
        attrs = record.get("attrs")
        kept = {
            key: value
            for key, value in (attrs.items() if isinstance(attrs, dict) else ())
            if key not in NONDETERMINISTIC_ATTRS
        }
        canonical: Dict[str, Any] = {
            "kind": kind,
            "name": record.get("name"),
            "attrs": kept,
        }
        if record.get("error"):
            canonical["error"] = record["error"]
        lines.append(json.dumps(canonical, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + "\n" if lines else ""
