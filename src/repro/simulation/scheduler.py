"""Schedulers for protocol simulation.

A scheduler picks, at every step, the transition to fire from the currently
enabled ones.  The stable-computation semantics of the paper quantifies over
*all* fair executions; simulation samples executions instead, and the
schedulers here provide the two standard sampling disciplines:

* :class:`UniformScheduler` — picks uniformly among enabled transition
  *instances*, i.e. each transition is weighted by the number of distinct
  agent groups that could perform it (the usual random-pairing model of the
  population-protocol literature, generalized to arbitrary widths),
* :class:`TransitionScheduler` — picks uniformly among enabled transitions,
  regardless of how many agent groups enable them (useful to stress rare
  interactions).

Both honour a ``random.Random`` instance supplied by the caller so runs are
reproducible.
"""

from __future__ import annotations

import abc
import random
from math import comb
from typing import List, Optional, Sequence, Tuple

from ..core.configuration import Configuration
from ..core.petrinet import PetriNet
from ..core.transition import Transition

__all__ = ["Scheduler", "UniformScheduler", "TransitionScheduler"]


class Scheduler(abc.ABC):
    """Strategy interface: choose the next transition to fire."""

    @abc.abstractmethod
    def choose(
        self, net: PetriNet, configuration: Configuration, rng: random.Random
    ) -> Optional[Transition]:
        """Return an enabled transition to fire, or ``None`` if none is enabled."""

    def compiled_kind(self) -> Optional[str]:
        """The compiled-engine discipline this scheduler admits, or ``None``.

        The compiled simulation engine (:mod:`repro.simulation.compiled`)
        generates a specialized run loop per scheduling discipline; the
        built-in schedulers return ``"uniform"`` / ``"transition"`` here.
        Custom schedulers return ``None`` and are run through the sparse
        reference engine.  A subclass that overrides :meth:`choose` with
        different semantics must override this to return ``None`` as well,
        otherwise the compiled engine would silently ignore its ``choose``.
        """
        return None


class TransitionScheduler(Scheduler):
    """Choose uniformly among the enabled transitions."""

    def choose(
        self, net: PetriNet, configuration: Configuration, rng: random.Random
    ) -> Optional[Transition]:
        enabled = net.enabled_transitions(configuration)
        if not enabled:
            return None
        return rng.choice(enabled)

    def compiled_kind(self) -> Optional[str]:
        if type(self).choose is not TransitionScheduler.choose:
            return None
        return "transition"


class UniformScheduler(Scheduler):
    """Choose transitions weighted by the number of agent groups enabling them.

    For a transition with precondition ``pre``, the weight in configuration
    ``rho`` is ``prod_p C(rho(p), pre(p))`` — the number of ways to pick the
    interacting agents.  This reproduces the classical uniform random-pairing
    dynamics for width-2 protocols and generalizes it to arbitrary widths.

    :meth:`choose` below is the sparse reference implementation, which
    recomputes every weight from scratch.  Under the compiled engine the same
    discipline runs *incrementally*: after firing transition ``t`` only the
    weights of transitions whose pre-sets intersect the states ``t`` changed
    are recomputed, and a running total is maintained
    (see :mod:`repro.simulation.compiled`).  Both paths draw exactly one
    ``randrange(total)`` per step, so their trajectories coincide seed-for-seed.
    """

    def choose(
        self, net: PetriNet, configuration: Configuration, rng: random.Random
    ) -> Optional[Transition]:
        weighted: List[Tuple[Transition, int]] = []
        total = 0
        for transition in net.transitions:
            weight = self._weight(transition, configuration)
            if weight > 0:
                weighted.append((transition, weight))
                total += weight
        if total == 0:
            return None
        pick = rng.randrange(total)
        cumulative = 0
        for transition, weight in weighted:
            cumulative += weight
            if pick < cumulative:
                return transition
        # Unreachable, but keeps the type-checker and defensive readers happy.
        return weighted[-1][0]

    def compiled_kind(self) -> Optional[str]:
        if (
            type(self).choose is not UniformScheduler.choose
            or type(self)._weight is not UniformScheduler._weight
        ):
            return None
        return "uniform"

    @staticmethod
    def _weight(transition: Transition, configuration: Configuration) -> int:
        weight = 1
        for state, needed in transition.pre.items():
            available = configuration[state]
            if available < needed:
                return 0
            weight *= comb(available, needed)
        return weight
