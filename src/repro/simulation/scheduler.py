"""Schedulers for protocol simulation.

A scheduler picks, at every step, the transition to fire from the currently
enabled ones.  The stable-computation semantics of the paper quantifies over
*all* fair executions; simulation samples executions instead, and the
schedulers here provide the two standard sampling disciplines:

* :class:`UniformScheduler` — picks uniformly among enabled transition
  *instances*, i.e. each transition is weighted by the number of distinct
  agent groups that could perform it (the usual random-pairing model of the
  population-protocol literature, generalized to arbitrary widths),
* :class:`TransitionScheduler` — picks uniformly among enabled transitions,
  regardless of how many agent groups enable them (useful to stress rare
  interactions).

Both honour a ``random.Random`` instance supplied by the caller so runs are
reproducible.
"""

from __future__ import annotations

import abc
import random
from math import comb
from typing import List, Optional, Sequence, Tuple

from ..core.configuration import Configuration
from ..core.petrinet import PetriNet
from ..core.transition import Transition

__all__ = ["Scheduler", "UniformScheduler", "TransitionScheduler"]


class Scheduler(abc.ABC):
    """Strategy interface: choose the next transition to fire."""

    @abc.abstractmethod
    def choose(
        self, net: PetriNet, configuration: Configuration, rng: random.Random
    ) -> Optional[Transition]:
        """Return an enabled transition to fire, or ``None`` if none is enabled."""


class TransitionScheduler(Scheduler):
    """Choose uniformly among the enabled transitions."""

    def choose(
        self, net: PetriNet, configuration: Configuration, rng: random.Random
    ) -> Optional[Transition]:
        enabled = net.enabled_transitions(configuration)
        if not enabled:
            return None
        return rng.choice(enabled)


class UniformScheduler(Scheduler):
    """Choose transitions weighted by the number of agent groups enabling them.

    For a transition with precondition ``pre``, the weight in configuration
    ``rho`` is ``prod_p C(rho(p), pre(p))`` — the number of ways to pick the
    interacting agents.  This reproduces the classical uniform random-pairing
    dynamics for width-2 protocols and generalizes it to arbitrary widths.
    """

    def choose(
        self, net: PetriNet, configuration: Configuration, rng: random.Random
    ) -> Optional[Transition]:
        weighted: List[Tuple[Transition, int]] = []
        total = 0
        for transition in net.transitions:
            weight = self._weight(transition, configuration)
            if weight > 0:
                weighted.append((transition, weight))
                total += weight
        if total == 0:
            return None
        pick = rng.randrange(total)
        cumulative = 0
        for transition, weight in weighted:
            cumulative += weight
            if pick < cumulative:
                return transition
        # Unreachable, but keeps the type-checker and defensive readers happy.
        return weighted[-1][0]

    @staticmethod
    def _weight(transition: Transition, configuration: Configuration) -> int:
        weight = 1
        for state, needed in transition.pre.items():
            available = configuration[state]
            if available < needed:
                return 0
            weight *= comb(available, needed)
        return weight
