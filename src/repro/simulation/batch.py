"""Parallel batch execution of simulation ensembles.

The convergence experiments rest on ensembles of independent stochastic runs
(:meth:`Simulator.run_many <repro.simulation.simulator.Simulator.run_many>`).
Each repetition is seeded from a master generator and runs independently, so
the ensemble is embarrassingly parallel — this module fans it out over
``multiprocessing`` worker processes while keeping the results **bit-identical
to the serial order**:

* the per-repetition seeds are derived from the master seed up front, before
  any scheduling decision, so neither the backend nor the worker count nor the
  chunking can change which seed a repetition receives,
* repetitions are dispatched to workers in contiguous, index-ordered chunks
  through ``Pool.map``, which returns the chunks in submission order, so the
  flattened result list is in repetition order,
* each worker process unpickles the protocol once (steppers and dense-net
  caches are dropped on pickling and regenerated in the worker — see
  ``CompiledNet.__getstate__``), builds one
  :class:`~repro.simulation.simulator.Simulator`, and reuses one dense counts
  buffer across its whole share of the ensemble.

Entry points:

* :func:`run_ensemble` — functional core: run a list of seeds on a backend,
  building (and tearing down) an ephemeral pool per call,
* :class:`WorkerPool` — the persistent pool itself, decoupled from any one
  protocol: worker processes are created once and **cache one initialized
  simulator per distinct (protocol, scheduler, engine) spec**, so a single
  pool can serve ensembles of many different protocols back to back.  This
  is the fan-out substrate of the sweep harness (:mod:`repro.sweep`), where
  one pool executes every cell of a parameter grid,
* :class:`BatchRunner` — a configured handle (one protocol + backend knobs)
  for repeated ensembles, built on a private :class:`WorkerPool`: the pool
  is created on the first process-backend call with its workers pre-warmed
  on the runner's protocol (unpickled once, steppers / vectorized kernels
  built once), and reused across every subsequent
  :meth:`~BatchRunner.run_many` / :meth:`~BatchRunner.run_seeds` until
  :meth:`~BatchRunner.close` — which a ``with`` block calls automatically.
  Only per-ensemble parameters travel to the workers after the first call,
  so repeated ensembles stop paying pool startup, protocol pickling and
  stepper compilation.

``backend="serial"`` runs the same code path without processes and is the
reference ordering; ``backend="process"`` must agree with it exactly
regardless of pool reuse (the test suite and the E10 experiment both assert
this).
"""

from __future__ import annotations

import multiprocessing
import pickle
import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import default_batch_workers as _default_max_workers
from ..config import monotonic_time
from ..core.configuration import Configuration
from ..core.protocol import Protocol
from ..obs import trace as _obs_trace
from .scheduler import Scheduler
from .simulator import SimulationResult, Simulator
from .trajectory import DEFAULT_TRAJECTORY_CAPACITY

__all__ = [
    "BatchRunner",
    "WorkerCrashError",
    "WorkerPool",
    "WorkerTimeoutError",
    "run_ensemble",
]

_BACKENDS = ("serial", "process")

#: How often the dispatch loop checks a pending ensemble for completion,
#: worker death, or timeout (seconds; uses the monotonic clock).
_POLL_INTERVAL = 0.05
#: After noticing a dead worker, how long to keep waiting for the map to
#: complete anyway — the death may belong to a worker whose tasks already
#: finished (or to pool shutdown races), in which case the results arrive
#: and no error is raised.
_CRASH_GRACE = 0.5


class WorkerCrashError(RuntimeError):
    """A pool worker process died mid-ensemble (its task is unrecoverable).

    ``multiprocessing.Pool`` has no broken-pool detection: a worker killed by
    the OS (OOM, SIGKILL, a segfaulting extension) silently loses its
    in-flight chunk and the ``map`` blocks forever.  The pool dispatch loop
    watches the worker processes instead and raises this typed error, carrying
    the spec and seed context (``protocol_name``, ``seeds``, ``exitcodes``) so
    the sweep claim loop can convert it into a retry-or-park decision for the
    affected cell instead of hanging — or killing — the whole runner.
    """

    def __init__(
        self, protocol_name: str, seeds: Sequence[int], exitcodes: Sequence[int]
    ) -> None:
        self.protocol_name = protocol_name
        self.seeds: Tuple[int, ...] = tuple(seeds)
        self.exitcodes: Tuple[int, ...] = tuple(exitcodes)
        super().__init__(
            f"worker process died (exitcodes {self.exitcodes}) while running "
            f"a {len(self.seeds)}-seed ensemble of protocol "
            f"{protocol_name!r}; the pool was torn down and will be rebuilt "
            "on next use"
        )


class WorkerTimeoutError(RuntimeError):
    """An ensemble exceeded its wall-clock budget and the pool was torn down.

    Hung cells (a livelocked scheduler, a pathological parameter corner)
    would otherwise stall a sweep runner forever; the claim loop treats this
    exactly like a crash: retry the cell with backoff, park it when retries
    are exhausted.  Carries the same ``protocol_name`` / ``seeds`` context as
    :class:`WorkerCrashError` plus the exceeded ``timeout``.
    """

    def __init__(
        self, protocol_name: str, seeds: Sequence[int], timeout: float
    ) -> None:
        self.protocol_name = protocol_name
        self.seeds: Tuple[int, ...] = tuple(seeds)
        self.timeout = float(timeout)
        super().__init__(
            f"ensemble of protocol {protocol_name!r} ({len(self.seeds)} seeds) "
            f"did not finish within {timeout} s; the pool was torn down and "
            "will be rebuilt on next use"
        )

# The default worker count honours the ``REPRO_BATCH_DEFAULT_WORKERS``
# environment override (used by the CI batch smoke job to pin the suite to a
# known degree of parallelism), read through the sanctioned
# :mod:`repro.config` helper.


# ----------------------------------------------------------------------
# Shared option validation, pickling, and chunk planning
# ----------------------------------------------------------------------
def _validate_batch_options(
    backend: str, max_workers: Optional[int], chunk_size: Optional[int]
) -> None:
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r} (expected one of {_BACKENDS})")
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be at least 1, got {max_workers}")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")


def _dumps_for_workers(payload: object) -> bytes:
    """Pickle ``payload`` for transport to worker processes, with a clear error."""
    try:
        return pickle.dumps(payload)
    except (pickle.PicklingError, TypeError, AttributeError) as error:
        raise ValueError(
            "backend='process' requires a picklable protocol and scheduler "
            f"({error}); use backend='serial' instead"
        ) from error


def _validate_analytics(analytics: Any, process_backend: bool) -> None:
    """Reject unusable analytics specs at the call site, not inside a worker.

    The spec must expose ``extract(result, protocol)`` (canonically an
    :class:`~repro.analytics.metrics.AnalyticsSpec`), and under the process
    backend it must pickle — it travels with every task, and an unpicklable
    spec would otherwise surface as an opaque error from the pool machinery.
    """
    if analytics is None:
        return
    if not callable(getattr(analytics, "extract", None)):
        raise ValueError(
            "analytics must provide an extract(result, protocol) method "
            "(use repro.analytics.AnalyticsSpec), got "
            f"{type(analytics).__name__}"
        )
    if process_backend:
        try:
            pickle.dumps(analytics)
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            raise ValueError(
                "backend='process' requires a picklable analytics spec "
                f"({error}); use backend='serial' instead"
            ) from error


def _plan_chunks(
    seeds: Sequence[int], workers: int, chunk_size: Optional[int]
) -> List[Sequence[int]]:
    """Split the seed list into contiguous, index-ordered chunks.

    The default chunk size aims for about four chunks per worker, balancing
    load against dispatch overhead.  Chunking can never change results — only
    how the (pre-derived) seeds are grouped for transport.
    """
    if chunk_size is None:
        chunk_size = max(1, -(-len(seeds) // (workers * 4)))
    return [seeds[i : i + chunk_size] for i in range(0, len(seeds), chunk_size)]


#: Per-process simulator cache keyed by the (protocol, scheduler, engine)
#: spec pickle.  Each worker builds a simulator the first time it sees a spec
#: and reuses it for every later chunk of that spec — persistent pools keep
#: this cache alive across ensembles (and, in a sweep, across grid cells of
#: different protocols), which is the whole point of keeping the pool up.
_WORKER_SIMULATORS: dict = {}


def _worker_simulator(spec_bytes: bytes) -> Simulator:
    """The worker's cached simulator for a spec, built on first sight.

    The spec travels as an explicit pickle blob (not fork-inherited memory) so
    the pickling path is exercised under every multiprocessing start method,
    and each worker compiles the steppers of a given spec exactly once.
    """
    simulator = _WORKER_SIMULATORS.get(spec_bytes)
    if simulator is None:
        protocol, scheduler, engine = pickle.loads(spec_bytes)
        simulator = Simulator(protocol, scheduler=scheduler, engine=engine)
        _WORKER_SIMULATORS[spec_bytes] = simulator
    return simulator


def _initialize_worker(spec_bytes: Optional[bytes]) -> None:
    """Pool initializer: optionally pre-warm the cache with one spec.

    :class:`BatchRunner` and :func:`run_ensemble` serve a single known
    protocol, so their workers build its simulator eagerly at pool startup.
    A bare :class:`WorkerPool` (``spec_bytes=None``) starts cold and builds
    simulators lazily per task instead — errors from an invalid spec then
    surface through ``Pool.map`` rather than crash-looping the initializer.
    """
    if spec_bytes is not None:
        _worker_simulator(spec_bytes)


def _run_worker_task(
    task: Tuple[Any, ...]
) -> Tuple[List[SimulationResult], Optional[List[dict]]]:
    """Run one chunk of seeds on the worker's cached simulator for the spec.

    ``task`` carries the spec alongside the per-ensemble parameters (initial
    configuration, step budget, recording and analytics knobs), the chunk,
    and a tracing flag, so one pool can serve ensembles of different
    protocols and parameters.  With an analytics spec the metric extraction
    happens *here*, in the worker: full trajectory rings are recorded,
    consumed and dropped locally, and only the compact metric dicts travel
    back through the pool.

    Returns ``(results, events)``: when the dispatching process had tracing
    active it sets the task's trace flag, and the worker buffers its span
    events (one ``chunk`` span wrapping per-run ``run`` events) and ships
    them back for the parent to :func:`repro.obs.trace.adopt` — the flag
    travels in the task rather than the environment so programmatic tracing
    propagates under every start method.  ``events`` is ``None`` otherwise.
    """
    (spec_bytes, configuration, seeds, max_steps, stability_window,
     record, capacity, analytics, trace) = task
    simulator = _worker_simulator(spec_bytes)
    if not trace:
        return (
            simulator._run_seeds(
                configuration, list(seeds), max_steps, stability_window,
                record, capacity, analytics,
            ),
            None,
        )
    with _obs_trace.capture_events() as events:
        with _obs_trace.span("chunk", kind="chunk", seeds=len(seeds)):
            results = simulator._run_seeds(
                configuration, list(seeds), max_steps, stability_window,
                record, capacity, analytics,
            )
    return results, events


def _make_tasks(
    spec_bytes: bytes,
    configuration: Configuration,
    chunks: List[Sequence[int]],
    max_steps: int,
    stability_window: int,
    record_trajectory: bool,
    trajectory_capacity: int,
    analytics: Any = None,
    trace: bool = False,
) -> List[tuple]:
    return [
        (spec_bytes, configuration, chunk, max_steps, stability_window,
         record_trajectory, trajectory_capacity, analytics, trace)
        for chunk in chunks
    ]


# ----------------------------------------------------------------------
# The shared persistent pool
# ----------------------------------------------------------------------
class WorkerPool:
    """A persistent worker pool shared across protocols and ensembles.

    The pool engine behind :class:`BatchRunner`, usable on its own wherever
    *one* set of worker processes should serve ensembles of *many* different
    protocols — most prominently the sweep harness (:mod:`repro.sweep`),
    which fans every cell of a (protocol × population × scheduler × engine)
    grid over a single pool.  Each worker process caches one initialized
    :class:`~repro.simulation.simulator.Simulator` per distinct
    ``(protocol, scheduler, engine)`` spec, keyed by the spec's pickle: the
    first chunk of a spec pays protocol unpickling and stepper compilation,
    every later chunk of that spec — whichever ensemble or grid cell it
    belongs to — reuses the cached simulator.

    Results are bit-identical to the serial order for the same seed list:
    the pool only transports pre-derived seeds and returns chunks in
    submission order, exactly like :func:`run_ensemble`.

    Parameters
    ----------
    max_workers:
        Process count (default: the ``REPRO_BATCH_DEFAULT_WORKERS``
        environment override, else the CPU count).
    start_method:
        Optional ``multiprocessing`` start method; ``None`` uses the
        platform default.
    warm_spec_bytes:
        Optional pre-pickled ``(protocol, scheduler, engine)`` spec built
        into every worker at pool startup (used by :class:`BatchRunner`,
        whose single spec is known up front and validated in the parent —
        an invalid spec in the initializer would crash-loop the pool).
        Bare pools start cold and build simulators lazily per task.

    The worker processes are created lazily, on the first :meth:`run_seeds`;
    release them with :meth:`close` or a ``with`` block.  A closed pool
    raises :class:`RuntimeError` on further use.

    **Thread safety.**  The pool is safe for concurrent callers (the
    ``repro.serve`` job server dispatches blocking :meth:`run_seeds` calls
    from several executor threads at once).  Two locks, always acquired in
    the order *dispatch → lifecycle*:

    * a *dispatch* lock serializes whole ensembles — concurrent
      :meth:`run_seeds` calls queue rather than interleave ``map_async``
      dispatches (interleaving was the original race: one caller's crash
      recovery could tear down the pool while another caller's map was in
      flight on it),
    * a *lifecycle* lock serializes pool creation and teardown
      (:meth:`_ensure_pool` / :meth:`_abandon_pool` / :meth:`close` /
      :meth:`terminate`), so a lazily-building caller can never observe a
      half-built or half-torn-down ``multiprocessing`` pool.

    :meth:`close` takes the dispatch lock first and therefore *waits* for an
    in-flight ensemble to finish (a graceful drain); :meth:`terminate`
    deliberately does not — it is the kill switch and only takes the
    lifecycle lock.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        start_method: Optional[str] = None,
        warm_spec_bytes: Optional[bytes] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        self.workers = (
            max_workers if max_workers is not None else _default_max_workers()
        )
        self.start_method = start_method
        self._warm_spec_bytes = warm_spec_bytes
        self._pool = None
        self._closed = False
        # Lock order: dispatch before lifecycle (see the class docstring).
        self._dispatch_lock = threading.Lock()
        self._lifecycle_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called (the pool is spent)."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "WorkerPool is closed; construct a new pool for further ensembles"
            )

    def _ensure_pool(self) -> Any:
        with self._lifecycle_lock:
            if self._pool is None:
                context = multiprocessing.get_context(self.start_method)
                self._pool = context.Pool(
                    processes=self.workers,
                    initializer=_initialize_worker,
                    initargs=(self._warm_spec_bytes,),
                )
            return self._pool

    def close(self) -> None:
        """Shut down the worker processes and mark the pool spent (idempotent).

        Waits for an in-flight ensemble (the dispatch lock) before tearing
        down — a concurrent :meth:`run_seeds` completes normally rather than
        losing its workers mid-map.
        """
        with self._dispatch_lock:
            with self._lifecycle_lock:
                if self._pool is not None:
                    self._pool.close()
                    self._pool.join()
                    self._pool = None
                self._closed = True

    def terminate(self) -> None:
        """Kill the worker processes without waiting for in-flight tasks."""
        with self._lifecycle_lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
            self._closed = True

    def _abandon_pool(self) -> None:
        """Tear down a compromised pool but keep this :class:`WorkerPool` open.

        Called when a worker died or an ensemble timed out: the underlying
        ``multiprocessing`` pool (whose result queues may reference lost
        tasks) is terminated, and the *next* :meth:`run_seeds` lazily builds
        a fresh one — the containment contract the sweep claim loop relies
        on, where one crashed cell must not spend the runner's pool.
        """
        with self._lifecycle_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:  # pragma: no cover - platform-dependent teardown
                pass

    def __enter__(self) -> "WorkerPool":
        self._check_open()
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Ensembles
    # ------------------------------------------------------------------
    def run_seeds(
        self,
        protocol: Protocol,
        inputs: Configuration,
        seeds: Sequence[int],
        scheduler: Optional[Scheduler] = None,
        engine: str = "auto",
        max_steps: int = 100000,
        stability_window: int = 200,
        chunk_size: Optional[int] = None,
        record_trajectory: bool = False,
        trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
        analytics: Any = None,
        spec_bytes: Optional[bytes] = None,
        timeout: Optional[float] = None,
    ) -> List[SimulationResult]:
        """Run one repetition per seed over the pool (index-aligned results).

        ``analytics`` optionally ships a metric-extraction spec (see
        :class:`~repro.analytics.metrics.AnalyticsSpec`) to the workers:
        each result comes back with a compact ``result.analytics`` dict,
        extracted in the worker so the full trajectory rings never cross the
        pool.  ``spec_bytes`` optionally supplies the pre-pickled
        ``(protocol, scheduler, engine)`` spec, letting repeat callers (the
        :class:`BatchRunner` fast path, the sweep runner's per-cell-group
        cache) skip re-pickling — and guaranteeing the worker-side cache key
        is byte-stable across calls.

        ``timeout`` bounds the whole ensemble in wall-clock seconds
        (monotonic clock — a budget, never a simulation input): on expiry
        the pool is torn down and :class:`WorkerTimeoutError` raised.  A
        worker process dying mid-ensemble likewise raises
        :class:`WorkerCrashError` instead of blocking forever.  After either
        error the :class:`WorkerPool` remains usable — the next call builds
        fresh worker processes.

        Safe to call from multiple threads: concurrent ensembles queue on
        the pool's dispatch lock and execute one after another (see the
        class docstring), each bit-identical to its own serial run.
        """
        self._check_open()
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        if record_trajectory and trajectory_capacity < 1:
            raise ValueError("trajectory_capacity must be at least 1")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        _validate_analytics(analytics, process_backend=True)
        seeds = list(seeds)
        configuration = protocol.initial_configuration(inputs)
        if not seeds:
            # An empty ensemble must agree with the serial backend, which
            # constructs a Simulator before noticing there is nothing to do:
            # validate the spec (engine name, scheduler compatibility) the
            # same way instead of silently returning for a combination every
            # non-empty call would reject.
            Simulator(protocol, scheduler=scheduler, engine=engine)
            return []
        if spec_bytes is None:
            spec_bytes = _dumps_for_workers((protocol, scheduler, engine))
        # Chunk for the effective parallelism of this ensemble; the pool may
        # hold more workers than there are seeds.
        effective = max(1, min(self.workers, len(seeds)))
        chunks = _plan_chunks(seeds, effective, chunk_size)
        tracing = _obs_trace.tracing_active()
        tasks = _make_tasks(
            spec_bytes, configuration, chunks, max_steps, stability_window,
            record_trajectory, trajectory_capacity, analytics, trace=tracing,
        )
        with _obs_trace.span(
            "dispatch", kind="dispatch", chunks=len(tasks), workers=self.workers
        ) as dispatch_span:
            lock_t0 = monotonic_time() if tracing else 0.0
            with self._dispatch_lock:
                if tracing:
                    # Queue-wait behind concurrent ensembles (serve threads,
                    # sweep cells) vs time actually spent in the map.
                    dispatch_span.set(lock_wait=monotonic_time() - lock_t0)
                # Re-check under the lock: a close() that won the lock first
                # has already drained and spent the pool.
                self._check_open()
                chunk_results = self._await_map(
                    tasks, timeout, protocol.name or "protocol", seeds
                )
            if tracing:
                # Chunks return in submission (= seed) order, so adopted
                # worker events land in exactly the serial emission order.
                for _, events in chunk_results:
                    if events:
                        _obs_trace.adopt(events, parent=dispatch_span.id)
        return [result for chunk, _ in chunk_results for result in chunk]

    def _await_map(
        self,
        tasks: List[tuple],
        timeout: Optional[float],
        protocol_name: str,
        seeds: Sequence[int],
    ) -> List[Tuple[List[SimulationResult], Optional[List[dict]]]]:
        """Dispatch tasks and await them under crash and timeout watch.

        A plain ``Pool.map`` would block forever if a worker process dies
        (its in-flight chunk is silently lost — ``multiprocessing.Pool`` has
        no broken-pool signal) and has no overall deadline.  This loop polls
        the async result, a snapshot of the worker processes, and the
        monotonic clock; on worker death or deadline expiry it abandons the
        pool (see :meth:`_abandon_pool`) and raises the typed error.

        The pool replenishes dead workers automatically, which is why the
        watch runs over a *snapshot* taken at dispatch: a snapshot worker
        with a non-``None`` exitcode died while our tasks were (potentially)
        in flight, no matter what replaced it.
        """
        pool = self._ensure_pool()
        workers = list(getattr(pool, "_pool", []))
        pending = pool.map_async(_run_worker_task, tasks)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            pending.wait(_POLL_INTERVAL)
            if pending.ready():
                return list(pending.get())
            exitcodes = [
                worker.exitcode
                for worker in workers
                if worker.exitcode is not None
            ]
            if exitcodes:
                # The death may be harmless (its chunks already returned);
                # give the map a short grace to complete before declaring
                # the ensemble lost.
                pending.wait(_CRASH_GRACE)
                if pending.ready():
                    return list(pending.get())
                self._abandon_pool()
                raise WorkerCrashError(protocol_name, seeds, exitcodes)
            if deadline is not None and time.monotonic() >= deadline:
                self._abandon_pool()
                raise WorkerTimeoutError(
                    protocol_name, seeds, timeout if timeout is not None else 0.0
                )

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "pool up" if self._pool is not None else "pool pending"
        )
        return f"WorkerPool(workers={self.workers}, {state})"


# ----------------------------------------------------------------------
# Ensemble execution
# ----------------------------------------------------------------------
def run_ensemble(
    protocol: Protocol,
    inputs: Configuration,
    seeds: Sequence[int],
    scheduler: Optional[Scheduler] = None,
    engine: str = "auto",
    max_steps: int = 100000,
    stability_window: int = 200,
    backend: str = "serial",
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    start_method: Optional[str] = None,
    record_trajectory: bool = False,
    trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
    analytics: Any = None,
    _serial_simulator: Optional[Simulator] = None,
) -> List[SimulationResult]:
    """Run one independent repetition per seed and return them in seed order.

    Parameters
    ----------
    protocol, scheduler, engine:
        As for :class:`~repro.simulation.simulator.Simulator`.  Schedulers
        must not carry mutable state across runs (the built-ins are
        stateless): the serial backend reuses one instance for every
        repetition while each worker process runs on a freshly unpickled
        copy, so cross-repetition scheduler state would silently break the
        bit-identical guarantee.
    inputs:
        Input configuration; every repetition starts from
        ``protocol.initial_configuration(inputs)``.
    seeds:
        One RNG seed per repetition.  The result list is index-aligned with
        this sequence regardless of backend, worker count, or chunking.
    backend:
        ``"serial"`` runs in-process; ``"process"`` fans the seeds out over a
        ``multiprocessing`` pool.  Both orderings are bit-identical.
    max_workers:
        Process count for the ``"process"`` backend (default: the
        ``REPRO_BATCH_DEFAULT_WORKERS`` environment override, else the CPU
        count).  Clamped to the number of repetitions; must be at least 1.
    chunk_size:
        Seeds per task handed to a worker (default: ensemble split into about
        four chunks per worker, balancing load against dispatch overhead).
    start_method:
        Optional ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.
    record_trajectory, trajectory_capacity:
        As for :meth:`Simulator.run <repro.simulation.simulator.Simulator.run>`;
        recorded trajectories are returned with the results across the process
        boundary.
    analytics:
        Optional metric-extraction spec (see
        :class:`~repro.analytics.metrics.AnalyticsSpec`): each result gains a
        compact ``result.analytics`` dict, extracted in the worker under
        ``backend="process"`` so only the metrics — never the trajectory
        rings — cross the pool.  Extraction is deterministic, so both
        backends return identical metric dicts.

    This functional entry point builds an ephemeral pool per call; use
    :class:`BatchRunner` to amortize pool construction over repeated
    ensembles.
    """
    _validate_batch_options(backend, max_workers, chunk_size)
    if record_trajectory and trajectory_capacity < 1:
        # _run_seeds enters the engines below _dispatch's own validation, and
        # under backend="process" a late failure would surface from inside a
        # pool worker; reject the bad argument here, at the call site.
        raise ValueError("trajectory_capacity must be at least 1")
    _validate_analytics(analytics, process_backend=(backend == "process"))

    seeds = list(seeds)
    if backend == "serial" or not seeds:
        simulator = _serial_simulator
        if simulator is None:
            simulator = Simulator(protocol, scheduler=scheduler, engine=engine)
        configuration = protocol.initial_configuration(inputs)
        with _obs_trace.span(
            "ensemble", kind="ensemble",
            reps=len(seeds), engine=engine, backend="serial",
        ):
            return simulator._run_seeds(
                configuration, seeds, max_steps, stability_window,
                record_trajectory, trajectory_capacity, analytics,
            )

    if _serial_simulator is None:
        # Validate the (protocol, scheduler, engine) combination in the
        # parent before spawning anything: a Simulator constructor error
        # inside the pool initializer would crash every worker, and
        # multiprocessing responds by respawning them forever instead of
        # surfacing the exception.  A caller-supplied simulator already
        # proves the combination valid.
        Simulator(protocol, scheduler=scheduler, engine=engine)
    workers = max_workers if max_workers is not None else _default_max_workers()
    workers = max(1, min(workers, len(seeds)))
    spec_bytes = _dumps_for_workers((protocol, scheduler, engine))
    with _obs_trace.span(
        "ensemble", kind="ensemble",
        reps=len(seeds), engine=engine, backend="process",
    ), WorkerPool(
        max_workers=workers, start_method=start_method, warm_spec_bytes=spec_bytes
    ) as pool:
        return pool.run_seeds(
            protocol,
            inputs,
            seeds,
            scheduler=scheduler,
            engine=engine,
            max_steps=max_steps,
            stability_window=stability_window,
            chunk_size=chunk_size,
            record_trajectory=record_trajectory,
            trajectory_capacity=trajectory_capacity,
            analytics=analytics,
            spec_bytes=spec_bytes,
        )


class BatchRunner:
    """A configured handle for repeated parallel ensembles.

    The batch analogue of constructing a :class:`Simulator`: fix the protocol,
    scheduler, engine and backend once, then call :meth:`run_many` per
    ensemble.  Every ensemble derives its per-repetition seeds from the given
    master seed exactly like ``Simulator.run_many`` does, so for the same
    ``(protocol, inputs, seed)`` the three spellings agree bit for bit::

        Simulator(p, seed=s).run_many(x, n)                      # serial
        Simulator(p, seed=s).run_many(x, n, backend="process")   # parallel
        with BatchRunner(p) as r:
            r.run_many(x, n, seed=s)                             # parallel

    Parameters mirror :func:`run_ensemble`; ``backend`` defaults to
    ``"process"`` since a serial ensemble is what ``Simulator.run_many``
    already provides.

    **Pool lifecycle.**  The worker pool is created lazily on the first
    process-backend ensemble and then kept alive: workers keep their
    unpickled protocol, built steppers / vectorized kernels, and dense counts
    buffers, so a second :meth:`run_many` pays none of the startup cost
    again.  Release the processes with :meth:`close` (idempotent), or use the
    runner as a context manager::

        with BatchRunner(protocol, max_workers=4) as runner:
            first = runner.run_many(inputs, 64, seed=1)
            second = runner.run_many(inputs, 64, seed=2)   # reuses the pool

    After :meth:`close` the runner is spent: further ensembles (and
    re-entering the ``with`` block) raise :class:`RuntimeError` — construct a
    new runner instead.  Serial runners hold no processes; their
    :meth:`close` only marks the runner spent.  Pool reuse cannot change
    results: the per-repetition seeds are derived before dispatch and chunks
    return in submission order, so a persistent pool, an ephemeral pool and
    the serial loop all produce bit-identical ensembles.
    """

    def __init__(
        self,
        protocol: Protocol,
        scheduler: Optional[Scheduler] = None,
        engine: str = "auto",
        backend: str = "process",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        _validate_batch_options(backend, max_workers, chunk_size)
        # Fail fast: validate scheduler/engine compatibility (by building a
        # simulator in-process) and, for the process backend, that the workers
        # could actually receive the protocol and scheduler.  The simulator is
        # kept: serial ensembles run on it — reusing its compiled stepper /
        # vectorized kernels and counts buffer across calls, so back-to-back
        # run_many calls recompile nothing — and process ensembles use it as
        # proof that the worker initializer cannot fail.
        self._simulator = Simulator(protocol, scheduler=scheduler, engine=engine)
        self._spec_bytes: Optional[bytes] = None
        if backend == "process":
            # Pickled once and reused for every ensemble: the transport blob
            # doubles as the worker-side simulator-cache key, so keeping it
            # byte-stable guarantees every chunk of every ensemble hits the
            # same cached simulator.
            self._spec_bytes = _dumps_for_workers((protocol, scheduler, engine))
        self.protocol = protocol
        self.scheduler = scheduler
        self.engine = engine
        self.backend = backend
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.start_method = start_method
        self._pool = None
        self._pool_workers: Optional[int] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """True once :meth:`close` has been called (the runner is spent)."""
        return self._closed

    def _ensure_pool(self) -> WorkerPool:
        """The persistent worker pool, created on first use.

        Sized from ``max_workers`` (or the environment/CPU default) rather
        than the first ensemble's repetition count, so a later, larger
        ensemble still gets the full parallelism.  The pool's workers are
        pre-warmed on this runner's spec (the parent simulator built in the
        constructor proves the spec cannot crash the initializer).
        """
        if self._pool is None:
            self._pool = WorkerPool(
                max_workers=self.max_workers,
                start_method=self.start_method,
                warm_spec_bytes=self._spec_bytes,
            )
            self._pool_workers = self._pool.workers
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool and mark the runner spent.

        Idempotent: closing twice (or closing a runner that never built a
        pool) is a no-op.  Subsequent ensembles raise :class:`RuntimeError`.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._pool_workers = None
        self._closed = True

    def __enter__(self) -> "BatchRunner":
        if self._closed:
            raise RuntimeError(
                "BatchRunner is closed; construct a new runner to re-enter"
            )
        return self

    def __exit__(self, exc_type: Any, exc_value: Any, traceback: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        # Safety net for runners abandoned without close(); deterministic
        # cleanup is the caller's job (close() or the context manager).
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.terminate()
            except Exception:
                pass

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "BatchRunner is closed; construct a new runner for further "
                "ensembles"
            )

    # ------------------------------------------------------------------
    # Ensembles
    # ------------------------------------------------------------------
    def run_many(
        self,
        inputs: Configuration,
        repetitions: int,
        seed: Optional[int] = None,
        max_steps: int = 100000,
        stability_window: int = 200,
        record_trajectory: bool = False,
        trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
        analytics: Any = None,
    ) -> List[SimulationResult]:
        """Run ``repetitions`` independent executions seeded from ``seed``."""
        if repetitions < 0:
            raise ValueError(f"repetitions must be non-negative, got {repetitions}")
        master = random.Random(seed)
        seeds = [master.getrandbits(64) for _ in range(repetitions)]
        return self.run_seeds(
            inputs,
            seeds,
            max_steps=max_steps,
            stability_window=stability_window,
            record_trajectory=record_trajectory,
            trajectory_capacity=trajectory_capacity,
            analytics=analytics,
        )

    def run_seeds(
        self,
        inputs: Configuration,
        seeds: Sequence[int],
        max_steps: int = 100000,
        stability_window: int = 200,
        record_trajectory: bool = False,
        trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
        analytics: Any = None,
    ) -> List[SimulationResult]:
        """Run one repetition per explicit seed (index-aligned results).

        With ``analytics`` each result carries a compact metric dict
        (``result.analytics``), extracted inside the workers on the process
        backend so trajectory rings never cross the pool.
        """
        self._check_open()
        if record_trajectory and trajectory_capacity < 1:
            raise ValueError("trajectory_capacity must be at least 1")
        _validate_analytics(analytics, process_backend=(self.backend == "process"))
        seeds = list(seeds)
        configuration = self.protocol.initial_configuration(inputs)
        if self.backend == "serial" or not seeds:
            with _obs_trace.span(
                "ensemble", kind="ensemble",
                reps=len(seeds), engine=self.engine, backend="serial",
            ):
                return self._simulator._run_seeds(
                    configuration, seeds, max_steps, stability_window,
                    record_trajectory, trajectory_capacity, analytics,
                )
        with _obs_trace.span(
            "ensemble", kind="ensemble",
            reps=len(seeds), engine=self.engine, backend=self.backend,
        ):
            return self._ensure_pool().run_seeds(
                self.protocol,
                inputs,
                seeds,
                scheduler=self.scheduler,
                engine=self.engine,
                max_steps=max_steps,
                stability_window=stability_window,
                chunk_size=self.chunk_size,
                record_trajectory=record_trajectory,
                trajectory_capacity=trajectory_capacity,
                analytics=analytics,
                spec_bytes=self._spec_bytes,
            )

    def __repr__(self) -> str:
        workers = self.max_workers if self.max_workers is not None else "auto"
        state = "closed" if self._closed else (
            "pool up" if self._pool is not None else "pool pending"
        )
        return (
            f"BatchRunner({self.protocol.name or 'protocol'}, backend={self.backend!r}, "
            f"max_workers={workers}, {state})"
        )
