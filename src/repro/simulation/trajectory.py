"""Opt-in trajectory recording for simulation runs.

Simulation results normally summarize a run (final configuration, consensus,
step counts).  Convergence experiments sometimes need the *path* as well:
which transitions fired, in which order.  Re-running the ensemble on the
sparse reference engine just to observe paths would forfeit the compiled
engine's speedup, so both engines can instead record the fired transition
indices into a **bounded ring buffer** while they run:

* recording is opt-in (``record_trajectory=True`` on the run methods) and
  costs one list store per interaction,
* the buffer holds the **last** ``trajectory_capacity`` fired transition
  indices; earlier ones are overwritten (and counted in
  :attr:`Trajectory.dropped`), so memory stays bounded no matter the step
  budget,
* the recorded indices refer to :attr:`PetriNet.transitions
  <repro.core.petrinet.PetriNet.transitions>` order — the same order the
  compiled engine numbers transitions — so a complete trajectory can be
  replayed on the net and must land on the run's final configuration
  (the test suite asserts this for both engines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.configuration import Configuration
from ..core.petrinet import PetriNet
from ..core.transition import Transition

__all__ = ["DEFAULT_TRAJECTORY_CAPACITY", "Trajectory"]

#: Default ring-buffer size: large enough for typical convergence runs to be
#: complete, small enough that a 64-repetition ensemble stays in the megabytes.
DEFAULT_TRAJECTORY_CAPACITY = 65536


@dataclass(frozen=True)
class Trajectory:
    """The (suffix of the) sequence of transitions fired during one run.

    ``transition_indices`` are indices into the net's transition tuple, in
    firing order.  When the run fired more than ``capacity`` transitions the
    sequence is truncated to the **last** ``capacity`` of them and
    :attr:`dropped` reports how many earlier firings were overwritten.
    """

    transition_indices: Tuple[int, ...]
    total_fired: int
    capacity: int

    @classmethod
    def from_ring(
        cls,
        ring: Sequence[int],
        total_fired: int,
        capacity: int,
        reported_capacity: Optional[int] = None,
    ) -> "Trajectory":
        """Decode a ring buffer written in firing order with wrap-around.

        ``ring`` is the raw buffer of size ``capacity``; ``total_fired`` is the
        number of entries ever written.  The oldest surviving entry sits at
        ``total_fired % capacity`` once the buffer has wrapped.
        ``reported_capacity`` overrides the :attr:`capacity` stamped on the
        result, for callers whose physical buffer is clamped below the
        capacity the user requested (the compiled engine caps it at
        ``max_steps``, which cannot change the surviving suffix).
        """
        if total_fired <= capacity:
            indices = tuple(ring[:total_fired])
        else:
            position = total_fired % capacity
            indices = tuple(ring[position:]) + tuple(ring[:position])
        return cls(
            transition_indices=indices,
            total_fired=total_fired,
            capacity=capacity if reported_capacity is None else reported_capacity,
        )

    @property
    def dropped(self) -> int:
        """How many early firings the ring buffer overwrote."""
        return self.total_fired - len(self.transition_indices)

    @property
    def is_complete(self) -> bool:
        """True if every fired transition survived (no ring overwrites)."""
        return self.dropped == 0

    def transitions(self, net: PetriNet) -> List[Transition]:
        """Resolve the recorded indices against ``net``'s transition order."""
        transitions = net.transitions
        return [transitions[index] for index in self.transition_indices]

    def replay(self, net: PetriNet, initial: Configuration) -> Configuration:
        """Fire the recorded word from ``initial`` and return the result.

        Only valid for complete trajectories: a truncated one lost its prefix,
        so the surviving suffix is generally not firable from ``initial``.
        """
        if not self.is_complete:
            raise ValueError(
                f"cannot replay a truncated trajectory ({self.dropped} of "
                f"{self.total_fired} firings were dropped by the ring buffer); "
                "record with a larger trajectory_capacity"
            )
        return net.fire_word(initial, self.transitions(net))

    def __len__(self) -> int:
        return len(self.transition_indices)

    def __iter__(self) -> Iterator[int]:
        return iter(self.transition_indices)

    def __repr__(self) -> str:
        return (
            f"Trajectory(recorded={len(self.transition_indices)}, "
            f"total_fired={self.total_fired}, dropped={self.dropped})"
        )
