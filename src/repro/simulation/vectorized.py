"""NumPy-vectorized simulation engine for large nets.

The compiled engine (:mod:`repro.simulation.compiled`) unrolls one
straight-line dispatch branch per transition, which is unbeatable for the
small nets of the named protocols but degrades linearly in ``|T|``: every
step walks an ``if``/``elif`` chain of Python comparisons, so beyond a few
hundred transitions the generated code spends most of its time dispatching —
exactly the regime of the paper's succinct-counting constructions, whose
state and transition counts grow with the counted threshold.  Worse, merely
*generating* the stepper for a few thousand transitions means compiling
hundreds of thousands of source lines.

:class:`VectorizedNet` keeps the compiled engine's dense mapping (it is a
:class:`~repro.simulation.compiled.CompiledNet` subclass) but replaces code
generation with array kernels:

* the configuration lives in a dense ``int64`` counts vector,
* the uniform scheduler maintains a full ``int64`` weights vector; transition
  selection is one ``cumsum`` + ``searchsorted`` instead of an unrolled
  branch chain,
* after firing transition ``t`` only the weights of ``affected[t]`` are
  recomputed, through a precomputed flattened CSR *update plan* (the
  pre-entries of every affected transition concatenated, with segment
  boundaries for ``np.multiply.reduceat``) — the same incremental-scheduling
  idea as the compiled engine, vectorized,
* the transition scheduler maintains an enabledness vector the same way
  (``np.bitwise_and.reduceat`` over the update plan).

The engine consumes the random stream with the exact discipline of the
reference and compiled engines — one ``rng.randrange(total)`` per uniform
step, one ``rng.choice(enabled)`` per transition-scheduler step, in the same
transition order — so for a fixed ``(protocol, inputs, seed)`` all three
engines produce bit-identical trajectories; the test suite asserts this
three ways.  Consensus stays O(1) via the same maintained output-class
counters, and ``record_trajectory=True`` writes the same ring buffer.

Counts and scheduler weights are held in ``int64``.  Runs whose populations
could make the scheduler-weight total overflow int64 are rejected up front
with :class:`OverflowError` by a conservative static guard (roughly:
population below ``((2**63 - 1) / |T|) ** (1 / max_pre_multiplicity_sum)``,
e.g. ~6e7 agents for a width-2 net with 1000 transitions) — far beyond any
practical simulation, but the compiled engine (arbitrary-precision Python
integers) remains available for such extremes.

NumPy is an optional dependency (the ``sim`` extra).  This module imports
without it; constructing a :class:`VectorizedNet` (or asking for
``engine="numpy"``) raises a clear :class:`ImportError`, and
``engine="auto"`` simply skips the vectorized path.
"""

from __future__ import annotations

from math import factorial
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import random

from ..core.configuration import State
from ..core.petrinet import PetriNet
from .compiled import CompiledNet, Stepper, StepperFn, check_kind

try:  # pragma: no cover - exercised through both CI jobs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

__all__ = ["KernelStepper", "VectorizedNet", "numpy_available", "require_numpy"]

_NUMPY_HINT = (
    "the NumPy simulation engine (engine='numpy') requires numpy, which is "
    "not installed; install the optional 'sim' extra "
    "(pip install 'repro-leroux-podc22[sim]') or use engine='auto' / "
    "engine='compiled'"
)


def numpy_available() -> bool:
    """True if NumPy is importable (the vectorized engine can be used)."""
    return _np is not None


def require_numpy() -> Any:
    """Return the numpy module or raise a clear ImportError."""
    if _np is None:
        raise ImportError(_NUMPY_HINT)
    return _np


class KernelStepper:
    """A kernel-backed stepper: array programs instead of generated source.

    The NumPy engine's counterpart of
    :class:`~repro.simulation.compiled.GeneratedStepper`, satisfying the same
    :class:`~repro.simulation.compiled.Stepper` protocol: :meth:`source`
    returns ``None`` (there is no emitted code to audit — the codegen auditor
    checks the kernel *plan structures* instead) and :attr:`qa_meta` names
    the kernel implementation so audits can tell the variants apart.
    """

    def __init__(self, fn: StepperFn, qa_meta: Dict[str, object]) -> None:
        self._fn = fn
        self.qa_meta = qa_meta

    def __call__(self, *args: Any, **kwargs: Any) -> Tuple[int, int, int, bool]:
        return self._fn(*args, **kwargs)

    def source(self) -> Optional[str]:
        """Kernel-backed steppers have no generated source (audit the plans)."""
        return None

    def __repr__(self) -> str:
        return f"KernelStepper({self.qa_meta.get('label', '?')})"


class VectorizedNet(CompiledNet):
    """A Petri net compiled to dense indices plus NumPy kernel structures.

    Shares the dense state indexing, ``pre``/``delta`` tuples,
    incremental-scheduling ``affected`` map, output classification and
    consensus-delta machinery of :class:`CompiledNet`, and adds:

    * global CSR views of the preconditions (``_pre_states`` / ``_pre_mults``
      / segment starts) for the full weight/enabledness computation at run
      start,
    * one *update plan* per transition: the flattened pre-entries of every
      transition in ``affected[t]``, so a firing recomputes exactly those
      weights with a handful of array operations.

    Instances pickle cleanly (the plans are plain arrays; cached stepper
    closures are dropped exactly like the compiled steppers), so batch worker
    processes rebuild nothing but the closures.
    """

    def __init__(self, net: PetriNet, extra_states: Iterable[State] = ()) -> None:
        np = require_numpy()
        super().__init__(net, extra_states=extra_states)

        num_transitions = self.num_transitions
        pre_states = []
        pre_mults = []
        pre_starts = []
        for pre in self.pre_lists:
            pre_starts.append(len(pre_states))
            for index, needed in pre:
                pre_states.append(index)
                pre_mults.append(needed)
        self._max_mult = max(pre_mults, default=1)
        if pre_states:
            # One sentinel entry terminates the global CSR: transitions with
            # an empty pre-set have start == len(entries), which reduceat
            # would reject (and clamping a trailing empty segment's start
            # would split the previous transition's segment).  The sentinel
            # makes every start a valid index; it joins the last non-empty
            # segment, where it is harmless (the weight kernel forces its
            # term to the multiplicative identity, the enabledness kernel's
            # ``counts >= 0`` is always true), and the results of empty
            # segments are overwritten through ``_empty_pre`` regardless.
            pre_states.append(0)
            pre_mults.append(0)
        self._pre_states = np.array(pre_states, dtype=np.intp)
        self._pre_mults = np.array(pre_mults, dtype=np.int64)
        self._pre_divisors = np.array(
            [factorial(needed) for needed in pre_mults], dtype=np.int64
        )
        self._pre_starts = np.array(pre_starts, dtype=np.intp)
        self._empty_pre = np.array(
            [not pre for pre in self.pre_lists], dtype=bool
        )
        # Static int64-overflow guard inputs (see the uniform stepper): a
        # transition's weight is a product of at most ``_max_weight_factors``
        # state counts (the falling-factorial length, sum of pre
        # multiplicities), and a step can raise a single state count by at
        # most ``_max_positive_delta``.
        self._max_weight_factors = max(
            (sum(needed for _, needed in pre) for pre in self.pre_lists),
            default=1,
        ) or 1
        self._max_positive_delta = max(
            (diff for delta in self.delta_lists for _, diff in delta if diff > 0),
            default=0,
        )
        self._conservative = net.is_conservative()

        # Update plans: for each transition t, the flattened pre-entries of
        # affected[t].  Every affected transition has a non-empty pre-set (a
        # transition with no preconditions reads no state, so no firing can
        # change its weight), hence every reduceat segment is non-empty.
        plans = []
        for t in range(num_transitions):
            delta = self.delta_lists[t]
            delta_idx = np.array([index for index, _ in delta], dtype=np.intp)
            delta_val = np.array([diff for _, diff in delta], dtype=np.int64)
            affected = self.affected[t]
            ent_states = []
            ent_mults = []
            seg_starts = []
            for u in affected:
                seg_starts.append(len(ent_states))
                for index, needed in self.pre_lists[u]:
                    ent_states.append(index)
                    ent_mults.append(needed)
            plan_max_mult = max(ent_mults, default=1)
            # Fast-path classification: width-2 population protocols have
            # two unit-multiplicity pre-entries per transition, for which the
            # segmented product collapses to one strided multiply.
            seg_sizes = [
                (seg_starts[i + 1] if i + 1 < len(seg_starts) else len(ent_states))
                - seg_starts[i]
                for i in range(len(seg_starts))
            ]
            if plan_max_mult == 1 and seg_sizes and all(size == 2 for size in seg_sizes):
                seg_mode = 2
            elif plan_max_mult == 1 and all(size == 1 for size in seg_sizes):
                seg_mode = 1
            else:
                seg_mode = 0
            plans.append(
                (
                    delta_idx,
                    delta_val,
                    np.array(affected, dtype=np.intp),
                    np.array(ent_states, dtype=np.intp),
                    np.array(ent_mults, dtype=np.int64),
                    np.array(
                        [factorial(needed) for needed in ent_mults],
                        dtype=np.int64,
                    ),
                    np.array(seg_starts, dtype=np.intp),
                    plan_max_mult,
                    seg_mode,
                )
            )
        self._plans = plans
        # Lock-step ensemble tables (repro.simulation.ensemble), built lazily
        # on first ensemble run and dropped on pickling like the steppers.
        self._ensemble_tables: Optional[Any] = None

    def ensemble_tables(self) -> Any:
        """The cached :class:`~repro.simulation.ensemble.EnsembleTables`."""
        if self._ensemble_tables is None:
            from .ensemble import EnsembleTables

            self._ensemble_tables = EnsembleTables(self)
        return self._ensemble_tables

    def __getstate__(self) -> Dict[str, object]:
        """Additionally drop the ensemble tables: they are derived arrays,
        cheap to rebuild and bulky to ship to batch workers."""
        state = super().__getstate__()
        state["_ensemble_tables"] = None
        return state

    def __repr__(self) -> str:
        return f"VectorizedNet(|P|={self.num_states}, |T|={self.num_transitions})"

    # ------------------------------------------------------------------
    # Vector kernels
    # ------------------------------------------------------------------
    def _binomials(self, values: Any, mults: Any, divisors: Any, max_mult: int) -> Any:
        """Elementwise ``C(values, mults)``, exact in int64.

        ``C(c, k) = c (c-1) ... (c-k+1) / k!``; the falling factorial passes
        through zero whenever ``0 <= c < k``, so disabled entries come out 0
        without a branch.
        """
        if max_mult == 1:
            return values
        terms = values.copy()
        for j in range(1, max_mult):
            mask = mults > j
            terms[mask] *= values[mask] - j
        terms //= divisors
        return terms

    def full_weights(self, counts_array: Any) -> Any:
        """The uniform-scheduler weight of every transition, as int64."""
        np = _np
        if self.num_transitions == 0:
            return np.zeros(0, dtype=np.int64)
        if self._pre_states.size == 0:
            return np.ones(self.num_transitions, dtype=np.int64)
        terms = self._binomials(
            counts_array[self._pre_states],
            self._pre_mults,
            self._pre_divisors,
            self._max_mult,
        )
        terms[-1] = 1  # the CSR sentinel: multiplicative identity
        weights = np.multiply.reduceat(terms, self._pre_starts)
        weights[self._empty_pre] = 1
        return weights

    def check_weight_overflow(self, counts: Sequence[int], max_steps: int) -> None:
        """Static int64-overflow guard shared by the uniform-kind engines.

        A transition's weight is a product of at most ``_max_weight_factors``
        state counts, every state count stays below ``count_bound`` for the
        whole run (counts can only grow by ``_max_positive_delta`` per step),
        so every weight stays below ``count_bound ** factors`` and the weight
        total below ``num_transitions * count_bound ** factors``.  Requiring
        ``count_bound < 2 ** limit_bits`` with ``limit_bits * factors +
        bit_length(num_transitions) <= 63`` therefore keeps every partial sum
        of the int64 weight vectors exact — int64 arithmetic would otherwise
        wrap silently rather than raise.  The bound must be computed in
        Python integers, before any int64 conversion: an int64 sum of an
        astronomical population would itself wrap and bypass the guard.
        Raises :class:`OverflowError` for populations/step budgets beyond the
        guard; both the per-run uniform stepper and the lock-step ensemble
        engine (:mod:`repro.simulation.ensemble`) call this up front, so the
        two reject exactly the same runs.
        """
        num_transitions = self.num_transitions
        factors = self._max_weight_factors
        limit_bits = max(
            0, (63 - max(1, num_transitions).bit_length()) // factors
        )
        if self._conservative:
            # Conservative nets keep the population invariant, so the total
            # is a lifetime bound on every state count.
            count_bound = sum(counts)
        else:
            count_bound = max(counts, default=0)
            count_bound += max_steps * self._max_positive_delta
        if count_bound > 0 and (count_bound >> limit_bits) > 0:
            raise OverflowError(
                "population or step budget too large for the int64 NumPy "
                f"engine (state counts may reach {count_bound} over "
                f"{max_steps} steps, risking scheduler-weight overflow "
                f"on {num_transitions} transitions); use "
                "engine='compiled', which computes weights in "
                "arbitrary-precision Python integers"
            )

    def full_enabled(self, counts_array: Any) -> Any:
        """The enabledness of every transition, as a bool vector."""
        np = _np
        if self.num_transitions == 0:
            return np.zeros(0, dtype=bool)
        if self._pre_states.size == 0:
            return np.ones(self.num_transitions, dtype=bool)
        # The trailing CSR sentinel has multiplicity 0, so its ``>=`` term is
        # always true and cannot disable the segment it joins.
        ok = counts_array[self._pre_states] >= self._pre_mults
        enabled = np.bitwise_and.reduceat(ok, self._pre_starts)
        enabled[self._empty_pre] = True
        return enabled

    # ------------------------------------------------------------------
    # Steppers
    # ------------------------------------------------------------------
    def stepper(self, kind: str, classes: Tuple[int, ...], record: bool = False) -> Stepper:
        """A :class:`KernelStepper` with the exact signature and semantics of
        the compiled steppers (see :meth:`CompiledNet.stepper`), implemented
        with NumPy kernels instead of generated code, and dropped on pickling
        the same way.  Unlike the compiled engine there is no separate
        recording variant — the kernels branch on ``ring is None`` at runtime
        — so the cache key ignores ``record`` and both spellings share one
        stepper.
        """
        check_kind(kind)
        key = (kind, tuple(classes), False)
        stepper = self._steppers.get(key)
        if stepper is None:
            if kind == "uniform":
                fn = self._make_uniform_stepper(key[1])
            else:
                fn = self._make_transition_stepper(key[1])
            label = f"{self.net.name or 'net'}/{kind}"
            stepper = KernelStepper(
                fn,
                {
                    "label": label,
                    "kind": kind,
                    "record": None,  # one kernel serves both variants
                    "num_transitions": self.num_transitions,
                    "implementation": "numpy-kernels",
                },
            )
            self._steppers[key] = stepper
        return stepper

    def _make_uniform_stepper(self, classes: Tuple[int, ...]) -> StepperFn:
        np = _np
        plans = self._plans
        consensus_deltas = self.consensus_deltas(classes)
        num_transitions = self.num_transitions

        def stepper(
            counts: List[int],
            rng: random.Random,
            max_steps: int,
            stability_window: int,
            one: int,
            zero: int,
            undef: int,
            ring: Optional[List[int]] = None,
            capacity: int = 0,
        ) -> Tuple[int, int, int, bool]:
            # Static int64-overflow guard, shared with the ensemble engine.
            self.check_weight_overflow(counts, max_steps)
            arr = np.array(counts, dtype=np.int64)
            weights = self.full_weights(arr)
            randrange = rng.randrange
            if undef == 0:
                consensus_value = 0 if one == 0 else (1 if zero == 0 else -1)
            else:
                consensus_value = -1
            consensus_since = 0 if consensus_value >= 0 else -1
            step = 0
            terminated = False
            position = 0
            while step < max_steps:
                if num_transitions:
                    cumulative = weights.cumsum()
                    total = int(cumulative[-1])
                else:
                    total = 0
                if total <= 0:
                    terminated = True
                    break
                pick = randrange(total)
                step += 1
                # First index whose cumulative weight exceeds pick: identical
                # to the reference scheduler's scan (zero-weight transitions
                # contribute nothing, so they can never be selected).
                t = int(cumulative.searchsorted(pick, side="right"))
                if ring is not None:
                    ring[position] = t
                    position += 1
                    if position == capacity:
                        position = 0
                (
                    delta_idx, delta_val, affected,
                    ent_states, ent_mults, ent_divisors, seg_starts,
                    plan_max_mult, seg_mode,
                ) = plans[t]
                if delta_idx.size:
                    arr[delta_idx] += delta_val
                if affected.size:
                    values = arr[ent_states]
                    if seg_mode == 2:
                        weights[affected] = values[0::2] * values[1::2]
                    elif seg_mode == 1:
                        weights[affected] = values
                    else:
                        terms = self._binomials(
                            values, ent_mults, ent_divisors, plan_max_mult
                        )
                        weights[affected] = np.multiply.reduceat(terms, seg_starts)
                d_one, d_zero, d_undef = consensus_deltas[t]
                if d_one or d_zero or d_undef:
                    one += d_one
                    zero += d_zero
                    undef += d_undef
                    if undef == 0:
                        value = 0 if one == 0 else (1 if zero == 0 else -1)
                    else:
                        value = -1
                    if value != consensus_value:
                        consensus_value = value
                        consensus_since = step if value >= 0 else -1
                if consensus_value >= 0 and step - consensus_since >= stability_window:
                    break
            counts[:] = arr.tolist()
            return step, consensus_value, consensus_since, terminated

        return stepper

    def _make_transition_stepper(self, classes: Tuple[int, ...]) -> StepperFn:
        np = _np
        plans = self._plans
        consensus_deltas = self.consensus_deltas(classes)

        def stepper(
            counts: List[int],
            rng: random.Random,
            max_steps: int,
            stability_window: int,
            one: int,
            zero: int,
            undef: int,
            ring: Optional[List[int]] = None,
            capacity: int = 0,
        ) -> Tuple[int, int, int, bool]:
            arr = np.array(counts, dtype=np.int64)
            enabled = self.full_enabled(arr)
            choice = rng.choice
            flatnonzero = np.flatnonzero
            if undef == 0:
                consensus_value = 0 if one == 0 else (1 if zero == 0 else -1)
            else:
                consensus_value = -1
            consensus_since = 0 if consensus_value >= 0 else -1
            step = 0
            terminated = False
            position = 0
            while step < max_steps:
                indices = flatnonzero(enabled)
                if indices.size == 0:
                    terminated = True
                    break
                # rng.choice draws one _randbelow(len(enabled)) exactly like
                # the reference scheduler's choice over the enabled list.
                t = int(choice(indices))
                step += 1
                if ring is not None:
                    ring[position] = t
                    position += 1
                    if position == capacity:
                        position = 0
                (
                    delta_idx, delta_val, affected,
                    ent_states, ent_mults, _ent_divisors, seg_starts,
                    _plan_max_mult, _seg_mode,
                ) = plans[t]
                if delta_idx.size:
                    arr[delta_idx] += delta_val
                if affected.size:
                    ok = arr[ent_states] >= ent_mults
                    enabled[affected] = np.bitwise_and.reduceat(ok, seg_starts)
                d_one, d_zero, d_undef = consensus_deltas[t]
                if d_one or d_zero or d_undef:
                    one += d_one
                    zero += d_zero
                    undef += d_undef
                    if undef == 0:
                        value = 0 if one == 0 else (1 if zero == 0 else -1)
                    else:
                        value = -1
                    if value != consensus_value:
                        consensus_value = value
                        consensus_since = step if value >= 0 else -1
                if consensus_value >= 0 and step - consensus_since >= stability_window:
                    break
            counts[:] = arr.tolist()
            return step, consensus_value, consensus_since, terminated

        return stepper
