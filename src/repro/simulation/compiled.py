"""Compiled dense array-backed simulation engine.

The sparse reference engine (:class:`~repro.simulation.simulator.Simulator`
with ``engine="reference"``) allocates a fresh immutable
:class:`~repro.core.configuration.Configuration` per interaction, rescans the
whole support twice per step for consensus detection, and recomputes every
transition weight from scratch.  That is the right semantics-first baseline,
but it caps throughput at roughly a hundred thousand interactions per second.

This module compiles a Petri net once into a dense representation and then
*generates a specialized stepper function* for it:

* :class:`CompiledNet` maps states to dense integer indices and represents
  each transition as ``(index, count)`` precondition tuples plus
  ``(index, delta)`` displacement tuples, so a run mutates a single counts
  array in place instead of allocating configurations,
* :meth:`CompiledNet.stepper` emits straight-line Python source for the whole
  simulation loop — transition dispatch, in-place firing, *incremental*
  scheduler weights (after firing ``t`` only the weights of transitions whose
  pre-sets intersect the states ``t`` changed are recomputed, and a running
  total is maintained), and O(1) consensus checks via maintained counters of
  agents in 0-output / 1-output / ``*``-output states — and ``exec``-compiles
  it into a function operating on local integer variables.

The generated steppers consume the random stream exactly like the reference
schedulers (one ``randrange(total)`` per step for the uniform discipline, one
``choice(enabled)`` per step for the transition discipline), so for a fixed
``(protocol, inputs, seed)`` the compiled and reference engines produce
identical trajectories step for step; the test suite asserts this.

The dense mapping built here (state indexing, ``pre``/``delta`` tuples, the
``affected`` incremental-scheduling map, output classes and consensus deltas)
is shared with the NumPy engine: :class:`~repro.simulation.vectorized
.VectorizedNet` subclasses :class:`CompiledNet` and swaps the generated
straight-line code for array kernels, which wins once the net has more
transitions than the unrolled dispatch can stomach (see
:data:`repro.simulation.simulator.AUTO_VECTORIZE_THRESHOLD`).
"""

from __future__ import annotations

from math import comb
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol as TypingProtocol,
    Tuple,
    runtime_checkable,
)

from ..core.configuration import Configuration, State
from ..core.petrinet import PetriNet
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Output

__all__ = [
    "OUT_ZERO",
    "OUT_ONE",
    "OUT_UNDEFINED",
    "OUT_IGNORED",
    "CompiledNet",
    "GeneratedStepper",
    "Stepper",
    "check_kind",
]

#: Dense output classes used by the consensus counters of the compiled engine.
OUT_ZERO = 0
OUT_ONE = 1
OUT_UNDEFINED = 2
#: States absent from the output table; they never influence the consensus
#: (mirroring :meth:`repro.core.protocol.Protocol.configuration_output`).
OUT_IGNORED = 3

#: Scheduler disciplines the dense engines know how to specialize (shared by
#: the generated-code steppers here and the NumPy kernels of
#: :mod:`repro.simulation.vectorized`).
_KINDS = ("uniform", "transition")

#: The call signature shared by every stepper: ``(steps, consensus_value,
#: consensus_since, terminated)`` from a mutated counts array (see
#: :meth:`CompiledNet.stepper` for the parameter contract).
StepperFn = Callable[..., Tuple[int, int, int, bool]]


@runtime_checkable
class Stepper(TypingProtocol):
    """The engine seam: one simulation loop plus its QA hooks.

    Every dense engine hands the :class:`~repro.simulation.simulator.Simulator`
    an object satisfying this protocol instead of a bare closure:

    * calling it runs the whole loop with the stepper signature documented on
      :meth:`CompiledNet.stepper` (``counts`` mutated in place, ``-1`` as the
      ``None`` sentinel, optional trailing ``ring``/``capacity``),
    * :meth:`source` returns the generated Python source when the loop *is*
      generated code (the compiled engine), and ``None`` for kernel-backed
      loops (the NumPy and ensemble engines) — the hook the codegen auditor
      (:mod:`repro.qa.codegen_audit`) keys off to decide whether to audit
      emitted source or kernel-plan structure,
    * :attr:`qa_meta` carries structured generator/kernel metadata (label,
      scheduler kind, transition count, ...) for the same auditor.

    Concrete implementations: :class:`GeneratedStepper` (exec-compiled
    straight-line code), :class:`~repro.simulation.vectorized.KernelStepper`
    (NumPy kernels, also used by the lock-step ensemble engine).
    """

    qa_meta: Dict[str, object]

    def __call__(self, *args: Any, **kwargs: Any) -> Tuple[int, int, int, bool]:
        ...  # pragma: no cover - protocol stub

    def source(self) -> Optional[str]:
        ...  # pragma: no cover - protocol stub


class GeneratedStepper:
    """A generated straight-line stepper with its source attached.

    Wraps the ``exec``-compiled function together with the emitted source and
    the generator's structured metadata; the wrapper is entered once per run
    (the loop lives inside), so the indirection costs nothing per step.  The
    legacy ``__source__`` / ``__qa_meta__`` attribute spellings are kept for
    debugging parity with the pre-protocol closures.
    """

    def __init__(
        self, fn: StepperFn, source: str, qa_meta: Dict[str, object]
    ) -> None:
        self._fn = fn
        self.__source__ = source
        self.qa_meta = qa_meta

    def __call__(self, *args: Any, **kwargs: Any) -> Tuple[int, int, int, bool]:
        return self._fn(*args, **kwargs)

    def source(self) -> str:
        """The emitted Python source of the loop (the QA audit hook)."""
        return self.__source__

    @property
    def __qa_meta__(self) -> Dict[str, object]:
        return self.qa_meta

    def __repr__(self) -> str:
        return f"GeneratedStepper({self.qa_meta.get('label', '?')})"


def check_kind(kind: str) -> None:
    """Reject scheduler disciplines the dense engines don't implement."""
    if kind not in _KINDS:
        raise ValueError(
            f"unknown compiled scheduler kind: {kind!r} (expected one of {_KINDS})"
        )


class CompiledNet:
    """A Petri net compiled to dense integer indices.

    Parameters
    ----------
    net:
        The Petri net to compile.
    extra_states:
        Additional states to include in the dense universe (e.g. protocol
        states no transition touches).  Prefer :meth:`PetriNet.compiled`,
        which caches instances per universe.
    """

    def __init__(self, net: PetriNet, extra_states: Iterable[State] = ()) -> None:
        self.net = net
        universe = set(net.states) | set(extra_states)
        self.states: Tuple[State, ...] = tuple(sorted(universe, key=str))
        if len({str(state) for state in self.states}) != len(self.states):
            # The dense index order is ``sorted(..., key=str)``; states whose
            # renderings collide would be ordered by hash-dependent tie-break,
            # silently permuting indices between runs — the exact hazard the
            # cross-engine determinism contract forbids.
            raise ValueError(
                "states must have distinct string renderings for a stable "
                "dense index order"
            )
        self.index_of: Dict[State, int] = {state: i for i, state in enumerate(self.states)}

        pre_lists: List[Tuple[Tuple[int, int], ...]] = []
        delta_lists: List[Tuple[Tuple[int, int], ...]] = []
        for transition in net.transitions:
            pre = tuple(
                sorted((self.index_of[state], count) for state, count in transition.pre.items())
            )
            delta: Dict[int, int] = {}
            for state, count in transition.post.items():
                index = self.index_of[state]
                delta[index] = delta.get(index, 0) + count
            for state, count in transition.pre.items():
                index = self.index_of[state]
                delta[index] = delta.get(index, 0) - count
            pre_lists.append(pre)
            delta_lists.append(tuple(sorted((i, d) for i, d in delta.items() if d)))
        self.pre_lists: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(pre_lists)
        self.delta_lists: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(delta_lists)

        # touchers[i]: transitions whose precondition mentions state index i.
        touchers: List[List[int]] = [[] for _ in self.states]
        for t, pre in enumerate(self.pre_lists):
            for index, _ in pre:
                touchers[index].append(t)
        # affected[t]: transitions whose weight can change when t fires, i.e.
        # those whose pre-set intersects the states t displaces.  This is the
        # incremental-scheduling map: firing t only reweighs affected[t].
        affected: List[Tuple[int, ...]] = []
        for delta in self.delta_lists:
            hit = set()
            for index, _ in delta:
                hit.update(touchers[index])
            # qa: allow[DET202] -- dense int transition indices, totally ordered
            affected.append(tuple(sorted(hit)))
        self.affected: Tuple[Tuple[int, ...], ...] = tuple(affected)

        self._steppers: Dict[Tuple[str, Tuple[int, ...], bool], Stepper] = {}

    def __getstate__(self) -> Dict[str, object]:
        """Drop the generated steppers: ``exec``-compiled functions cannot be
        pickled, and worker processes regenerate them on first use anyway."""
        state = self.__dict__.copy()
        state["_steppers"] = {}
        return state

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """The size of the dense state universe."""
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        """The number of compiled transitions (same as the net's)."""
        return len(self.pre_lists)

    def __repr__(self) -> str:
        return f"CompiledNet(|P|={self.num_states}, |T|={self.num_transitions})"

    # ------------------------------------------------------------------
    # Conversions between sparse configurations and dense count arrays
    # ------------------------------------------------------------------
    def counts_of(
        self, configuration: Configuration, out: Optional[List[int]] = None
    ) -> Optional[List[int]]:
        """The dense counts array of ``configuration``.

        Returns ``None`` if the configuration mentions a state outside the
        compiled universe (callers then fall back to the sparse engine).
        When ``out`` is given it is zeroed and reused instead of allocating.
        """
        if out is None:
            counts = [0] * len(self.states)
        else:
            counts = out
            for i in range(len(counts)):
                counts[i] = 0
        index_of = self.index_of
        for state, count in configuration.items():
            index = index_of.get(state)
            if index is None:
                return None
            counts[index] = count
        return counts

    def configuration_of(self, counts: List[int]) -> Configuration:
        """The sparse configuration represented by a dense counts array."""
        clean = {state: count for state, count in zip(self.states, counts) if count}
        return Configuration._from_clean(clean, sum(counts))

    # ------------------------------------------------------------------
    # Output classification (consensus counters)
    # ------------------------------------------------------------------
    def output_classes(self, output_table: "MappingLike") -> Tuple[int, ...]:
        """Classify every dense state index by its output.

        Returns one of :data:`OUT_ZERO` / :data:`OUT_ONE` /
        :data:`OUT_UNDEFINED` / :data:`OUT_IGNORED` per state, in index order.
        """
        classes = []
        for state in self.states:
            if state not in output_table:
                classes.append(OUT_IGNORED)
                continue
            value = output_table[state]
            if value == OUTPUT_ONE:
                classes.append(OUT_ONE)
            elif value == OUTPUT_ZERO:
                classes.append(OUT_ZERO)
            else:
                classes.append(OUT_UNDEFINED)
        return tuple(classes)

    def consensus_deltas(self, classes: Tuple[int, ...]) -> Tuple[Tuple[int, int, int], ...]:
        """Per transition, the ``(d_one, d_zero, d_undefined)`` counter deltas."""
        deltas = []
        for delta in self.delta_lists:
            d_one = d_zero = d_undefined = 0
            for index, diff in delta:
                kind = classes[index]
                if kind == OUT_ONE:
                    d_one += diff
                elif kind == OUT_ZERO:
                    d_zero += diff
                elif kind == OUT_UNDEFINED:
                    d_undefined += diff
            deltas.append((d_one, d_zero, d_undefined))
        return tuple(deltas)

    # ------------------------------------------------------------------
    # Stepper generation
    # ------------------------------------------------------------------
    def stepper(self, kind: str, classes: Tuple[int, ...], record: bool = False) -> Stepper:
        """The generated simulation loop for a scheduler ``kind`` and output classes.

        Returns a :class:`Stepper` (a :class:`GeneratedStepper` here; the
        NumPy subclass returns kernel-backed steppers) whose call signature
        is::

            stepper(counts, rng, max_steps, stability_window, one, zero, undef)
                -> (steps, consensus_value, consensus_since, terminated)

        where ``counts`` is mutated in place, ``one``/``zero``/``undef`` are
        the initial consensus counters, and ``consensus_value`` /
        ``consensus_since`` use ``-1`` as the ``None`` sentinel.

        With ``record=True`` the signature gains two trailing parameters
        ``(ring, capacity)``: ``ring`` is a caller-allocated list of length
        ``capacity`` into which the loop writes the fired transition index of
        every step, wrapping around when full (decode with
        :meth:`~repro.simulation.trajectory.Trajectory.from_ring`).  Recording
        is a separate generated variant so the non-recording fast path pays
        nothing for the feature.  Steppers are cached per
        ``(kind, classes, record)``.
        """
        key = (kind, tuple(classes), bool(record))
        stepper = self._steppers.get(key)
        if stepper is None:
            stepper = _generate_stepper(self, kind, key[1], record=key[2])
            self._steppers[key] = stepper
        return stepper

    def stepper_source(self, kind: str, classes: Tuple[int, ...], record: bool = False) -> str:
        """The generated Python source of the specialized stepper.

        Always emits the straight-line code of *this* class's generator, even
        on subclasses that override :meth:`stepper` with kernel-backed
        steppers (whose :meth:`Stepper.source` hook returns ``None``).  This
        is the entry point of the codegen auditor
        (:mod:`repro.qa.codegen_audit`); it regenerates a fresh
        :class:`GeneratedStepper` — via the protocol's source hook — rather
        than consulting the stepper cache, so auditing never perturbs the
        functions actually used for simulation.
        """
        return _generate_stepper(self, kind, tuple(classes), record=record).source()


# Type alias only used in docstrings/signatures above; kept loose on purpose
# (accepts dicts and MappingProxy views alike).
MappingLike = Dict[State, Output]


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------
def _weight_term(index: int, needed: int) -> str:
    """Source of ``C(counts[index], needed)``; evaluates to 0 when disabled."""
    if needed == 1:
        return f"c{index}"
    if needed == 2:
        return f"c{index} * (c{index} - 1) // 2"
    return f"comb(c{index}, {needed})"


def _weight_expr(pre: Tuple[Tuple[int, int], ...]) -> str:
    """Source of the uniform-scheduler weight ``prod_p C(counts[p], pre[p])``."""
    if not pre:
        return "1"
    return " * ".join(f"({_weight_term(index, needed)})" for index, needed in pre)


def _enabled_expr(pre: Tuple[Tuple[int, int], ...]) -> str:
    """Source of the enabledness test of a transition (non-empty pre only)."""
    return " and ".join(f"c{index} >= {needed}" for index, needed in pre)


def _consensus_value_lines(has_undef: bool) -> List[str]:
    """Lines recomputing ``value`` from the counters and folding it into
    ``consensus_value`` / ``consensus_since`` (reference-engine semantics)."""
    if has_undef:
        lines = [
            "if undef == 0:",
            "    value = 0 if one == 0 else (1 if zero == 0 else -1)",
            "else:",
            "    value = -1",
        ]
    else:
        lines = ["value = 0 if one == 0 else (1 if zero == 0 else -1)"]
    lines += [
        "if value != consensus_value:",
        "    consensus_value = value",
        "    consensus_since = step if value >= 0 else -1",
    ]
    return lines


def _fire_statements(
    net: CompiledNet,
    t: int,
    consensus_deltas: Tuple[Tuple[int, int, int], ...],
    kind: str,
    has_undef: bool,
    record: bool = False,
) -> List[str]:
    """The straight-line statements executed when transition ``t`` fires.

    Lines carry their own relative indentation; the emitter adds the base
    prefix of the dispatch branch.
    """
    statements: List[str] = []
    for index, diff in net.delta_lists[t]:
        statements.append(f"c{index} += {diff}" if diff > 0 else f"c{index} -= {-diff}")
    counters_changed = any(consensus_deltas[t])
    for name, diff in zip(("one", "zero", "undef"), consensus_deltas[t]):
        if diff:
            statements.append(f"{name} += {diff}" if diff > 0 else f"{name} -= {-diff}")
    if kind == "uniform":
        # Incremental reweighing: only the transitions whose pre-sets
        # intersect the states t displaced.  The running total is kept either
        # by diffing the changed weights (cheap when few are affected) or by
        # re-summing all weight locals (cheaper once most are affected).
        affected = net.affected[t]
        if affected:
            num_transitions = net.num_transitions
            diff_form = num_transitions > 2 * len(affected) + 3
            parts = []
            for k, u in enumerate(affected):
                if diff_form:
                    statements.append(f"_o{k} = w{u}")
                statements.append(f"w{u} = {_weight_expr(net.pre_lists[u])}")
                if diff_form:
                    parts.append(f"w{u} - _o{k}")
            if diff_form:
                statements.append("total += " + " + ".join(parts))
            else:
                statements.append(
                    "total = " + " + ".join(f"w{u}" for u in range(num_transitions))
                )
    if counters_changed:
        # Only transitions that move agents across output classes can change
        # the consensus; the others inherit the invariant that
        # ``consensus_value`` already matches the counters.
        statements.extend(_consensus_value_lines(has_undef))
    if not statements:
        statements.append("pass")
    if record and kind == "uniform":
        # The transition-kind loop records the chosen index once before the
        # dispatch; the uniform dispatch only knows it inside the branch.
        # Prepended after the ``pass`` fallback so the recording variant is
        # exactly the fast variant plus ring writes (the codegen auditor
        # checks this by stripping them).
        statements.insert(0, f"ring[rpos] = {t}")
    return statements


def _generate_stepper(
    net: CompiledNet, kind: str, classes: Tuple[int, ...], record: bool = False
) -> GeneratedStepper:
    """Emit and compile the specialized simulation loop for ``net``."""
    check_kind(kind)
    consensus_deltas = net.consensus_deltas(classes)
    # Nets without '*'-output states keep ``undef`` identically zero; the
    # generated consensus code drops the test entirely.
    has_undef = OUT_UNDEFINED in classes
    num_transitions = net.num_transitions
    read = {index for pre in net.pre_lists for index, _ in pre}
    # qa: allow[DET202] -- dense int state indices, totally ordered
    written = sorted({index for delta in net.delta_lists for index, _ in delta})
    touched = sorted(read | set(written))  # qa: allow[DET202] -- int indices
    extra_params = ", ring, capacity" if record else ""

    lines: List[str] = []
    emit = lines.append
    emit(
        "def __compiled_stepper(counts, rng, max_steps, stability_window, "
        f"one, zero, undef{extra_params}):"
    )
    for index in touched:
        emit(f"    c{index} = counts[{index}]")
    if record:
        emit("    rpos = 0")
    if kind == "uniform":
        emit("    randrange = rng.randrange")
        for t in range(num_transitions):
            emit(f"    w{t} = {_weight_expr(net.pre_lists[t])}")
        totals = " + ".join(f"w{t}" for t in range(num_transitions))
        emit(f"    total = {totals or '0'}")
    else:
        emit("    choice = rng.choice")
    if has_undef:
        emit("    if undef == 0:")
        emit("        consensus_value = 0 if one == 0 else (1 if zero == 0 else -1)")
        emit("    else:")
        emit("        consensus_value = -1")
    else:
        emit("    consensus_value = 0 if one == 0 else (1 if zero == 0 else -1)")
    emit("    consensus_since = 0 if consensus_value >= 0 else -1")
    emit("    step = 0")
    emit("    terminated = False")
    emit("    while step < max_steps:")
    if kind == "uniform":
        emit("        if total <= 0:")
        emit("            terminated = True")
        emit("            break")
        emit("        pick = randrange(total)")
        emit("        step += 1")
        if num_transitions == 1:
            for statement in _fire_statements(net, 0, consensus_deltas, kind, has_undef, record):
                emit(f"        {statement}")
        else:
            for t in range(num_transitions):
                if t == 0:
                    emit("        if pick < (cum := w0):")
                elif t < num_transitions - 1:
                    emit(f"        elif pick < (cum := cum + w{t}):")
                else:
                    emit("        else:")
                for statement in _fire_statements(net, t, consensus_deltas, kind, has_undef, record):
                    emit(f"            {statement}")
    else:
        emit("        enabled = []")
        for t in range(num_transitions):
            pre = net.pre_lists[t]
            if pre:
                emit(f"        if {_enabled_expr(pre)}:")
                emit(f"            enabled.append({t})")
            else:
                emit(f"        enabled.append({t})")
        emit("        if not enabled:")
        emit("            terminated = True")
        emit("            break")
        emit("        t = choice(enabled)")
        emit("        step += 1")
        if record:
            emit("        ring[rpos] = t")
        if num_transitions == 1:
            for statement in _fire_statements(net, 0, consensus_deltas, kind, has_undef):
                emit(f"        {statement}")
        elif num_transitions > 1:
            for t in range(num_transitions):
                if t == 0:
                    emit("        if t == 0:")
                elif t < num_transitions - 1:
                    emit(f"        elif t == {t}:")
                else:
                    emit("        else:")
                for statement in _fire_statements(net, t, consensus_deltas, kind, has_undef):
                    emit(f"            {statement}")
    if record:
        emit("        rpos += 1")
        emit("        if rpos == capacity:")
        emit("            rpos = 0")
    emit("        if consensus_value >= 0 and step - consensus_since >= stability_window:")
    emit("            break")
    for index in written:
        emit(f"    counts[{index}] = c{index}")
    emit("    return step, consensus_value, consensus_since, terminated")

    source = "\n".join(lines)
    namespace: Dict[str, Any] = {"comb": comb}
    label = f"{net.net.name or 'net'}/{kind}" + ("/recording" if record else "")
    try:
        exec(compile(source, f"<compiled stepper: {label}>", "exec"), namespace)
    except RecursionError:
        # The unrolled dispatch is one elif per transition and the CPython
        # compiler recurses once per branch, so a few thousand transitions
        # overflow its recursion guard before the code even runs.
        raise RecursionError(
            f"net is too large for the compiled engine ({num_transitions} transitions "
            "overflow the CPython compiler while building the generated stepper); "
            "use engine='numpy' (or engine='auto', which selects it)"
        ) from None
    # Structured metadata for the codegen auditor (repro.qa.codegen_audit):
    # what the generator *intended*, so the auditor can check the emitted
    # source against it instead of re-deriving the dense mapping.
    qa_meta: Dict[str, object] = {
        "label": label,
        "kind": kind,
        "record": record,
        "num_transitions": num_transitions,
        "touched": tuple(touched),
        "written": tuple(written),
    }
    return GeneratedStepper(namespace["__compiled_stepper"], source, qa_meta)
