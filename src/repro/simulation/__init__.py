"""Random-scheduler simulation of protocols: engines, batches, trajectories.

The simulation layer is organized in three tiers:

**Engines** (:mod:`~repro.simulation.simulator`,
:mod:`~repro.simulation.compiled`, :mod:`~repro.simulation.vectorized`,
:mod:`~repro.simulation.ensemble`).
A single run executes on one of three per-run engines with identical
semantics:

* the *compiled* dense-array engine — states mapped to dense indices, a
  generated straight-line stepper mutating one counts array with incremental
  scheduler weights and O(1) consensus counters.  Unbeatable on the small
  nets of the named protocols, but its per-step dispatch (and its codegen)
  grows linearly in the transition count, and beyond ~2500 transitions the
  generated code exceeds what CPython can compile;
* the *NumPy* engine (``engine="numpy"``, optional ``sim`` extra) — the same
  dense mapping, with the counts and scheduler weights kept as ``int64``
  vectors updated by array kernels through a precomputed transition-adjacency
  structure.  Per-step cost is essentially flat in the transition count,
  which wins on nets with hundreds to thousands of transitions — the regime
  of the paper's succinct-counting constructions;
* the sparse *reference* engine (``engine="reference"``) — one immutable
  configuration per step, full rescans; the semantics-first baseline.

All three consume the random stream identically, so trajectories match step
for step; the test suite asserts this across the named protocols and a
seeded sweep of random nets.  ``engine="auto"`` (the default) selects the
NumPy engine at :data:`~repro.simulation.simulator.AUTO_VECTORIZE_THRESHOLD`
(256) transitions and above — benchmark E11 puts the measured steady-state
crossover between ~200 (densely coupled nets) and ~500 (sparse) transitions,
and the compiled engine's per-(net, process) codegen cost pushes the
end-to-end crossover far lower — falling back to the compiled engine when
NumPy is missing and to the reference engine for custom schedulers.  The
``REPRO_FORCE_ENGINE`` environment variable overrides the auto choice.

**Batches** (:mod:`~repro.simulation.batch`).  Ensembles of independent runs
(``Simulator.run_many``, :class:`BatchRunner`, :func:`run_ensemble`) derive
one seed per repetition from a master generator up front and can execute
either serially or fanned out over ``multiprocessing`` workers
(``backend="process"``); chunked, index-ordered dispatch keeps the two
backends bit-identical, and workers rebuild dense-engine steppers from
pickled protocols on first use.  A :class:`BatchRunner` owns a **persistent
pool**: workers are spawned and initialized once (on the first
process-backend ensemble) and reused across every subsequent
``run_many``/``run_seeds``, so repeated ensembles stop paying pool startup,
protocol pickling and stepper compilation — benchmark E11 measures the
second call severalfold faster than the old build-per-call behavior.
Release the pool with ``close()`` or a ``with`` block; a closed runner
raises on further use.  The pool itself is the protocol-agnostic
:class:`WorkerPool`: its workers cache one initialized simulator per
(protocol, scheduler, engine) spec, so a single pool can serve ensembles of
many protocols back to back — the fan-out substrate of the sweep harness
(:mod:`repro.sweep`).

**Trajectories** (:mod:`~repro.simulation.trajectory`).  Opt-in path
recording (``record_trajectory=True``): every engine writes the fired
transition indices into a bounded ring buffer, decoded into a
:class:`Trajectory` that keeps the last ``trajectory_capacity`` firings,
counts what was dropped, and can replay complete paths on the net.  The
``analytics=`` knob on the batch entry points goes one step further:
instead of shipping rings out of the workers, each worker records, extracts
a compact metric dict (time-to-consensus, firing histogram, predicate
correctness — see :mod:`repro.analytics`), attaches it as
``result.analytics`` and drops the ring, so ensembles return kilobytes of
metrics rather than megabytes of paths.  Enabling analytics never changes
the simulation itself: the non-analytics result fields stay bit-identical,
on every engine and backend.

:mod:`~repro.simulation.statistics` aggregates batch results into convergence
statistics; :mod:`repro.analytics` builds the trajectory-derived metrics,
ensemble aggregates and diffing tools on top.
"""

from .batch import (
    BatchRunner,
    WorkerCrashError,
    WorkerPool,
    WorkerTimeoutError,
    run_ensemble,
)
from .compiled import CompiledNet
from .scheduler import Scheduler, TransitionScheduler, UniformScheduler
from .simulator import AUTO_VECTORIZE_THRESHOLD, SimulationResult, Simulator, simulate
from .vectorized import VectorizedNet, numpy_available
from .statistics import (
    ConvergenceStatistics,
    accuracy_against_predicate,
    interactions_per_second,
    summarize_runs,
)
from .trajectory import DEFAULT_TRAJECTORY_CAPACITY, Trajectory

__all__ = [
    "Scheduler",
    "UniformScheduler",
    "TransitionScheduler",
    "CompiledNet",
    "VectorizedNet",
    "numpy_available",
    "AUTO_VECTORIZE_THRESHOLD",
    "Simulator",
    "SimulationResult",
    "simulate",
    "BatchRunner",
    "WorkerPool",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "run_ensemble",
    "Trajectory",
    "DEFAULT_TRAJECTORY_CAPACITY",
    "ConvergenceStatistics",
    "summarize_runs",
    "accuracy_against_predicate",
    "interactions_per_second",
]
