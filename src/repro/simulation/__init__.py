"""Random-scheduler simulation of protocols: engines, batches, trajectories.

The simulation layer is organized in three tiers:

**Engines** (:mod:`~repro.simulation.simulator`,
:mod:`~repro.simulation.compiled`).  A single run executes on one of two
engines with identical semantics: the *compiled* dense-array engine (default
for the built-in schedulers — states mapped to dense indices, a generated
stepper mutating one counts array with incremental scheduler weights and O(1)
consensus counters) and the sparse *reference* engine
(``engine="reference"`` — one immutable configuration per step, full
rescans).  Both consume the random stream identically, so trajectories match
step for step; the test suite asserts this across the named protocols and a
seeded sweep of random nets.

**Batches** (:mod:`~repro.simulation.batch`).  Ensembles of independent runs
(``Simulator.run_many``, :class:`BatchRunner`, :func:`run_ensemble`) derive
one seed per repetition from a master generator up front and can execute
either serially or fanned out over ``multiprocessing`` workers
(``backend="process"``); chunked, index-ordered dispatch keeps the two
backends bit-identical, and workers rebuild compiled steppers from pickled
protocols on first use.

**Trajectories** (:mod:`~repro.simulation.trajectory`).  Opt-in path
recording (``record_trajectory=True``): both engines write the fired
transition indices into a bounded ring buffer, decoded into a
:class:`Trajectory` that keeps the last ``trajectory_capacity`` firings,
counts what was dropped, and can replay complete paths on the net.

:mod:`~repro.simulation.statistics` aggregates batch results into convergence
statistics.
"""

from .batch import BatchRunner, run_ensemble
from .compiled import CompiledNet
from .scheduler import Scheduler, TransitionScheduler, UniformScheduler
from .simulator import SimulationResult, Simulator, simulate
from .statistics import (
    ConvergenceStatistics,
    accuracy_against_predicate,
    interactions_per_second,
    summarize_runs,
)
from .trajectory import DEFAULT_TRAJECTORY_CAPACITY, Trajectory

__all__ = [
    "Scheduler",
    "UniformScheduler",
    "TransitionScheduler",
    "CompiledNet",
    "Simulator",
    "SimulationResult",
    "simulate",
    "BatchRunner",
    "run_ensemble",
    "Trajectory",
    "DEFAULT_TRAJECTORY_CAPACITY",
    "ConvergenceStatistics",
    "summarize_runs",
    "accuracy_against_predicate",
    "interactions_per_second",
]
