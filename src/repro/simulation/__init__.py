"""Random-scheduler simulation of protocols: schedulers, runs, statistics."""

from .scheduler import Scheduler, TransitionScheduler, UniformScheduler
from .simulator import SimulationResult, Simulator, simulate
from .statistics import ConvergenceStatistics, accuracy_against_predicate, summarize_runs

__all__ = [
    "Scheduler",
    "UniformScheduler",
    "TransitionScheduler",
    "Simulator",
    "SimulationResult",
    "simulate",
    "ConvergenceStatistics",
    "summarize_runs",
    "accuracy_against_predicate",
]
