"""Random-scheduler simulation of protocols: schedulers, runs, statistics.

Simulation runs on one of two engines with identical semantics: the compiled
dense-array engine (default, see :mod:`repro.simulation.compiled`) and the
sparse reference engine (``engine="reference"``).
"""

from .compiled import CompiledNet
from .scheduler import Scheduler, TransitionScheduler, UniformScheduler
from .simulator import SimulationResult, Simulator, simulate
from .statistics import (
    ConvergenceStatistics,
    accuracy_against_predicate,
    interactions_per_second,
    summarize_runs,
)

__all__ = [
    "Scheduler",
    "UniformScheduler",
    "TransitionScheduler",
    "CompiledNet",
    "Simulator",
    "SimulationResult",
    "simulate",
    "ConvergenceStatistics",
    "summarize_runs",
    "accuracy_against_predicate",
    "interactions_per_second",
]
