"""Random-scheduler simulation of protocols.

The verification layer explores every execution exhaustively, which is only
feasible for small populations.  The simulator samples executions under a
scheduler instead, which scales to thousands of agents and is the substrate of
the convergence-time experiments and the larger examples.

A run proceeds step by step until one of:

* the current configuration reaches a **consensus** that does not change for
  ``stability_window`` further steps (heuristic convergence detection),
* no transition is enabled (a genuinely terminal configuration),
* the step budget is exhausted.

The result records the trajectory summary, the final configuration, the
consensus value (if any) and how many steps were needed to reach it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.configuration import Configuration
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from .scheduler import Scheduler, UniformScheduler

__all__ = ["SimulationResult", "Simulator", "simulate"]


@dataclass
class SimulationResult:
    """Outcome of a single simulated execution."""

    initial: Configuration
    final: Configuration
    steps: int
    consensus: Optional[int]
    consensus_step: Optional[int]
    terminated: bool
    interactions_sampled: int

    @property
    def converged(self) -> bool:
        """True if the run ended in a consensus (stable or terminal)."""
        return self.consensus is not None

    def __repr__(self) -> str:
        return (
            f"SimulationResult(steps={self.steps}, consensus={self.consensus}, "
            f"consensus_step={self.consensus_step}, terminated={self.terminated})"
        )


class Simulator:
    """Simulate a protocol under a scheduler.

    Parameters
    ----------
    protocol:
        The protocol to simulate (must be Petri-net based).
    scheduler:
        The scheduling discipline; defaults to :class:`UniformScheduler`.
    seed:
        Seed of the internal random generator (for reproducible runs).
    """

    def __init__(
        self,
        protocol: Protocol,
        scheduler: Optional[Scheduler] = None,
        seed: Optional[int] = None,
    ):
        if protocol.petri_net is None:
            raise ValueError("simulation requires a Petri-net based protocol")
        self.protocol = protocol
        self.net = protocol.petri_net
        self.scheduler = scheduler or UniformScheduler()
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Single runs
    # ------------------------------------------------------------------
    def run(
        self,
        inputs: Configuration,
        max_steps: int = 100000,
        stability_window: int = 200,
    ) -> SimulationResult:
        """Simulate one execution from the initial configuration ``rho_L + inputs``."""
        configuration = self.protocol.initial_configuration(inputs)
        return self.run_from(configuration, max_steps=max_steps, stability_window=stability_window)

    def run_from(
        self,
        configuration: Configuration,
        max_steps: int = 100000,
        stability_window: int = 200,
    ) -> SimulationResult:
        """Simulate one execution from an arbitrary starting configuration."""
        initial = configuration
        current = configuration
        consensus_value = self._consensus(current)
        consensus_since: Optional[int] = 0 if consensus_value is not None else None
        interactions = 0

        for step in range(1, max_steps + 1):
            transition = self.scheduler.choose(self.net, current, self.rng)
            if transition is None:
                # Terminal configuration: the consensus (if any) is definitive.
                return SimulationResult(
                    initial=initial,
                    final=current,
                    steps=step - 1,
                    consensus=consensus_value,
                    consensus_step=consensus_since,
                    terminated=True,
                    interactions_sampled=interactions,
                )
            current = transition.fire(current)
            interactions += 1
            value = self._consensus(current)
            if value is None or value != consensus_value:
                consensus_value = value
                consensus_since = step if value is not None else None
            if (
                consensus_value is not None
                and consensus_since is not None
                and step - consensus_since >= stability_window
            ):
                return SimulationResult(
                    initial=initial,
                    final=current,
                    steps=step,
                    consensus=consensus_value,
                    consensus_step=consensus_since,
                    terminated=False,
                    interactions_sampled=interactions,
                )

        return SimulationResult(
            initial=initial,
            final=current,
            steps=max_steps,
            consensus=consensus_value,
            consensus_step=consensus_since,
            terminated=False,
            interactions_sampled=interactions,
        )

    def _consensus(self, configuration: Configuration) -> Optional[int]:
        """The consensus value of a configuration, or None if outputs disagree."""
        if self.protocol.has_consensus(configuration, OUTPUT_ONE):
            return OUTPUT_ONE
        if self.protocol.has_consensus(configuration, OUTPUT_ZERO):
            return OUTPUT_ZERO
        return None

    # ------------------------------------------------------------------
    # Repeated runs
    # ------------------------------------------------------------------
    def run_many(
        self,
        inputs: Configuration,
        repetitions: int,
        max_steps: int = 100000,
        stability_window: int = 200,
    ) -> List[SimulationResult]:
        """Simulate several independent executions from the same input."""
        return [
            self.run(inputs, max_steps=max_steps, stability_window=stability_window)
            for _ in range(repetitions)
        ]


def simulate(
    protocol: Protocol,
    inputs: Configuration,
    seed: Optional[int] = None,
    max_steps: int = 100000,
    stability_window: int = 200,
    scheduler: Optional[Scheduler] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(protocol, scheduler=scheduler, seed=seed)
    return simulator.run(inputs, max_steps=max_steps, stability_window=stability_window)
