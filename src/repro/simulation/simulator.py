"""Random-scheduler simulation of protocols.

The verification layer explores every execution exhaustively, which is only
feasible for small populations.  The simulator samples executions under a
scheduler instead, which scales to thousands of agents and is the substrate of
the convergence-time experiments and the larger examples.

A run proceeds step by step until one of:

* the current configuration reaches a **consensus** that does not change for
  ``stability_window`` further steps (heuristic convergence detection),
* no transition is enabled (a genuinely terminal configuration),
* the step budget is exhausted.

The result records the trajectory summary, the final configuration, the
consensus value (if any) and how many steps were needed to reach it.

Three engines implement these semantics:

* the **compiled engine** (``engine="compiled"``, the default for small nets
  under the built-in schedulers) maps states to dense indices once per net
  and runs a generated loop that mutates a single counts array in place,
  reweighs transitions incrementally and checks consensus in O(1) via
  maintained output counters (:mod:`repro.simulation.compiled`),
* the **NumPy engine** (``engine="numpy"``, the default for large nets when
  NumPy is installed) keeps the same dense mapping but maintains the counts
  and scheduler weights as ``int64`` vectors updated with array kernels, so
  its per-step cost is flat in the transition count instead of linear like
  the compiled dispatch chain (:mod:`repro.simulation.vectorized`),
* the **ensemble engine** (``engine="ensemble"``) batches *repetitions*: a
  lock-step ``(reps, states)`` matrix advanced with one kernel launch per
  global step, per-row transition picks through a two-level blocked weight
  structure, and rows retiring in place at convergence
  (:mod:`repro.simulation.ensemble`).  Single runs under this engine use the
  per-run NumPy stepper; ``run_many`` and the batch layer route whole seed
  lists through the lock-step path — every row bit-identical to a per-run
  engine run with the same derived seed,
* the **reference engine** (``engine="reference"``) is the original sparse
  implementation: one immutable :class:`~repro.core.configuration.Configuration`
  per step, full consensus rescans, full weight recomputation.

All engines consume the random stream identically, so for a fixed
``(protocol, inputs, seed)`` they produce the same trajectory step for step.
``engine="auto"`` (the default) picks the NumPy engine when the net has at
least :data:`AUTO_VECTORIZE_THRESHOLD` transitions and NumPy is installed,
the compiled engine for smaller nets (or when NumPy is missing), and falls
back to the reference engine otherwise (custom schedulers, configurations
mentioning states outside the compiled universe); it never picks the
ensemble engine on its own.  Engine precedence is: an explicit ``engine=``
argument always wins (``REPRO_FORCE_ENGINE`` then warns once that it is
being ignored), the ``REPRO_FORCE_ENGINE`` environment variable overrides
the ``engine="auto"`` choice — the knob the CI uses to drive the whole suite
through one engine — and the transition-count heuristic decides otherwise.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..config import forced_engine, monotonic_time, notice_explicit_engine
from ..core.configuration import Configuration
from ..obs import profile as _obs_profile
from ..obs import trace as _obs_trace
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from .compiled import OUT_ONE, OUT_UNDEFINED, OUT_ZERO, CompiledNet, StepperFn
from .scheduler import Scheduler, UniformScheduler
from .trajectory import DEFAULT_TRAJECTORY_CAPACITY, Trajectory
from .vectorized import numpy_available

__all__ = ["AUTO_VECTORIZE_THRESHOLD", "SimulationResult", "Simulator", "simulate"]

_ENGINES = ("auto", "compiled", "numpy", "ensemble", "reference")

#: Transition count at which ``engine="auto"`` switches from the compiled
#: engine to the NumPy engine.  Calibrated with benchmark E11
#: (``benchmarks/bench_e11_large_net_throughput.py``): on random width-2 nets
#: the steady-state crossover sits around ~200 transitions for densely
#: coupled nets and ~500 for sparse ones, the compiled engine's codegen cost
#: (absent entirely from the NumPy engine) pushes the end-to-end crossover
#: well below 100, and beyond a few thousand transitions the generated
#: dispatch chain cannot be compiled at all (CPython recursion guard).  256
#: splits the steady-state range while keeping every named protocol of the
#: paper on the compiled engine.
AUTO_VECTORIZE_THRESHOLD = 256

# The ``engine="auto"`` override (one of ``reference`` / ``compiled`` /
# ``numpy`` / ``auto``) is the ``REPRO_FORCE_ENGINE`` environment variable,
# read through the sanctioned :mod:`repro.config` helper.  Explicit
# ``engine=`` arguments are never overridden, so engine-equivalence tests
# keep testing what they name.  Worker processes inherit the environment, so
# a forced engine applies to process-backend ensembles too.


@dataclass
class SimulationResult:
    """Outcome of a single simulated execution."""

    initial: Configuration
    final: Configuration
    steps: int
    consensus: Optional[int]
    consensus_step: Optional[int]
    terminated: bool
    interactions_sampled: int
    #: Recorded path (``record_trajectory=True`` only), else ``None``.
    trajectory: Optional[Trajectory] = None
    #: Compact metric dict extracted in-place by the batch layer's
    #: ``analytics=`` knob (see :mod:`repro.analytics.metrics`), else ``None``.
    analytics: Optional[Dict[str, object]] = None

    @property
    def converged(self) -> bool:
        """True if the run ended in a consensus (stable or terminal)."""
        return self.consensus is not None

    def __repr__(self) -> str:
        return (
            f"SimulationResult(steps={self.steps}, consensus={self.consensus}, "
            f"consensus_step={self.consensus_step}, terminated={self.terminated})"
        )


class Simulator:
    """Simulate a protocol under a scheduler.

    Parameters
    ----------
    protocol:
        The protocol to simulate (must be Petri-net based).
    scheduler:
        The scheduling discipline; defaults to :class:`UniformScheduler`.
    seed:
        Seed of the internal random generator (for reproducible runs).
    engine:
        ``"auto"`` (default) picks a dense engine when the scheduler admits
        one — the NumPy engine for nets with at least
        :data:`AUTO_VECTORIZE_THRESHOLD` transitions (if NumPy is installed,
        silently skipped otherwise), the compiled engine below that —
        honouring the ``REPRO_FORCE_ENGINE`` environment override.
        ``"compiled"`` and ``"numpy"`` require that engine (raising
        ``ValueError`` for schedulers without a dense fast path, and
        ``ImportError`` for ``"numpy"`` without NumPy installed);
        ``"ensemble"`` requires NumPy the same way and additionally routes
        :meth:`run_many` / batch seed lists through the lock-step
        :class:`~repro.simulation.ensemble.VectorizedEnsemble` (single runs
        use the bit-identical per-run NumPy stepper);
        ``"reference"`` forces the sparse reference engine.

        An explicit ``engine=`` argument is never overridden by
        ``REPRO_FORCE_ENGINE`` — the override applies to ``engine="auto"``
        only, and :func:`repro.config.notice_explicit_engine` warns once
        when it is being ignored.
    """

    def __init__(
        self,
        protocol: Protocol,
        scheduler: Optional[Scheduler] = None,
        seed: Optional[int] = None,
        engine: str = "auto",
    ) -> None:
        if protocol.petri_net is None:
            raise ValueError("simulation requires a Petri-net based protocol")
        if engine not in _ENGINES:
            raise ValueError(f"unknown engine {engine!r} (expected one of {_ENGINES})")
        if engine != "auto":
            # One-time warning when REPRO_FORCE_ENGINE is set but ignored
            # (the override only applies to engine="auto").
            notice_explicit_engine(engine, _ENGINES)
        self.protocol = protocol
        self.net = protocol.petri_net
        self.scheduler = scheduler or UniformScheduler()
        self.rng = random.Random(seed)
        self.engine = engine

        self._compiled: Optional[CompiledNet] = None
        self._classes: Optional[Tuple[int, ...]] = None
        self._stepper: Optional[StepperFn] = None
        self._kind: Optional[str] = None
        self._choice: Optional[str] = None
        #: Cached lock-step engine (built on first ``run_many`` ensemble
        #: dispatch — its consensus-delta table is worth reusing).
        self._ensemble: Optional[Any] = None
        if engine != "reference":
            kind = self.scheduler.compiled_kind()
            if kind is None:
                if engine in ("compiled", "numpy", "ensemble"):
                    raise ValueError(
                        f"scheduler {type(self.scheduler).__name__} has no compiled fast "
                        "path; use engine='auto' or engine='reference'"
                    )
            else:
                choice = self._resolve_auto(engine)
                if choice in ("numpy", "ensemble"):
                    self._compiled = self.net.vectorized(extra_states=self.protocol.states)
                elif choice == "compiled":
                    self._compiled = self.net.compiled(extra_states=self.protocol.states)
                if self._compiled is not None:
                    self._classes = self._compiled.output_classes(self.protocol.output_table)
                    self._stepper = self._compiled.stepper(kind, self._classes)
                    self._kind = kind
                    self._choice = choice

    def _resolve_auto(self, engine: str) -> str:
        """The dense engine to build for a scheduler that admits one.

        Returns ``"compiled"``, ``"numpy"``, ``"ensemble"`` or
        ``"reference"`` (the last two only explicitly or via the environment
        override — the heuristic never picks them).  Explicit engines pass
        through; only ``engine="auto"`` consults ``REPRO_FORCE_ENGINE`` and
        the transition-count heuristic.
        """
        if engine != "auto":
            return engine
        forced = forced_engine(_ENGINES)
        if forced is not None:
            # Forcing "numpy" without NumPy installed raises (loudly, from
            # the VectorizedNet constructor) rather than silently testing a
            # different engine than the CI job asked for.
            return forced
        if numpy_available() and self.net.num_transitions >= AUTO_VECTORIZE_THRESHOLD:
            return "numpy"
        return "compiled"

    # ------------------------------------------------------------------
    # Single runs
    # ------------------------------------------------------------------
    def run(
        self,
        inputs: Configuration,
        max_steps: int = 100000,
        stability_window: int = 200,
        record_trajectory: bool = False,
        trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
    ) -> SimulationResult:
        """Simulate one execution from the initial configuration ``rho_L + inputs``.

        With ``record_trajectory=True`` the result carries a
        :class:`~repro.simulation.trajectory.Trajectory` of the last
        ``trajectory_capacity`` fired transition indices (a bounded ring
        buffer, so memory stays flat however long the run).
        """
        configuration = self.protocol.initial_configuration(inputs)
        return self.run_from(
            configuration,
            max_steps=max_steps,
            stability_window=stability_window,
            record_trajectory=record_trajectory,
            trajectory_capacity=trajectory_capacity,
        )

    def run_from(
        self,
        configuration: Configuration,
        max_steps: int = 100000,
        stability_window: int = 200,
        record_trajectory: bool = False,
        trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
    ) -> SimulationResult:
        """Simulate one execution from an arbitrary starting configuration."""
        profiler = _obs_profile.active_profiler()
        if profiler is None and not _obs_trace.tracing_active():
            return self._dispatch(
                configuration, max_steps, stability_window, self.rng,
                record_trajectory, trajectory_capacity,
            )
        t0 = monotonic_time()
        result = self._dispatch(
            configuration, max_steps, stability_window, self.rng,
            record_trajectory, trajectory_capacity,
        )
        elapsed = monotonic_time() - t0
        engine_name = self._choice or "reference"
        if profiler is not None:
            profiler.record(engine_name, result.steps, elapsed)
        _obs_trace.span_event(
            "run", "run", t0, elapsed,
            engine=engine_name, steps=result.steps,
            consensus=result.consensus, terminated=result.terminated,
        )
        return result

    def _dispatch(
        self,
        configuration: Configuration,
        max_steps: int,
        stability_window: int,
        rng: random.Random,
        record_trajectory: bool = False,
        trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
    ) -> SimulationResult:
        """Route a run to the compiled engine when possible."""
        if record_trajectory and trajectory_capacity < 1:
            raise ValueError("trajectory_capacity must be at least 1")
        if self._stepper is not None:
            counts = self._compiled.counts_of(configuration)
            if counts is not None:
                return self._run_compiled(
                    configuration, counts, max_steps, stability_window, rng,
                    record_trajectory, trajectory_capacity,
                )
            if self.engine in ("compiled", "numpy", "ensemble"):
                raise ValueError(
                    "configuration mentions states outside the compiled universe; "
                    "use engine='auto' or engine='reference'"
                )
        return self._run_reference(
            configuration, max_steps, stability_window, rng,
            record_trajectory, trajectory_capacity,
        )

    # ------------------------------------------------------------------
    # Compiled engine
    # ------------------------------------------------------------------
    def _initial_output_counters(self, counts: List[int]) -> Tuple[int, int, int]:
        """The ``(one, zero, undef)`` output-class counters of dense counts."""
        classes = self._classes
        one = zero = undef = 0
        for index, count in enumerate(counts):
            if count:
                kind = classes[index]
                if kind == OUT_ONE:
                    one += count
                elif kind == OUT_ZERO:
                    zero += count
                elif kind == OUT_UNDEFINED:
                    undef += count
        return one, zero, undef

    def _run_compiled(
        self,
        initial: Configuration,
        counts: List[int],
        max_steps: int,
        stability_window: int,
        rng: random.Random,
        record_trajectory: bool = False,
        trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
    ) -> SimulationResult:
        classes = self._classes
        one, zero, undef = self._initial_output_counters(counts)
        trajectory = None
        if record_trajectory:
            # The run fires at most max_steps transitions, so the physical
            # buffer never needs to exceed that — a huge trajectory_capacity
            # on a short run should not allocate gigabytes.  The reported
            # capacity stays as requested: with total_fired <= max_steps the
            # surviving suffix is the same either way.
            physical = max(1, min(trajectory_capacity, max_steps))
            ring = [0] * physical
            stepper = self._compiled.stepper(self._kind, classes, record=True)
            steps, value, since, terminated = stepper(
                counts, rng, max_steps, stability_window, one, zero, undef,
                ring, physical,
            )
            trajectory = Trajectory.from_ring(
                ring, steps, physical, reported_capacity=trajectory_capacity
            )
        else:
            steps, value, since, terminated = self._stepper(
                counts, rng, max_steps, stability_window, one, zero, undef
            )
        return SimulationResult(
            initial=initial,
            final=self._compiled.configuration_of(counts),
            steps=steps,
            consensus=value if value >= 0 else None,
            consensus_step=since if since >= 0 else None,
            terminated=terminated,
            interactions_sampled=steps,
            trajectory=trajectory,
        )

    # ------------------------------------------------------------------
    # Sparse reference engine
    # ------------------------------------------------------------------
    def _run_reference(
        self,
        configuration: Configuration,
        max_steps: int,
        stability_window: int,
        rng: random.Random,
        record_trajectory: bool = False,
        trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
    ) -> SimulationResult:
        initial = configuration
        current = configuration
        consensus_value = self._consensus(current)
        consensus_since: Optional[int] = 0 if consensus_value is not None else None
        interactions = 0
        # Recording: a deque bounded to the ring capacity keeps the *last*
        # ``trajectory_capacity`` fired indices, matching the compiled engine's
        # ring-buffer semantics exactly.
        ring: Optional[deque] = None
        index_of_transition = None
        if record_trajectory:
            ring = deque(maxlen=trajectory_capacity)
            index_of_transition = {t: i for i, t in enumerate(self.net.transitions)}

        def trajectory() -> Optional[Trajectory]:
            if ring is None:
                return None
            return Trajectory(
                transition_indices=tuple(ring),
                total_fired=interactions,
                capacity=trajectory_capacity,
            )

        for step in range(1, max_steps + 1):
            transition = self.scheduler.choose(self.net, current, rng)
            if transition is None:
                # Terminal configuration: the consensus (if any) is definitive.
                return SimulationResult(
                    initial=initial,
                    final=current,
                    steps=step - 1,
                    consensus=consensus_value,
                    consensus_step=consensus_since,
                    terminated=True,
                    interactions_sampled=interactions,
                    trajectory=trajectory(),
                )
            current = transition.fire(current)
            interactions += 1
            if ring is not None:
                ring.append(index_of_transition[transition])
            value = self._consensus(current)
            if value is None or value != consensus_value:
                consensus_value = value
                consensus_since = step if value is not None else None
            if (
                consensus_value is not None
                and consensus_since is not None
                and step - consensus_since >= stability_window
            ):
                return SimulationResult(
                    initial=initial,
                    final=current,
                    steps=step,
                    consensus=consensus_value,
                    consensus_step=consensus_since,
                    terminated=False,
                    interactions_sampled=interactions,
                    trajectory=trajectory(),
                )

        return SimulationResult(
            initial=initial,
            final=current,
            steps=max_steps,
            consensus=consensus_value,
            consensus_step=consensus_since,
            terminated=False,
            interactions_sampled=interactions,
            trajectory=trajectory(),
        )

    def _consensus(self, configuration: Configuration) -> Optional[int]:
        """The consensus value of a configuration, or None if outputs disagree."""
        if self.protocol.has_consensus(configuration, OUTPUT_ONE):
            return OUTPUT_ONE
        if self.protocol.has_consensus(configuration, OUTPUT_ZERO):
            return OUTPUT_ZERO
        return None

    # ------------------------------------------------------------------
    # Repeated runs
    # ------------------------------------------------------------------
    def _run_seeds(
        self,
        configuration: Configuration,
        seeds: List[int],
        max_steps: int,
        stability_window: int,
        record_trajectory: bool = False,
        trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
        analytics: Any = None,
    ) -> List[SimulationResult]:
        """Run one repetition per seed from ``configuration``, in seed order.

        The building block of both batch backends (the serial loop here, and
        each worker's share under ``backend="process"``): on the compiled path
        the whole sequence reuses a single dense counts buffer instead of
        reallocating one per repetition.

        ``analytics`` optionally supplies an extraction spec (any object with
        an ``extract(result, protocol)`` method, canonically
        :class:`~repro.analytics.metrics.AnalyticsSpec`).  Each run is then
        recorded internally with a capacity large enough for the complete
        path, its compact metric dict is attached as ``result.analytics``,
        and the bulky trajectory ring is **dropped again** unless the caller
        asked for trajectories too — this is what lets worker processes
        return metrics instead of 65536-entry rings.  The surviving result
        fields (and any requested trajectory) are bit-identical to a run
        without analytics.
        """
        record = record_trajectory
        capacity = trajectory_capacity
        if analytics is not None:
            # Record internally with room for the complete path: a run fires
            # at most max_steps transitions, so max_steps guarantees no ring
            # overwrites (the compiled engine clamps its physical buffer the
            # same way, so a short run never over-allocates).
            record = True
            capacity = max(
                1, max_steps, trajectory_capacity if record_trajectory else 0
            )
        buffer: Optional[List[int]] = None
        if self._stepper is not None:
            buffer = self._compiled.counts_of(configuration)
        if self._choice == "ensemble" and buffer is not None and seeds:
            # Lock-step path: one VectorizedEnsemble run for the whole seed
            # list.  Configurations outside the compiled universe fall
            # through to the per-seed loop below, which either raises (for
            # the explicit engine) or dispatches to the reference engine
            # (auto mode with a forced override) — the same split as the
            # per-run engines.
            return self._run_seeds_ensemble(
                configuration, buffer, seeds, max_steps, stability_window,
                record, capacity, record_trajectory, trajectory_capacity,
                analytics,
            )
        if _obs_trace.tracing_active() or _obs_profile.active_profiler() is not None:
            # Instrumented twin of the loop below; the split keeps the
            # disabled path structurally identical to the uninstrumented
            # code (bench E15 asserts the disabled cost is ≤2%).
            return self._run_seeds_observed(
                configuration, seeds, max_steps, stability_window,
                record, capacity, record_trajectory, trajectory_capacity,
                analytics, buffer,
            )
        results: List[SimulationResult] = []
        for seed in seeds:
            run_rng = random.Random(seed)
            if buffer is not None:
                counts = self._compiled.counts_of(configuration, out=buffer)
                result = self._run_compiled(
                    configuration, counts, max_steps, stability_window, run_rng,
                    record, capacity,
                )
            else:
                result = self._dispatch(
                    configuration, max_steps, stability_window, run_rng,
                    record, capacity,
                )
            if analytics is not None:
                result.analytics = analytics.extract(result, self.protocol)
                self._restore_trajectory(
                    result, record_trajectory, trajectory_capacity
                )
            results.append(result)
        return results

    def _run_seeds_observed(
        self,
        configuration: Configuration,
        seeds: List[int],
        max_steps: int,
        stability_window: int,
        record: bool,
        capacity: int,
        record_trajectory: bool,
        trajectory_capacity: int,
        analytics: Any,
        buffer: Optional[List[int]],
    ) -> List[SimulationResult]:
        """The per-seed loop with tracing/profiling hooks enabled.

        Semantically identical to the plain loop in :meth:`_run_seeds` —
        instrumentation observes result objects and clocks, never the RNG
        stream — plus two monotonic reads, one ``run`` span event, and one
        profiler record per run.
        """
        profiler = _obs_profile.active_profiler()
        engine_name = self._choice or "reference"
        results: List[SimulationResult] = []
        for seed in seeds:
            run_rng = random.Random(seed)
            t0 = monotonic_time()
            if buffer is not None:
                counts = self._compiled.counts_of(configuration, out=buffer)
                result = self._run_compiled(
                    configuration, counts, max_steps, stability_window, run_rng,
                    record, capacity,
                )
            else:
                result = self._dispatch(
                    configuration, max_steps, stability_window, run_rng,
                    record, capacity,
                )
            elapsed = monotonic_time() - t0
            if profiler is not None:
                profiler.record(engine_name, result.steps, elapsed)
            _obs_trace.span_event(
                "run", "run", t0, elapsed,
                seed=int(seed), engine=engine_name, steps=result.steps,
                consensus=result.consensus, terminated=result.terminated,
            )
            if analytics is not None:
                result.analytics = analytics.extract(result, self.protocol)
                self._restore_trajectory(
                    result, record_trajectory, trajectory_capacity
                )
            results.append(result)
        return results

    def _run_seeds_ensemble(
        self,
        configuration: Configuration,
        counts: List[int],
        seeds: List[int],
        max_steps: int,
        stability_window: int,
        record: bool,
        capacity: int,
        record_trajectory: bool,
        trajectory_capacity: int,
        analytics: Any,
    ) -> List[SimulationResult]:
        """Run one repetition per seed through the lock-step ensemble engine.

        ``record``/``capacity`` are the effective recording parameters (the
        analytics path records internally at full capacity, exactly like the
        serial loop), ``record_trajectory``/``trajectory_capacity`` the
        caller's — trajectories are restored to the requested shape after
        metric extraction.  Row ``i`` of the ensemble is bit-identical to a
        per-run engine run seeded with ``seeds[i]``.
        """
        from .ensemble import VectorizedEnsemble
        from .vectorized import require_numpy

        np = require_numpy()
        ensemble = self._ensemble
        if ensemble is None:
            ensemble = VectorizedEnsemble(self._compiled, self._kind, self._classes)
            self._ensemble = ensemble
        one, zero, undef = self._initial_output_counters(counts)
        ring = None
        physical = 0
        if record:
            # Same physical clamp as the per-run recording path: a run fires
            # at most max_steps transitions.
            physical = max(1, min(capacity, max_steps))
            ring = np.zeros((len(seeds), physical), dtype=np.int64)
        profiler = _obs_profile.active_profiler()
        observing = profiler is not None or _obs_trace.tracing_active()
        t0 = monotonic_time() if observing else 0.0
        steps, values, since, terminated, finals = ensemble.run(
            counts, seeds, max_steps, stability_window, one, zero, undef,
            ring, physical,
        )
        # Rows advance in lock step, so per-row wall time is not separable;
        # the observed cost is attributed evenly across rows (timing fields
        # are stripped from the canonical rendering anyway).
        per_row = (
            (monotonic_time() - t0) / max(1, len(seeds)) if observing else 0.0
        )
        results: List[SimulationResult] = []
        for i in range(len(seeds)):
            fired_steps = int(steps[i])
            value = int(values[i])
            value_since = int(since[i])
            trajectory = None
            if ring is not None:
                trajectory = Trajectory.from_ring(
                    ring[i].tolist(), fired_steps, physical,
                    reported_capacity=capacity,
                )
            result = SimulationResult(
                initial=configuration,
                final=self._compiled.configuration_of(finals[i].tolist()),
                steps=fired_steps,
                consensus=value if value >= 0 else None,
                consensus_step=value_since if value_since >= 0 else None,
                terminated=bool(terminated[i]),
                interactions_sampled=fired_steps,
                trajectory=trajectory,
            )
            if observing:
                if profiler is not None:
                    profiler.record("ensemble", fired_steps, per_row)
                _obs_trace.span_event(
                    "run", "run", t0, per_row,
                    seed=int(seeds[i]), engine="ensemble", steps=fired_steps,
                    consensus=result.consensus, terminated=result.terminated,
                )
            if analytics is not None:
                result.analytics = analytics.extract(result, self.protocol)
                self._restore_trajectory(
                    result, record_trajectory, trajectory_capacity
                )
            results.append(result)
        return results

    @staticmethod
    def _restore_trajectory(
        result: SimulationResult, record_trajectory: bool, trajectory_capacity: int
    ) -> None:
        """Undo the internal full-capacity recording of an analytics run.

        Leaves ``result.trajectory`` exactly as a plain run with the caller's
        ``record_trajectory``/``trajectory_capacity`` would have: ``None``
        when recording was not requested, else the last
        ``trajectory_capacity`` firings under the requested capacity — so
        enabling analytics can never change the non-analytics fields.
        """
        if not record_trajectory:
            result.trajectory = None
            return
        trajectory = result.trajectory
        if trajectory is None or trajectory.capacity == trajectory_capacity:
            return
        indices = trajectory.transition_indices
        if len(indices) > trajectory_capacity:
            indices = indices[len(indices) - trajectory_capacity:]
        result.trajectory = Trajectory(
            transition_indices=indices,
            total_fired=trajectory.total_fired,
            capacity=trajectory_capacity,
        )

    def run_many(
        self,
        inputs: Configuration,
        repetitions: int,
        max_steps: int = 100000,
        stability_window: int = 200,
        backend: str = "serial",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        record_trajectory: bool = False,
        trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
        analytics: Any = None,
    ) -> List[SimulationResult]:
        """Simulate several independent executions from the same input.

        Each repetition runs under its own generator seeded from the
        simulator's master generator, so a batch is reproducible from the
        simulator seed while the repetitions stay independent — and the two
        engines agree run-for-run.

        ``backend="serial"`` (default) runs the repetitions in this process,
        reusing a single dense counts buffer on the compiled path;
        ``backend="process"`` fans them out over ``max_workers`` worker
        processes (see :mod:`repro.simulation.batch`).  The per-repetition
        seeds are drawn from the master generator *before* scheduling, and the
        results come back in repetition order, so the two backends return
        bit-identical result lists for the same simulator seed.

        ``analytics`` optionally attaches a compact metric dict per result
        (see :mod:`repro.analytics.metrics`); under ``backend="process"`` the
        extraction runs inside the workers and only the metrics cross the
        pool.
        """
        from .batch import run_ensemble

        if repetitions < 0:
            raise ValueError(f"repetitions must be non-negative, got {repetitions}")
        # A failed batch must not advance the master generator — whether the
        # failure is early validation or a late one (unpicklable payload,
        # malformed worker-count override) — or a corrected retry would
        # silently produce a different ensemble than a fresh simulator with
        # this seed.  Snapshot the stream and restore it on any error.
        rng_state = self.rng.getstate()
        seeds = [self.rng.getrandbits(64) for _ in range(repetitions)]
        try:
            return run_ensemble(
                self.protocol,
                inputs,
                seeds,
                scheduler=self.scheduler,
                engine=self.engine,
                max_steps=max_steps,
                stability_window=stability_window,
                backend=backend,
                max_workers=max_workers,
                chunk_size=chunk_size,
                record_trajectory=record_trajectory,
                trajectory_capacity=trajectory_capacity,
                analytics=analytics,
                _serial_simulator=self,
            )
        except Exception:
            self.rng.setstate(rng_state)
            raise


def simulate(
    protocol: Protocol,
    inputs: Configuration,
    seed: Optional[int] = None,
    max_steps: int = 100000,
    stability_window: int = 200,
    scheduler: Optional[Scheduler] = None,
    engine: str = "auto",
    record_trajectory: bool = False,
    trajectory_capacity: int = DEFAULT_TRAJECTORY_CAPACITY,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(protocol, scheduler=scheduler, seed=seed, engine=engine)
    return simulator.run(
        inputs,
        max_steps=max_steps,
        stability_window=stability_window,
        record_trajectory=record_trajectory,
        trajectory_capacity=trajectory_capacity,
    )
