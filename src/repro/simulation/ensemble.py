"""Lock-step ensemble engine: all repetitions advance together.

The NumPy engine (:mod:`repro.simulation.vectorized`) removes the per-step
dispatch cost of large nets, but an ensemble of ``reps`` repetitions still
pays ``reps`` full Python step loops — ``reps`` cumsum/searchsorted kernel
launches per global step, each over a single run's state.  This module
batches the whole ensemble into one array program: a ``(reps, states)``
``int64`` counts matrix, a ``(reps, padded_transitions)`` weight matrix, and
one kernel launch per *step* rather than per *run-step*, so the fixed NumPy
call overhead (the actual bottleneck at these sizes) is amortized across
every live repetition.

Two structural ideas carry the throughput:

* **Blocked weight selection.**  The per-run engine picks a transition with a
  flat ``O(|T|)`` cumsum + ``searchsorted``.  Here the ``|T|`` weights of each
  row are laid out in ``B`` blocks of ``L`` (``L`` the smallest power of two
  with ``L**2 >= |T|``, zero-padded at the tail), and a per-row *block-sum*
  vector is maintained incrementally alongside the weights.  A pick first
  scans the ``B`` cumulative block sums, then the ``L`` weights of the hit
  block — ``O(sqrt(|T|))`` per row instead of ``O(|T|)``, as one batched
  two-stage kernel for all rows at once.  Because every quantity is an exact
  ``int64`` (guarded by :meth:`VectorizedNet.check_weight_overflow`), the
  blocked pick selects *exactly* the transition the flat scan would.

* **Lock-step retirement.**  Rows share one global step counter (every live
  row fires at every step, so its private step count equals the global one).
  A row leaves the matrix the moment it terminates (no enabled transition),
  stabilizes (consensus unchanged for ``stability_window`` steps) or the
  step budget runs out; the remaining arrays are compacted so late steps pay
  only for the stragglers.

Each row owns a private ``random.Random(seed)`` stream, seeded from the same
pre-derived per-repetition seeds as the serial path, and consumes it with the
exact engine discipline — one ``randrange(total)`` per uniform step, one
``_randbelow(len(enabled))`` per transition-scheduler step (``randrange(n)``
and ``choice``'s index draw are the same stream operation) — so every row is
bit-identical to a per-run engine run with the same derived seed.  The
consensus counters, ring-buffer recording and retire conditions replicate
the per-run stepper loop ordering precisely (budget check before the
dead-configuration check before the stream draw).

This engine is selected with ``engine="ensemble"`` (explicitly, or via
``REPRO_FORCE_ENGINE=ensemble``; ``engine="auto"`` never picks it on its
own).  Single runs under ``engine="ensemble"`` use the per-run NumPy
stepper — same trajectories — while ``Simulator.run_many`` and the batch
layer route whole seed lists through :class:`VectorizedEnsemble`.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .compiled import check_kind
from .vectorized import VectorizedNet, require_numpy

__all__ = ["EnsembleTables", "VectorizedEnsemble"]


class EnsembleTables:
    """Flattened kernel tables for lock-step stepping over a net.

    The per-run NumPy engine keeps one update-plan tuple per transition and
    indexes into it with the (single) fired transition.  The ensemble fires a
    *vector* of transitions per step, so the plans are flattened into global
    CSR arrays indexed by arbitrary fired-transition vectors:

    * ``d_*``: the displacement ``(state, diff)`` pairs of every transition,
    * ``a_*``: the ``affected`` lists (transitions to reweigh after a
      firing), ascending within each transition,
    * ``e_*``: per-transition pre-entry views into the net's global CSR
      (states, multiplicities, binomial divisors),
    * the blocked weight layout (``block``/``num_blocks``/``padded``).

    Tables are protocol-independent (consensus deltas live on the
    :class:`VectorizedEnsemble`) and cached on the net via
    :meth:`VectorizedNet.ensemble_tables`; like stepper closures they are
    dropped on pickling and rebuilt lazily in batch workers.
    """

    def __init__(self, net: VectorizedNet) -> None:
        np = require_numpy()
        num_transitions = net.num_transitions

        # Blocked layout: the smallest power-of-two block length with
        # ``2 * L**2 >= |T|`` balances the two scan stages (the block-sum scan
        # touches ~2L entries, the in-block scan L) at O(sqrt(|T|)) each.
        # One extra all-zero slot is always kept beyond the real transitions
        # (bumping the block count when |T| fills the grid exactly): slot
        # ``|T|`` is the *dummy* target of the fast path's padded affected
        # rows — its weight is identically zero, so it is never selected and
        # contributes nothing to block sums.
        block = 1
        while 2 * block * block < num_transitions:
            block <<= 1
        self.block: int = block
        self.block_shift: int = block.bit_length() - 1
        num_blocks = -(-num_transitions // block) if num_transitions else 0
        if num_blocks * block == num_transitions and num_transitions:
            num_blocks += 1
        self.num_blocks: int = num_blocks
        self.padded: int = self.num_blocks * block

        d_len = [len(delta) for delta in net.delta_lists]
        self.d_len: Any = np.array(d_len, dtype=np.int64)
        self.d_start: Any = np.array(
            np.cumsum([0] + d_len[:-1]), dtype=np.intp
        )
        self.d_idx: Any = np.array(
            [index for delta in net.delta_lists for index, _ in delta],
            dtype=np.intp,
        )
        self.d_val: Any = np.array(
            [diff for delta in net.delta_lists for _, diff in delta],
            dtype=np.int64,
        )

        a_len = [len(affected) for affected in net.affected]
        self.a_len: Any = np.array(a_len, dtype=np.int64)
        self.a_start: Any = np.array(
            np.cumsum([0] + a_len[:-1]), dtype=np.intp
        )
        self.a_trans: Any = np.array(
            [u for affected in net.affected for u in affected], dtype=np.intp
        )

        # Pre-entry views: reuse the net's global CSR (the trailing sentinel
        # entry is never gathered — positions are always explicit).  Every
        # transition in an ``affected`` list has a non-empty pre-set, so
        # every gathered segment is non-empty and ``reduceat``-safe.
        self.e_len: Any = np.array(
            [len(pre) for pre in net.pre_lists], dtype=np.int64
        )
        self.e_start: Any = net._pre_starts
        self.e_state: Any = net._pre_states
        self.e_mult: Any = net._pre_mults
        self.e_div: Any = net._pre_divisors
        self.max_mult: int = net._max_mult
        #: Width-2 unit-multiplicity nets (every population protocol of the
        #: paper): the segmented weight product collapses to one strided
        #: multiply, the segmented enabledness AND to one strided ``&``.
        self.all_pairs: bool = bool(num_transitions) and net._max_mult == 1 and all(
            len(pre) == 2 for pre in net.pre_lists
        )

        # Padded fast-path tables for the uniform kind on width-2 nets.  The
        # ragged gather chain above is general but launches ~a dozen kernels
        # per step on tiny arrays; padding the displacement and affected
        # lists to rectangles turns each chain into a couple of flat gathers.
        # Padding conventions make masks unnecessary:
        #
        # * displacement rows pad with ``(state=num_states, diff=0)`` — the
        #   scratch column the ensemble allocates beyond the real states, so
        #   padded scatter-adds land harmlessly out of band,
        # * affected rows pad with the *dummy* weight slot ``num_transitions``
        #   (guaranteed to exist by the padded block layout) and with the
        #   scratch column as both pre states: the recomputed pad weight is
        #   ``0 * 0 = 0``, the stored dummy weight is always ``0``, so every
        #   pad delta is exactly zero and pad writes rewrite ``0`` in place —
        #   no double counting and no masking.
        #
        # Heavily skewed affected lists would make the rectangle mostly
        # padding, so the fast path is gated on the max staying within a
        # small factor of the mean.
        self.fast_uniform: bool = False
        if self.all_pairs:
            mean_a = float(sum(a_len)) / num_transitions
            max_a = max(a_len)
            self.fast_uniform = max_a <= 4.0 * mean_a + 8.0
        if self.fast_uniform:
            self.p_s0: Any = np.array(
                [pre[0][0] for pre in net.pre_lists], dtype=np.intp
            )
            self.p_s1: Any = np.array(
                [pre[1][0] for pre in net.pre_lists], dtype=np.intp
            )
            # The padded index tables are the hot path's main memory traffic
            # (gathered at a fresh row set every step); int32 halves it.  The
            # run loop adds int64 row offsets out-of-place, so index math is
            # promoted before anything can overflow.
            d_max = max(d_len)
            d_idx_pad = np.full(
                (num_transitions, d_max), net.num_states, dtype=np.int32
            )
            d_val_pad = np.zeros((num_transitions, d_max), dtype=np.int64)
            for t, delta in enumerate(net.delta_lists):
                for k, (index, diff) in enumerate(delta):
                    d_idx_pad[t, k] = index
                    d_val_pad[t, k] = diff
            self.d_idx_pad: Any = d_idx_pad
            self.d_val_pad: Any = d_val_pad
            a_max = max(a_len)
            a_pad = np.full(
                (num_transitions, a_max), num_transitions, dtype=np.int32
            )
            for t, affected in enumerate(net.affected):
                a_pad[t, : len(affected)] = affected
            self.a_pad: Any = a_pad
            #: ``(|T|, 2 * a_max)``: the two pre states of every affected
            #: transition, first-operand half then second-operand half, so
            #: one gather plus one flat state lookup yields both factor
            #: vectors of the reweigh product.  Pad entries point at the
            #: scratch column (count identically zero).
            s0x = np.append(self.p_s0, net.num_states)
            s1x = np.append(self.p_s1, net.num_states)
            self.a_states_pad: Any = np.concatenate(
                [s0x[a_pad], s1x[a_pad]], axis=1
            ).astype(np.int32)

    def __repr__(self) -> str:
        return (
            f"EnsembleTables(blocks={self.num_blocks}x{self.block}, "
            f"all_pairs={self.all_pairs})"
        )


class VectorizedEnsemble:
    """A lock-step batch of repetitions over one net and scheduler kind.

    Satisfies the :class:`~repro.simulation.compiled.Stepper` protocol
    (``source()`` is ``None`` — there is no generated code; the QA auditor
    checks the :class:`EnsembleTables` plan structures instead, and
    :attr:`qa_meta` names the implementation), except that one ``__call__``
    advances a whole seed list rather than a single run.
    """

    def __init__(
        self, net: VectorizedNet, kind: str, classes: Tuple[int, ...]
    ) -> None:
        check_kind(kind)
        np = require_numpy()
        self.net = net
        self.kind = kind
        self.classes = tuple(classes)
        self.tables = net.ensemble_tables()
        self._dcons: Any = np.array(
            net.consensus_deltas(self.classes), dtype=np.int64
        ).reshape(net.num_transitions, 3)
        self.qa_meta: Dict[str, object] = {
            "label": f"{net.net.name or 'net'}/{kind}/ensemble",
            "kind": kind,
            "record": None,  # the run loop branches on ring is None
            "num_transitions": net.num_transitions,
            "implementation": "numpy-ensemble",
        }

    def source(self) -> Optional[str]:
        """Ensemble steppers have no generated source (audit the tables)."""
        return None

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.run(*args, **kwargs)

    def __repr__(self) -> str:
        return f"VectorizedEnsemble({self.qa_meta.get('label', '?')})"

    def run(
        self,
        counts: Sequence[int],
        seeds: Sequence[int],
        max_steps: int,
        stability_window: int,
        one: int,
        zero: int,
        undef: int,
        ring: Optional[Any] = None,
        capacity: int = 0,
    ) -> Tuple[Any, Any, Any, Any, Any]:
        """Advance every seed's run to completion, all rows in lock step.

        ``counts`` is the shared dense initial configuration, ``one`` /
        ``zero`` / ``undef`` its output-class counters (as for the per-run
        steppers).  ``ring``, if given, is a ``(len(seeds), capacity)`` int64
        matrix; row ``i`` receives the same ring-buffer write sequence as the
        per-run recording stepper for seed ``seeds[i]``.

        Returns ``(steps, values, since, terminated, final_counts)`` arrays —
        per row, exactly the per-run stepper's return tuple plus the final
        dense counts.
        """
        np = require_numpy()
        net = self.net
        tables = self.tables
        uniform = self.kind == "uniform"
        fast = uniform and tables.fast_uniform
        if uniform:
            net.check_weight_overflow(counts, max_steps)

        reps = len(seeds)
        num_states = net.num_states
        base = np.array(list(counts), dtype=np.int64)
        # One scratch column beyond the real states absorbs the padded
        # displacement writes of the fast path (all +0); every real state
        # index is below ``num_states``, so real runs never read it.
        state = np.zeros((reps, num_states + 1), dtype=np.int64)
        state[:, :num_states] = base

        weights: Any = None
        blocksums: Any = None
        totals: Any = None
        enabled: Any = None
        if uniform:
            weights = np.zeros((reps, tables.padded), dtype=np.int64)
            if net.num_transitions:
                weights[:, : net.num_transitions] = net.full_weights(base)
            blocksums = weights.reshape(
                reps, tables.num_blocks, tables.block
            ).sum(axis=2)
            totals = blocksums.sum(axis=1)
        else:
            enabled = np.tile(net.full_enabled(base), (reps, 1))

        if undef == 0:
            cv0 = 0 if one == 0 else (1 if zero == 0 else -1)
        else:
            cv0 = -1
        cons = np.tile(np.array([one, zero, undef], dtype=np.int64), (reps, 1))
        cv = np.full(reps, cv0, dtype=np.int64)
        csince = np.full(reps, 0 if cv0 >= 0 else -1, dtype=np.int64)

        # One private stream per row, pre-seeded like the serial path.  The
        # draw below inlines random.Random._randbelow_with_getrandbits —
        # bit_length bits, rejecting overshoots — which is exactly what both
        # randrange(total) and choice's index draw consume, minus the Python
        # call layers (the draw loop is the only per-row scalar work left).
        rands: List[Any] = [random.Random(seed).getrandbits for seed in seeds]
        orig = np.arange(reps, dtype=np.intp)
        row_ids = np.arange(reps, dtype=np.intp)
        num_blocks = tables.num_blocks
        block = tables.block

        # Flat views and per-row flat offsets: gathers/scatters through a 1D
        # index are several times cheaper than 2D advanced indexing here, so
        # the hot path addresses ``state``/``weights`` through raveled views.
        # ``cumbuf`` carries the per-row cumulative block sums behind a
        # permanent leading zero column, so the "sum of blocks before the hit
        # block" lookup needs no masking for hit 0.  All of these are
        # recomputed on compaction.
        sflat: Any = state.ravel()
        wflat: Any = None
        roff_s: Any = None
        roff_w: Any = None
        roff_b: Any = None
        roff_c: Any = None
        cumbuf: Any = None
        if uniform:
            wflat = weights.ravel()
            roff_s = row_ids * (num_states + 1)
            roff_w = row_ids * tables.padded
            roff_b = row_ids * num_blocks
            roff_c = row_ids * (num_blocks + 1)
            cumbuf = np.zeros((reps, num_blocks + 1), dtype=np.int64)

        out_steps = np.zeros(reps, dtype=np.int64)
        out_value = np.full(reps, cv0, dtype=np.int64)
        out_since = np.full(reps, 0 if cv0 >= 0 else -1, dtype=np.int64)
        out_term = np.zeros(reps, dtype=bool)
        out_counts = np.tile(base, (reps, 1))
        step = 0

        def retire(mask: Any, terminated: bool) -> None:
            """Flush ``mask`` rows to the output arrays and compact the rest."""
            nonlocal state, cons, cv, csince, orig, rands, row_ids
            nonlocal weights, blocksums, totals, enabled
            nonlocal sflat, wflat, roff_s, roff_w, roff_b, roff_c, cumbuf
            rows = orig[mask]
            out_steps[rows] = step
            out_value[rows] = cv[mask]
            out_since[rows] = csince[mask]
            out_term[rows] = terminated
            out_counts[rows] = state[mask, :num_states]
            keep = ~mask
            state = state[keep]
            cons = cons[keep]
            cv = cv[keep]
            csince = csince[keep]
            orig = orig[keep]
            rands = [r for r, k in zip(rands, keep.tolist()) if k]
            if uniform:
                weights = weights[keep]
                blocksums = blocksums[keep]
                totals = totals[keep]
            else:
                enabled = enabled[keep]
            row_ids = np.arange(orig.size, dtype=np.intp)
            sflat = state.ravel()
            if uniform:
                wflat = weights.ravel()
                roff_s = row_ids * (num_states + 1)
                roff_w = row_ids * tables.padded
                roff_b = row_ids * num_blocks
                roff_c = row_ids * (num_blocks + 1)
                cumbuf = np.zeros((orig.size, num_blocks + 1), dtype=np.int64)

        while orig.size:
            # Loop ordering mirrors the per-run stepper exactly: budget check,
            # then the dead-configuration check, then the stream draw.
            if step >= max_steps:
                rows = orig
                out_steps[rows] = step
                out_value[rows] = cv
                out_since[rows] = csince
                out_counts[rows] = state[:, :num_states]
                break
            live_tot = totals if uniform else enabled.sum(axis=1)
            dead = live_tot <= 0
            if dead.any():
                retire(dead, True)
                if not orig.size:
                    break
                live_tot = live_tot[~dead]

            picks_list: List[int] = []
            append_pick = picks_list.append
            for bits, total in zip(rands, live_tot.tolist()):
                width = total.bit_length()
                pick = bits(width)
                while pick >= total:
                    pick = bits(width)
                append_pick(pick)
            picks = np.array(picks_list, dtype=np.int64)
            step += 1
            nrows = orig.size

            if uniform:
                # Two-level blocked pick == the flat searchsorted: with
                # pick < total, the hit block is the first whose cumulative
                # block sum exceeds pick, and within it the target is the
                # first weight whose local cumulative exceeds the remainder.
                # Tail zero-padding can never be picked (the remainder is
                # strictly below the hit block's sum).  ``cumbuf``'s leading
                # zero column is always ``<= pick``, so the count lands one
                # high and doubles as the "sum of earlier blocks" index.
                np.cumsum(blocksums, axis=1, out=cumbuf[:, 1:])
                hit = (cumbuf <= picks[:, None]).sum(axis=1)
                hit -= 1
                within = picks - cumbuf.ravel()[roff_c + hit]
                blockvals = weights.reshape(nrows, num_blocks, block)[
                    row_ids, hit
                ]
                j = (np.cumsum(blockvals, axis=1) <= within[:, None]).sum(axis=1)
                fired = hit * block + j
            else:
                # choice(enabled_indices) == index of the (k+1)-th set bit
                # for k = _randbelow(n), the same stream draw as randrange(n).
                fired = (np.cumsum(enabled, axis=1) <= picks[:, None]).sum(axis=1)

            if ring is not None:
                ring[orig, (step - 1) % capacity] = fired

            if fast:
                # Padded displacement scatter through the flat view: every
                # flat target is unique except the scratch-column pads, whose
                # duplicate read-modify-writes all add 0.
                didx = tables.d_idx_pad[fired] + roff_s[:, None]
                sflat[didx] += tables.d_val_pad[fired]
                # Padded reweigh: every entry recomputes its transition's
                # weight from the current counts; dummy-slot pads recompute
                # 0 * 0 over a stored 0, so pad deltas vanish and pad writes
                # rewrite 0 in place — no masking required.
                hit_a = tables.a_pad[fired]
                sidx = tables.a_states_pad[fired] + roff_s[:, None]
                vals = sflat[sidx]
                half = hit_a.shape[1]
                new_w = vals[:, :half] * vals[:, half:]
                widx = hit_a + roff_w[:, None]
                deltas_w = new_w - wflat[widx]
                wflat[widx] = new_w
                # Aggregate block-sum deltas by flat (row, block) key with a
                # single duplicate-accumulating scatter-add (dummy-pad keys
                # contribute exact zeros).
                keys = (hit_a >> tables.block_shift) + roff_b[:, None]
                np.add.at(blocksums.ravel(), keys.ravel(), deltas_w.ravel())
                totals += deltas_w.sum(axis=1)
                cons += self._dcons[fired]
                _advance_consensus(np, cons, cv, csince, step)
                stable = (cv >= 0) & ((step - csince) >= stability_window)
                if stable.any():
                    retire(stable, False)
                continue

            # Ragged general path: scatter the displacement of every row's
            # fired transition ((row, state) pairs are unique, so fancy +=
            # is exact), then reweigh / re-enable the affected transitions.
            dl = tables.d_len[fired]
            total_d = int(dl.sum())
            if total_d:
                rr_d = np.repeat(row_ids, dl)
                posd = (
                    np.arange(total_d)
                    - np.repeat(np.cumsum(dl) - dl, dl)
                    + np.repeat(tables.d_start[fired], dl)
                )
                state[rr_d, tables.d_idx[posd]] += tables.d_val[posd]

            al = tables.a_len[fired]
            total_a = int(al.sum())
            if total_a:
                rr_a = np.repeat(row_ids, al)
                posa = (
                    np.arange(total_a)
                    - np.repeat(np.cumsum(al) - al, al)
                    + np.repeat(tables.a_start[fired], al)
                )
                au = tables.a_trans[posa]
                el = tables.e_len[au]
                total_e = int(el.sum())
                seg = np.cumsum(el) - el
                rr_e = np.repeat(rr_a, el)
                pose = (
                    np.arange(total_e)
                    - np.repeat(seg, el)
                    + np.repeat(tables.e_start[au], el)
                )
                entry_states = tables.e_state[pose]
                if uniform:
                    vals = state[rr_e, entry_states]
                    if tables.all_pairs:
                        new_w = vals[0::2] * vals[1::2]
                    else:
                        terms = net._binomials(
                            vals,
                            tables.e_mult[pose],
                            tables.e_div[pose],
                            tables.max_mult,
                        )
                        new_w = np.multiply.reduceat(terms, seg)
                    deltas_w = new_w - weights[rr_a, au]
                    weights[rr_a, au] = new_w
                    # Aggregate weight deltas into block sums and totals with
                    # duplicate-accumulating scatter-adds.
                    blk = au >> tables.block_shift
                    np.add.at(
                        blocksums.ravel(), rr_a * num_blocks + blk, deltas_w
                    )
                    np.add.at(totals, rr_a, deltas_w)
                else:
                    ok = state[rr_e, entry_states] >= tables.e_mult[pose]
                    if tables.all_pairs:
                        enabled[rr_a, au] = ok[0::2] & ok[1::2]
                    else:
                        enabled[rr_a, au] = np.bitwise_and.reduceat(ok, seg)

            cons += self._dcons[fired]
            _advance_consensus(np, cons, cv, csince, step)

            stable = (cv >= 0) & ((step - csince) >= stability_window)
            if stable.any():
                retire(stable, False)

        return out_steps, out_value, out_since, out_term, out_counts


def _advance_consensus(np: Any, cons: Any, cv: Any, csince: Any, step: int) -> None:
    """Refresh consensus values/ages from the counters, in place.

    The per-run stepper only recomputes its consensus value when a counter
    delta is non-zero, but that value always equals this closed form of the
    counters, so an unconditional recompute plus a changed-mask update is
    step-for-step equivalent.
    """
    value = np.where(
        cons[:, 2] > 0,
        -1,
        np.where(cons[:, 0] == 0, 0, np.where(cons[:, 1] == 0, 1, -1)),
    )
    changed = value != cv
    if changed.any():
        csince[changed] = np.where(value[changed] >= 0, step, -1)
        cv[changed] = value[changed]
