"""Aggregation of simulation results.

Convergence-time statistics over repeated runs: how many interactions until a
consensus emerges, what fraction of runs converge, and whether the consensus
matches a reference predicate.  Used by the convergence benchmark and the
domain examples.
"""

from __future__ import annotations

import statistics as _stats
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..core.configuration import Configuration
from ..core.predicates import Predicate
from .simulator import SimulationResult

__all__ = [
    "ConvergenceStatistics",
    "summarize_runs",
    "accuracy_against_predicate",
    "interactions_per_second",
]


@dataclass
class ConvergenceStatistics:
    """Summary statistics of a batch of simulation runs."""

    runs: int
    converged: int
    mean_steps: Optional[float]
    median_steps: Optional[float]
    max_steps: Optional[int]
    min_steps: Optional[int]
    mean_consensus_step: Optional[float]

    @property
    def convergence_rate(self) -> float:
        """The fraction of runs that reached a consensus."""
        if self.runs == 0:
            return 0.0
        return self.converged / self.runs

    def __repr__(self) -> str:
        return (
            f"ConvergenceStatistics(runs={self.runs}, converged={self.converged}, "
            f"mean_steps={self.mean_steps}, mean_consensus_step={self.mean_consensus_step})"
        )


def summarize_runs(results: Sequence[SimulationResult]) -> ConvergenceStatistics:
    """Aggregate a batch of simulation results into convergence statistics.

    Raises :class:`ValueError` on an empty batch: none of the statistics are
    meaningful over zero runs, and a silent all-``None`` summary (or a bare
    ``ZeroDivisionError`` from the averages) hides the real problem — usually
    an ensemble that was never run.
    """
    if not results:
        raise ValueError(
            "cannot summarize an empty batch of simulation results; "
            "run at least one repetition"
        )
    converged = [result for result in results if result.converged]
    step_counts = [result.steps for result in results]
    consensus_steps = [
        result.consensus_step for result in converged if result.consensus_step is not None
    ]
    return ConvergenceStatistics(
        runs=len(results),
        converged=len(converged),
        mean_steps=_stats.fmean(step_counts),
        median_steps=_stats.median(step_counts),
        max_steps=max(step_counts),
        min_steps=min(step_counts),
        mean_consensus_step=_stats.fmean(consensus_steps) if consensus_steps else None,
    )


def accuracy_against_predicate(
    results: Sequence[SimulationResult],
    predicate: Predicate,
    inputs: Configuration,
) -> float:
    """The fraction of runs whose consensus equals the predicate value on ``inputs``.

    Runs without a consensus count as incorrect.  A well-specified protocol
    simulated long enough should score 1.0; lower values indicate either a
    step budget that is too small or a protocol/predicate mismatch.
    """
    if not results:
        return 0.0
    expected = predicate.evaluate(inputs)
    correct = sum(1 for result in results if result.consensus == expected)
    return correct / len(results)


def interactions_per_second(
    results: Sequence[SimulationResult], elapsed_seconds: float
) -> float:
    """Aggregate interaction throughput of a batch of runs.

    ``elapsed_seconds`` is the wall-clock time the batch took; the throughput
    benchmark (E9) uses this to compare the engines.

    Raises :class:`ValueError` for an empty batch or a non-positive duration,
    matching the :func:`summarize_runs` convention: a throughput of nothing
    (or over no time) is a caller bug — usually a timer that never ran —
    and deserves a clear message, not a silent 0.0 or a
    ``ZeroDivisionError``.
    """
    if not results:
        raise ValueError(
            "cannot compute a throughput over an empty batch of simulation "
            "results; run at least one repetition"
        )
    if elapsed_seconds <= 0:
        raise ValueError(
            f"elapsed_seconds must be positive, got {elapsed_seconds} "
            "(was the batch actually timed?)"
        )
    total = sum(result.interactions_sampled for result in results)
    return total / elapsed_seconds
