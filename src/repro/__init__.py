"""repro — reproduction of "State Complexity of Protocols With Leaders" (Leroux, PODC 2022).

The package is organised as follows:

* :mod:`repro.core` — configurations, Petri nets, population protocols with
  leaders, predicates and stable-computation semantics (paper Sections 2–4).
* :mod:`repro.algebra` — integer vectors and Pottier's algorithm for minimal
  solutions of linear Diophantine systems (used by Section 7).
* :mod:`repro.controlstates` — Petri nets with control-states, cycles,
  multicycles, the Euler lemma and the small-cycle lemmas (Section 7).
* :mod:`repro.analysis` — coverability (Rackoff), stabilized configurations
  (Section 5), bottom configurations (Section 6), protocol verification, and
  the state-complexity bounds of Theorem 4.3 / Corollary 4.4 (Section 8).
* :mod:`repro.protocols` — concrete protocol constructions: the classical
  flock-of-birds protocol, the paper's Examples 4.1 and 4.2, and the
  Blondin–Esparza–Jaax succinct protocols (the upper-bound baselines).
* :mod:`repro.simulation` — random-scheduler simulation of protocols.
* :mod:`repro.experiments` — the experiment harness backing the benchmark
  suite and EXPERIMENTS.md.
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]
