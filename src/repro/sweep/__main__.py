"""``python -m repro.sweep`` — see :mod:`repro.sweep.cli`."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
