"""Command-line entry point for sweep execution: ``python -m repro.sweep``.

Three subcommands:

``run``
    Execute (or resume) a sweep: ``--spec`` names a JSON spec file (see
    ``template``), ``--store`` the result table (``.csv`` or ``.jsonl``).
    Running against an existing store **resumes** it: ``done`` cells are
    skipped, everything else is (re)run.  ``--max-cells N`` stops after N
    cells — the controlled-interruption knob the CI smoke job uses to
    exercise resume.  A spec with ``"analytics": true`` additionally
    extracts trajectory analytics in the workers and persists the derived
    columns (render them with ``python -m repro.analytics report``).

``show``
    Render a store as an aligned plain-text table.

``template``
    Print an example spec JSON (the axes and their defaults) to adapt.

Examples
--------
::

    python -m repro.sweep template > sweep.json
    python -m repro.sweep run --spec sweep.json --store results.csv --workers 2
    python -m repro.sweep show --store results.csv
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .runner import SweepRunner, to_experiment_table
from .spec import SweepSpec, available_sweep_protocols
from .store import StoreCorruptionError, open_store

__all__ = ["main"]

_TEMPLATE = SweepSpec(
    protocols=("majority", ("succinct", {"threshold": 8})),
    populations=(25, 50),
    schedulers=("uniform",),
    engines=("compiled", "reference"),
    repetitions=4,
    master_seed=2022,
    max_steps=20000,
    stability_window=500,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description=(
            "Grid sweeps of protocol simulations with incremental, resumable "
            "result tables."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="execute (or resume) a sweep spec against a store"
    )
    run.add_argument(
        "--spec", required=True, metavar="FILE",
        help="JSON sweep spec (see the 'template' subcommand)",
    )
    run.add_argument(
        "--store", required=True, metavar="FILE",
        help="result table path (.csv or .jsonl); reused stores are resumed",
    )
    run.add_argument(
        "--backend", choices=("serial", "process"), default="process",
        help="run cells in-process or over a persistent worker pool",
    )
    run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --backend process (default: CPU count)",
    )
    run.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="repetitions per worker task (default: auto)",
    )
    run.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="stop after attempting N cells (resume later to finish)",
    )
    run.add_argument(
        "--on-error", choices=("raise", "continue"), default="raise",
        help="abort on the first failing cell (default) or record and continue",
    )
    run.add_argument(
        "--no-retry-errors", action="store_true",
        help="on resume, skip cells previously recorded as errors",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    show = commands.add_parser("show", help="render a result store as text")
    show.add_argument("--store", required=True, metavar="FILE")

    commands.add_parser(
        "template",
        help=(
            "print an example spec JSON (available protocols: "
            + ", ".join(available_sweep_protocols()) + ")"
        ),
    )
    return parser


def _command_run(args: argparse.Namespace) -> int:
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = SweepSpec.from_json(handle.read())
    except FileNotFoundError:
        print(f"spec file not found: {args.spec}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"invalid sweep spec: {error}", file=sys.stderr)
        return 2
    try:
        store = open_store(args.store)
    except ValueError as error:  # unknown suffix, or StoreCorruptionError
        print(f"cannot open store: {error}", file=sys.stderr)
        return 2
    if store.recovered_cells:
        print(
            "store: dropped torn trailing row "
            f"({', '.join(filter(None, store.recovered_cells)) or 'unidentified'}); "
            "the cell will be re-run",
        )
    runner = SweepRunner(
        spec,
        store,
        backend=args.backend,
        max_workers=args.workers,
        chunk_size=args.chunk_size,
        retry_errors=not args.no_retry_errors,
    )
    progress = None if args.quiet else print
    try:
        report = runner.run(
            max_cells=args.max_cells, on_error=args.on_error, progress=progress
        )
    except StoreCorruptionError as error:
        # Typically: the spec file was edited (axes, master seed) after the
        # store was written — resuming would mix incompatible tables.
        print(f"store does not match this spec: {error}", file=sys.stderr)
        return 2
    skipped = f"{report.skipped} skipped (already done)"
    if report.skipped_errors:
        skipped = (
            f"{report.skipped} skipped ({report.skipped_errors} of them "
            "previously errored)"
        )
    print(
        f"sweep: {report.total} cells — {report.executed} executed, "
        f"{skipped}, {report.failed} failed, "
        f"{report.remaining} remaining -> {args.store}"
    )
    if report.remaining:
        print("re-run the same command to resume the remaining cells")
    # Deliberate interruption (--max-cells) is not a failure; error rows —
    # fresh or skipped over — are.
    return 1 if (report.failed or report.skipped_errors) else 0


def _command_show(args: argparse.Namespace) -> int:
    try:
        store = open_store(args.store)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if len(store) == 0:
        print(f"store {args.store} is empty")
        return 0
    print(to_experiment_table(store, experiment_id="SWEEP").render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _command_run(args)
    if args.command == "show":
        return _command_show(args)
    print(_TEMPLATE.to_json())
    return 0
