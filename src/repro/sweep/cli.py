"""Command-line entry point for sweep execution: ``python -m repro.sweep``.

Five subcommands:

``run``
    Execute (or resume) a sweep: ``--spec`` names a JSON spec file (see
    ``template``), ``--store`` the result table (``.csv`` or ``.jsonl``,
    or ``.sqlite`` for the claim-capable database store).
    Running against an existing store **resumes** it: ``done`` cells are
    skipped, everything else is (re)run.  ``--max-cells N`` stops after N
    cells — the controlled-interruption knob the CI smoke job uses to
    exercise resume.  A spec with ``"analytics": true`` additionally
    extracts trajectory analytics in the workers and persists the derived
    columns (render them with ``python -m repro.analytics report``).

``workers``
    The fault-tolerant multi-runner mode: start ``--runners N`` independent
    claim-loop runner processes draining one shared ``.sqlite`` store.
    Launchers on *different hosts* pointing at the same path (a shared
    filesystem) cooperate the same way — the claim transactions serialize
    through sqlite.  Runners heartbeat their leases, survive crashed and
    hung cells (retry with exponential backoff, then park as ``error``),
    adopt cells of SIGKILLed peers once their leases expire, and drain
    gracefully on SIGTERM.  ``--fault-plan`` injects a deterministic fault
    script into one runner (``--fault-runner``) for chaos testing.

``export``
    Copy a store's rows into another format — canonically a drained
    ``.sqlite`` claim store into the ``.csv`` a single-process ``run`` of
    the same spec would have written, byte for byte (the CI job's
    distributed-vs-serial comparison).

``show``
    Render a store as an aligned plain-text table.

``template``
    Print an example spec JSON (the axes and their defaults) to adapt.

Examples
--------
::

    python -m repro.sweep template > sweep.json
    python -m repro.sweep run --spec sweep.json --store results.csv --workers 2
    python -m repro.sweep workers --spec sweep.json --store grid.sqlite --runners 4
    python -m repro.sweep export --store grid.sqlite --to results.csv
    python -m repro.sweep show --store results.csv
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
from typing import Dict, List, Optional

from ..obs import profile as _obs_profile
from ..obs import trace as _obs_trace
from .runner import SweepRunner, claim_worker, to_experiment_table
from .spec import SweepSpec, available_sweep_protocols
from .store import StoreCorruptionError, open_store

__all__ = ["main"]

_SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

_TEMPLATE = SweepSpec(
    protocols=("majority", ("succinct", {"threshold": 8})),
    populations=(25, 50),
    schedulers=("uniform",),
    engines=("compiled", "reference"),
    repetitions=4,
    master_seed=2022,
    max_steps=20000,
    stability_window=500,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description=(
            "Grid sweeps of protocol simulations with incremental, resumable "
            "result tables."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="execute (or resume) a sweep spec against a store"
    )
    run.add_argument(
        "--spec", required=True, metavar="FILE",
        help="JSON sweep spec (see the 'template' subcommand)",
    )
    run.add_argument(
        "--store", required=True, metavar="FILE",
        help="result table path (.csv or .jsonl); reused stores are resumed",
    )
    run.add_argument(
        "--backend", choices=("serial", "process"), default="process",
        help="run cells in-process or over a persistent worker pool",
    )
    run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --backend process (default: CPU count)",
    )
    run.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="repetitions per worker task (default: auto)",
    )
    run.add_argument(
        "--max-cells", type=int, default=None, metavar="N",
        help="stop after attempting N cells (resume later to finish)",
    )
    run.add_argument(
        "--on-error", choices=("raise", "continue"), default="raise",
        help="abort on the first failing cell (default) or record and continue",
    )
    run.add_argument(
        "--no-retry-errors", action="store_true",
        help="on resume, skip cells previously recorded as errors",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    workers = commands.add_parser(
        "workers",
        help="start N claim-loop runners draining one shared .sqlite store",
    )
    workers.add_argument(
        "--spec", required=True, metavar="FILE",
        help="JSON sweep spec (see the 'template' subcommand)",
    )
    workers.add_argument(
        "--store", required=True, metavar="FILE",
        help="shared claim store path (.sqlite); created if absent",
    )
    workers.add_argument(
        "--runners", type=int, default=2, metavar="N",
        help="claim-loop runner processes to start (default: 2; 1 runs "
             "in-process)",
    )
    workers.add_argument(
        "--owner-prefix", default="runner", metavar="NAME",
        help="claim owner ids are NAME-0..NAME-(N-1); give each *host* of a "
             "multi-host fleet a distinct prefix (default: runner)",
    )
    workers.add_argument(
        "--backend", choices=("serial", "process"), default="process",
        help="per-runner cell execution backend (default: process)",
    )
    workers.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="pool processes per runner for --backend process "
             "(default: CPU count)",
    )
    workers.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="repetitions per worker task (default: auto)",
    )
    workers.add_argument(
        "--lease", type=float, default=None, metavar="SECONDS",
        help="claim lease duration; an expired lease makes the cell "
             "claimable by other runners (default: 60)",
    )
    workers.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="lease-extension interval while a cell runs (default: lease/3)",
    )
    workers.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="failed-cell retries before parking it as error (default: 3)",
    )
    workers.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help="retry backoff base; attempt k waits base*2^(k-1) (default: 1)",
    )
    workers.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell ensemble (process backend); "
             "expiry counts as a cell failure (default: none)",
    )
    workers.add_argument(
        "--idle-wait", type=float, default=0.2, metavar="SECONDS",
        help="poll interval while waiting out other runners' claims and "
             "backoff windows (default: 0.2)",
    )
    workers.add_argument(
        "--no-wait", action="store_true",
        help="exit when no cell is claimable instead of waiting for "
             "stragglers to drain",
    )
    workers.add_argument(
        "--fault-plan", default=None, metavar="PLAN",
        help="deterministic fault plan (e.g. 'mid-cell@1:kill') injected "
             "into the runner selected by --fault-runner",
    )
    workers.add_argument(
        "--fault-runner", type=int, default=0, metavar="INDEX",
        help="runner index receiving --fault-plan (default: 0)",
    )
    workers.add_argument(
        "--quiet", action="store_true", help="suppress per-claim progress lines"
    )

    export = commands.add_parser(
        "export", help="copy a store's rows into another store format"
    )
    export.add_argument(
        "--store", required=True, metavar="FILE",
        help="source store (.sqlite, .csv or .jsonl)",
    )
    export.add_argument(
        "--to", required=True, metavar="FILE",
        help="destination store path; its suffix picks the format",
    )

    show = commands.add_parser("show", help="render a result store as text")
    show.add_argument("--store", required=True, metavar="FILE")

    commands.add_parser(
        "template",
        help=(
            "print an example spec JSON (available protocols: "
            + ", ".join(available_sweep_protocols()) + ")"
        ),
    )
    return parser


def _command_run(args: argparse.Namespace) -> int:
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec = SweepSpec.from_json(handle.read())
    except FileNotFoundError:
        print(f"spec file not found: {args.spec}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"invalid sweep spec: {error}", file=sys.stderr)
        return 2
    try:
        store = open_store(args.store)
    except ValueError as error:  # unknown suffix, or StoreCorruptionError
        print(f"cannot open store: {error}", file=sys.stderr)
        return 2
    if store.recovered_cells:
        print(
            "store: dropped torn trailing row "
            f"({', '.join(filter(None, store.recovered_cells)) or 'unidentified'}); "
            "the cell will be re-run",
        )
    runner = SweepRunner(
        spec,
        store,
        backend=args.backend,
        max_workers=args.workers,
        chunk_size=args.chunk_size,
        retry_errors=not args.no_retry_errors,
    )
    progress = None if args.quiet else print
    try:
        report = runner.run(
            max_cells=args.max_cells, on_error=args.on_error, progress=progress
        )
    except StoreCorruptionError as error:
        # Typically: the spec file was edited (axes, master seed) after the
        # store was written — resuming would mix incompatible tables.
        print(f"store does not match this spec: {error}", file=sys.stderr)
        return 2
    skipped = f"{report.skipped} skipped (already done)"
    if report.skipped_errors:
        skipped = (
            f"{report.skipped} skipped ({report.skipped_errors} of them "
            "previously errored)"
        )
    print(
        f"sweep: {report.total} cells — {report.executed} executed, "
        f"{skipped}, {report.failed} failed, "
        f"{report.remaining} remaining -> {args.store}"
    )
    if report.remaining:
        print("re-run the same command to resume the remaining cells")
    # Deliberate interruption (--max-cells) is not a failure; error rows —
    # fresh or skipped over — are.
    return 1 if (report.failed or report.skipped_errors) else 0


def _workers_child(
    spec_json: str,
    store_path: str,
    owner: str,
    fault_plan: Optional[str],
    options: Dict[str, object],
    quiet: bool,
) -> None:
    """One launcher-spawned runner process (module-level: must pickle)."""
    claim_worker(
        spec_json,
        store_path,
        owner,
        fault_plan=fault_plan,
        progress=None if quiet else print,
        **options,  # type: ignore[arg-type]
    )


def _command_workers(args: argparse.Namespace) -> int:
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            spec_json = handle.read()
        spec = SweepSpec.from_json(spec_json)
    except FileNotFoundError:
        print(f"spec file not found: {args.spec}", file=sys.stderr)
        return 2
    except ValueError as error:
        print(f"invalid sweep spec: {error}", file=sys.stderr)
        return 2
    if not any(args.store.endswith(suffix) for suffix in _SQLITE_SUFFIXES):
        print(
            f"workers requires a claim-capable store (a {'/'.join(_SQLITE_SUFFIXES)} "
            f"path), got {args.store!r}",
            file=sys.stderr,
        )
        return 2
    if args.runners < 1:
        print(f"--runners must be at least 1, got {args.runners}", file=sys.stderr)
        return 2
    options: Dict[str, object] = dict(
        lease_seconds=args.lease,
        max_retries=args.max_retries,
        backoff_base=args.backoff,
        backend=args.backend,
        max_workers=args.workers,
        chunk_size=args.chunk_size,
        cell_timeout=args.cell_timeout,
        heartbeat_interval=args.heartbeat,
        idle_wait=args.idle_wait,
        wait_for_stragglers=not args.no_wait,
    )

    def _plan_for(index: int) -> Optional[str]:
        return args.fault_plan if index == args.fault_runner else None

    crashed: List[str] = []
    if args.runners == 1:
        # In-process: the launcher *is* the runner, so signals aimed at it
        # (the chaos jobs' SIGKILL, an operator's SIGTERM) hit the claim
        # loop directly.
        owner = f"{args.owner_prefix}-0"
        try:
            claim_worker(
                spec_json,
                args.store,
                owner,
                fault_plan=_plan_for(0),
                progress=None if args.quiet else print,
                **options,  # type: ignore[arg-type]
            )
        except StoreCorruptionError as error:
            print(f"store does not match this spec: {error}", file=sys.stderr)
            return 2
    else:
        processes = []
        for index in range(args.runners):
            owner = f"{args.owner_prefix}-{index}"
            process = multiprocessing.Process(
                target=_workers_child,
                args=(
                    spec_json, args.store, owner, _plan_for(index), options,
                    args.quiet,
                ),
                name=owner,
            )
            process.start()
            processes.append(process)
        for process in processes:
            process.join()
        crashed = [
            f"{process.name} (exit {process.exitcode})"
            for process in processes
            if process.exitcode != 0
        ]

    # The launcher's verdict comes from the store, not the runners: a killed
    # runner is expected under chaos, but the grid must end up accounted for.
    from .dbstore import SqliteResultStore

    store = SqliteResultStore(args.store)
    try:
        counts = store.status_counts()
        unresolved = store.unresolved_count()
    finally:
        store.close()
    done = counts.get("done", 0)
    errors = counts.get("error", 0)
    print(
        f"workers: {len(spec.cells())} cells — {done} done, {errors} error, "
        f"{unresolved} unresolved -> {args.store}"
    )
    if crashed:
        print(f"runners exited abnormally: {', '.join(crashed)}", file=sys.stderr)
    if unresolved:
        print("re-run the same command to resume the remaining cells")
    return 1 if (crashed or errors or unresolved) else 0


def _command_export(args: argparse.Namespace) -> int:
    try:
        source = open_store(args.store)
    except ValueError as error:
        print(f"cannot open store: {error}", file=sys.stderr)
        return 2
    destination = None
    try:
        destination = open_store(args.to)
        destination.import_rows(source.rows())
        destination.flush()
        exported = len(destination)
    except ValueError as error:
        print(f"cannot export: {error}", file=sys.stderr)
        return 2
    finally:
        for store in (source, destination):
            close = getattr(store, "close", None)
            if close is not None:
                close()
    print(f"exported {exported} rows: {args.store} -> {args.to}")
    return 0


def _command_show(args: argparse.Namespace) -> int:
    try:
        store = open_store(args.store)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if len(store) == 0:
        print(f"store {args.store} is empty")
        return 0
    print(to_experiment_table(store, experiment_id="SWEEP").render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        # REPRO_TRACE=1 traces the sweep (spans land in REPRO_TRACE_PATH);
        # REPRO_METRICS=1 enables the engine profiler.  Env knobs are only
        # consulted at CLI entry points like this one — library callers
        # install tracers/profilers programmatically.
        _obs_trace.tracer_from_env()
        _obs_profile.profiling_from_env()
        return _command_run(args)
    if args.command == "workers":
        # The launcher's runner processes call tracer_from_env themselves
        # (claim_worker); installing here too covers the parent's own spans.
        _obs_trace.tracer_from_env()
        _obs_profile.profiling_from_env()
        return _command_workers(args)
    if args.command == "export":
        return _command_export(args)
    if args.command == "show":
        return _command_show(args)
    print(_TEMPLATE.to_json())
    return 0
