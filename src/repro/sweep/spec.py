"""Declarative sweep specifications and their deterministic cell grids.

A :class:`SweepSpec` names the axes of an experiment grid — protocol builders
with parameters, population sizes, scheduler kinds, simulation engines — plus
the scalar run policy (repetitions per cell, master seed, step budget).  It
expands to a list of :class:`SweepCell` values in a **deterministic keyfield
order**: the cartesian product nests protocol → population → scheduler →
engine, each axis in the order the spec lists its values.  The expansion is a
pure function of the spec, so two processes (or two machines) expanding the
same spec agree cell for cell — the property the resumable runner and the
result stores build on.

Seed policy
-----------
Every cell owns a 64-bit seed derived as ``sha256(master_seed | cell id)``,
independent of the cell's position in the grid and of which cells ran before
it.  The runner feeds that seed to the same per-repetition derivation that
``Simulator.run_many``/``BatchRunner.run_many`` use, so a cell's ensemble is
bit-identical whether it runs serially, over a process pool, first, last, or
alone — adding an axis value later changes no other cell's results.

Protocol axis
-------------
Protocols are named entries in a registry (:func:`register_sweep_protocol`)
mapping a name plus a JSON-scalar parameter mapping to a built
:class:`~repro.core.protocol.Protocol` and a population-sized input
configuration.  The built-ins cover the repo's named workloads:

========== =========================== ==========================================
name       parameters (defaults)        inputs at population ``n``
========== =========================== ==========================================
majority   ``a_fraction`` (2/3)         ``round(n * a_fraction)`` agents ``A``,
                                        the rest ``B``
modulo     ``modulus`` (3),             ``n`` agents in the initial state
           ``remainder`` (1)
succinct   ``threshold`` (8)            ``n`` agents in the initial state
flock      ``threshold`` (5)            ``n`` agents in the initial state
========== =========================== ==========================================
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.configuration import Configuration
from ..core.predicates import Predicate
from ..core.protocol import Protocol
from ..protocols.flock_of_birds import flock_of_birds_predicate, flock_of_birds_protocol
from ..protocols.majority import STATE_A, STATE_B, majority_predicate, majority_protocol
from ..protocols.modulo import modulo_predicate, modulo_protocol
from ..protocols.succinct import (
    succinct_leaderless_predicate,
    succinct_leaderless_protocol,
)
from ..simulation.scheduler import Scheduler, TransitionScheduler, UniformScheduler
from ..simulation.simulator import _ENGINES

__all__ = [
    "KEYFIELDS",
    "SCHEDULERS",
    "SweepCell",
    "SweepSpec",
    "available_sweep_protocols",
    "build_inputs_for",
    "build_predicate_for",
    "build_protocol_and_inputs",
    "canonical_params",
    "derive_cell_seed",
    "register_sweep_protocol",
]

#: The keyfields identifying a cell, in canonical order.  ``params`` is the
#: canonical JSON rendering of the protocol parameters, so the tuple of
#: keyfield values is a complete, hashable cell identity.
KEYFIELDS = ("protocol", "params", "population", "scheduler", "engine")

#: Scheduler kinds a spec may name, mapped to their constructors.
SCHEDULERS: Dict[str, Callable[[], Scheduler]] = {
    "uniform": UniformScheduler,
    "transition": TransitionScheduler,
}


# ----------------------------------------------------------------------
# The protocol-builder registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SweepProtocolEntry:
    name: str
    builder: Callable[[int, Mapping[str, object]], Tuple[Protocol, Configuration]]
    allowed_params: frozenset
    build_inputs: Optional[
        Callable[[Protocol, int, Mapping[str, object]], Configuration]
    ] = None
    build_predicate: Optional[
        Callable[[int, Mapping[str, object]], Predicate]
    ] = None


_PROTOCOL_BUILDERS: Dict[str, _SweepProtocolEntry] = {}


def register_sweep_protocol(
    name: str,
    builder: Callable[[int, Mapping[str, object]], Tuple[Protocol, Configuration]],
    allowed_params: Sequence[str] = (),
    build_inputs: Optional[
        Callable[[Protocol, int, Mapping[str, object]], Configuration]
    ] = None,
    build_predicate: Optional[
        Callable[[int, Mapping[str, object]], Predicate]
    ] = None,
) -> None:
    """Register a named protocol builder for use as a sweep-axis value.

    ``builder(population, params)`` must return a ``(protocol, inputs)`` pair
    for the given population size; ``params`` is the (possibly empty) mapping
    from the spec, restricted to ``allowed_params`` keys with JSON-scalar
    values so cell identities stay serializable.  Builders must be
    deterministic: the same ``(population, params)`` must yield the same
    protocol (same transition order) every time, or golden trajectories and
    resumed sweeps would silently diverge.

    ``build_inputs(protocol, population, params)``, when supplied, sizes the
    inputs for a new population against an *already built* protocol, letting
    the sweep runner reuse one protocol (and its compiled caches) across the
    whole population axis instead of rebuilding it per population.  Only
    meaningful when the protocol itself does not depend on the population —
    true of all the built-ins.

    ``build_predicate(population, params)``, when supplied, returns the
    :class:`~repro.core.predicates.Predicate` the protocol stably computes
    for the given parameters.  The sweep runner then scores every cell's
    ensemble against it (the ``accuracy`` column); protocols without a
    registered predicate simply leave the column empty.
    """
    if name in _PROTOCOL_BUILDERS:
        raise ValueError(f"sweep protocol {name!r} is already registered")
    _PROTOCOL_BUILDERS[name] = _SweepProtocolEntry(
        name=name,
        builder=builder,
        allowed_params=frozenset(allowed_params),
        build_inputs=build_inputs,
        build_predicate=build_predicate,
    )


def available_sweep_protocols() -> Tuple[str, ...]:
    """The registered protocol names, sorted."""
    return tuple(sorted(_PROTOCOL_BUILDERS))


def build_protocol_and_inputs(
    name: str, population: int, params: Optional[Mapping[str, object]] = None
) -> Tuple[Protocol, Configuration]:
    """Build a registered protocol and its inputs for one population size."""
    params = dict(params or {})
    entry = _PROTOCOL_BUILDERS.get(name)
    if entry is None:
        raise ValueError(
            f"unknown sweep protocol {name!r} "
            f"(available: {', '.join(available_sweep_protocols())})"
        )
    unknown = set(params) - entry.allowed_params
    if unknown:
        raise ValueError(
            f"sweep protocol {name!r} does not accept parameters "
            f"{sorted(unknown, key=str)} (allowed: {sorted(entry.allowed_params, key=str)})"
        )
    if population < 1:
        raise ValueError(f"population must be at least 1, got {population}")
    return entry.builder(population, params)


def build_inputs_for(
    name: str,
    protocol: Protocol,
    population: int,
    params: Optional[Mapping[str, object]] = None,
) -> Configuration:
    """Size a registered protocol's inputs for one population.

    Uses the entry's dedicated inputs hook when it has one (reusing the
    given, already-built protocol); otherwise falls back to running the full
    builder and keeping only its inputs — configurations compare by state
    value, so they apply to the cached protocol either way.
    """
    params = dict(params or {})
    entry = _PROTOCOL_BUILDERS.get(name)
    if entry is None:
        raise ValueError(f"unknown sweep protocol {name!r}")
    if entry.build_inputs is not None:
        return entry.build_inputs(protocol, population, params)
    _, inputs = build_protocol_and_inputs(name, population, params)
    return inputs


def build_predicate_for(
    name: str, population: int, params: Optional[Mapping[str, object]] = None
) -> Optional[Predicate]:
    """The predicate a registered protocol stably computes, or ``None``.

    ``None`` means the entry registered no predicate (accuracy columns stay
    empty for it); an unknown protocol name raises.
    """
    params = dict(params or {})
    entry = _PROTOCOL_BUILDERS.get(name)
    if entry is None:
        raise ValueError(f"unknown sweep protocol {name!r}")
    if entry.build_predicate is None:
        return None
    return entry.build_predicate(population, params)


def _register_builtin(name, make_protocol, make_inputs, allowed_params,
                      make_predicate=None):
    """Register a built-in from a protocol factory and an inputs sizer."""

    def builder(population, params):
        protocol = make_protocol(params)
        return protocol, make_inputs(protocol, population, params)

    register_sweep_protocol(
        name, builder, allowed_params=allowed_params, build_inputs=make_inputs,
        build_predicate=make_predicate,
    )


def _majority_inputs(protocol, population, params):
    fraction = params.get("a_fraction", 2 / 3)
    if not 0 <= float(fraction) <= 1:
        raise ValueError(f"a_fraction must be within [0, 1], got {fraction}")
    a_count = min(population, round(population * float(fraction)))
    return Configuration({STATE_A: a_count, STATE_B: population - a_count})


def _counting_inputs(protocol, population, params):
    return protocol.counting_input(population)


_register_builtin(
    "majority",
    lambda params: majority_protocol(),
    _majority_inputs,
    allowed_params=("a_fraction",),
    make_predicate=lambda population, params: majority_predicate(),
)
_register_builtin(
    "modulo",
    lambda params: modulo_protocol(
        int(params.get("modulus", 3)), int(params.get("remainder", 1))
    ),
    _counting_inputs,
    allowed_params=("modulus", "remainder"),
    make_predicate=lambda population, params: modulo_predicate(
        int(params.get("modulus", 3)), int(params.get("remainder", 1))
    ),
)
_register_builtin(
    "succinct",
    lambda params: succinct_leaderless_protocol(int(params.get("threshold", 8))),
    _counting_inputs,
    allowed_params=("threshold",),
    make_predicate=lambda population, params: succinct_leaderless_predicate(
        int(params.get("threshold", 8))
    ),
)
_register_builtin(
    "flock",
    lambda params: flock_of_birds_protocol(int(params.get("threshold", 5))),
    _counting_inputs,
    allowed_params=("threshold",),
    make_predicate=lambda population, params: flock_of_birds_predicate(
        int(params.get("threshold", 5))
    ),
)


def canonical_params(params: Mapping[str, object]) -> str:
    """The canonical JSON rendering of a parameter mapping (the cell key).

    Sorted keys, no whitespace — byte-stable across processes and Python
    versions, so it is safe to hash.  Shared by the sweep cell identity and
    the ``repro.serve`` content-addressed job cache; any consumer that wants
    "same parameters → same key" must render through this function rather
    than ``str(dict)``.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


#: Backwards-compatible private alias (pre-serve callers).
_canonical_params = canonical_params


def derive_cell_seed(master_seed: int, scope: str) -> int:
    """The canonical 64-bit seed for an identity scope: ``sha256(master_seed | scope)``.

    This is *the* seed-derivation discipline of the project: the sweep layer
    feeds it a cell's :attr:`SweepCell.seed_scope`, and the serve layer feeds
    it the identical scope for a submitted job, so a served ensemble and the
    equivalent sweep cell draw exactly the same repetition seeds.  Position
    independence (hash of identity, not position in a stream) is what makes
    content-addressed caching sound: the seed depends only on what is being
    simulated, never on when or where.
    """
    digest = hashlib.sha256(f"{master_seed}|{scope}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _integral(name: str, value: object) -> int:
    """Validate a spec scalar as an exact integer (JSON floats welcome).

    Hand-written spec files make ``"4"`` or ``2.5`` easy mistakes; both must
    fail spec validation with a clear :class:`ValueError` rather than
    surface later as a confusing ``TypeError`` or eight identical error
    rows.
    """
    if isinstance(value, bool):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise ValueError(f"{name} must be an integer, got {value!r}")


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One point of the grid: a (protocol, params, population, scheduler,
    engine) combination with a canonical identity string."""

    protocol: str
    params: Mapping[str, object]
    population: int
    scheduler: str
    engine: str

    @property
    def params_json(self) -> str:
        return _canonical_params(self.params)

    @property
    def cell_id(self) -> str:
        """The canonical identity: keyfields joined as ``key=value`` pairs.

        Stable across processes and Python versions (the params render
        through canonical JSON), so it keys the result store and salts the
        cell seed.
        """
        return f"{self.seed_scope};engine={self.engine}"

    @property
    def seed_scope(self) -> str:
        """The engine-free identity that salts the cell seed.

        The engine axis changes *how* a cell simulates, never *what* it
        simulates, and all engines are bit-identical for a fixed seed — so
        engine rows of the same grid point deliberately share their seed:
        their statistics must come out equal, which turns every sweep table
        with an engine axis into a cross-engine regression check.
        """
        return (
            f"protocol={self.protocol};params={self.params_json};"
            f"population={self.population};scheduler={self.scheduler}"
        )

    def keyfields(self) -> Dict[str, object]:
        """The keyfield columns of this cell, in :data:`KEYFIELDS` order."""
        return {
            "protocol": self.protocol,
            "params": self.params_json,
            "population": self.population,
            "scheduler": self.scheduler,
            "engine": self.engine,
        }

    def build(self) -> Tuple[Protocol, Configuration]:
        """Build the cell's protocol and population-sized inputs."""
        return build_protocol_and_inputs(self.protocol, self.population, self.params)

    def build_predicate(self) -> Optional[Predicate]:
        """The predicate the cell's protocol stably computes, if registered."""
        return build_predicate_for(self.protocol, self.population, self.params)

    def make_scheduler(self) -> Scheduler:
        """A fresh scheduler instance of the cell's kind."""
        return SCHEDULERS[self.scheduler]()


# ----------------------------------------------------------------------
# The spec
# ----------------------------------------------------------------------
ProtocolAxisValue = Union[str, Tuple[str, Mapping[str, object]]]


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid over (protocol × population × scheduler × engine).

    Parameters
    ----------
    protocols:
        Axis values: registered protocol names, either bare (``"majority"``)
        or with parameters (``("succinct", {"threshold": 8})``).
    populations:
        Population sizes (positive ints).
    schedulers:
        Scheduler kinds, from :data:`SCHEDULERS` (default: uniform only).
    engines:
        Simulation engines, as for
        :class:`~repro.simulation.simulator.Simulator` (default: auto only).
    repetitions:
        Independent runs per cell (at least 1).
    master_seed:
        Root of the per-cell seed derivation (see module docstring).
    max_steps, stability_window:
        The per-run budget, shared by every cell.
    analytics:
        When true, every cell's ensemble additionally extracts trajectory
        analytics **in the workers** (via the batch layer's ``analytics=``
        knob) and the store persists the derived columns — convergence-time
        quantiles and the top fired transitions — alongside the convergence
        statistics.  Predicate accuracy is scored regardless of this flag.
        Analytics never change which simulations run or how they are seeded,
        so flipping the flag cannot alter any statistic column.

    Instances are validated on construction and immutable; :meth:`cells`
    expands the grid deterministically, and :meth:`to_json` /
    :meth:`from_json` round-trip the spec for the CLI.
    """

    protocols: Sequence[ProtocolAxisValue]
    populations: Sequence[int]
    schedulers: Sequence[str] = ("uniform",)
    engines: Sequence[str] = ("auto",)
    repetitions: int = 8
    master_seed: int = 0
    max_steps: int = 100000
    stability_window: int = 200
    analytics: bool = False

    def __post_init__(self):
        protocols: List[Tuple[str, Dict[str, object]]] = []
        for value in self.protocols:
            if isinstance(value, str):
                name, params = value, {}
            else:
                name, params = value
                params = dict(params)
            if name not in _PROTOCOL_BUILDERS:
                raise ValueError(
                    f"unknown sweep protocol {name!r} "
                    f"(available: {', '.join(available_sweep_protocols())})"
                )
            unknown = set(params) - _PROTOCOL_BUILDERS[name].allowed_params
            if unknown:
                raise ValueError(
                    f"sweep protocol {name!r} does not accept parameters "
                    f"{sorted(unknown, key=str)}"
                )
            try:
                rendered = _canonical_params(params)
            except (TypeError, ValueError) as error:
                raise ValueError(
                    f"parameters of sweep protocol {name!r} must be "
                    f"JSON-serializable: {error}"
                ) from None
            if json.loads(rendered) != params:
                raise ValueError(
                    f"parameters of sweep protocol {name!r} must survive a JSON "
                    "round trip (use plain ints/floats/strings/bools)"
                )
            protocols.append((name, params))
        if not protocols:
            raise ValueError("the sweep needs at least one protocol")
        object.__setattr__(self, "protocols", tuple(protocols))

        populations = tuple(
            _integral("population", p) for p in self.populations
        )
        if not populations:
            raise ValueError("the sweep needs at least one population size")
        if any(p < 1 for p in populations):
            raise ValueError(f"populations must be positive, got {populations}")
        object.__setattr__(self, "populations", populations)

        schedulers = tuple(self.schedulers)
        if not schedulers:
            raise ValueError("the sweep needs at least one scheduler kind")
        for kind in schedulers:
            if kind not in SCHEDULERS:
                raise ValueError(
                    f"unknown scheduler kind {kind!r} "
                    f"(expected one of {tuple(sorted(SCHEDULERS))})"
                )
        object.__setattr__(self, "schedulers", schedulers)

        engines = tuple(self.engines)
        if not engines:
            raise ValueError("the sweep needs at least one engine")
        for engine in engines:
            if engine not in _ENGINES:
                raise ValueError(
                    f"unknown engine {engine!r} (expected one of {_ENGINES})"
                )
        object.__setattr__(self, "engines", engines)

        for axis_name, axis in (
            ("protocols", [f"{n}|{_canonical_params(p)}" for n, p in protocols]),
            ("populations", populations),
            ("schedulers", schedulers),
            ("engines", engines),
        ):
            if len(set(axis)) != len(axis):
                raise ValueError(f"duplicate values on the {axis_name} axis: {axis}")

        if not isinstance(self.analytics, bool):
            raise ValueError(
                f"analytics must be a boolean, got {self.analytics!r}"
            )
        for scalar in ("repetitions", "master_seed", "max_steps", "stability_window"):
            object.__setattr__(self, scalar, _integral(scalar, getattr(self, scalar)))
        if self.repetitions < 1:
            raise ValueError(
                f"repetitions must be at least 1, got {self.repetitions}"
            )
        if self.max_steps < 1:
            raise ValueError(f"max_steps must be at least 1, got {self.max_steps}")
        if self.stability_window < 1:
            raise ValueError(
                f"stability_window must be at least 1, got {self.stability_window}"
            )

    # ------------------------------------------------------------------
    # Expansion and seeds
    # ------------------------------------------------------------------
    def cells(self) -> List[SweepCell]:
        """Expand the grid, in deterministic keyfield order.

        The product nests protocol → population → scheduler → engine, each
        axis in spec order: the engine axis varies fastest.  The expansion
        depends only on the spec, never on prior runs.
        """
        return [
            SweepCell(
                protocol=name,
                params=params,
                population=population,
                scheduler=scheduler,
                engine=engine,
            )
            for (name, params), population, scheduler, engine in itertools.product(
                self.protocols, self.populations, self.schedulers, self.engines
            )
        ]

    def cell_seed(self, cell: SweepCell) -> int:
        """The cell's 64-bit master seed: ``sha256(master_seed | seed scope)``.

        Position-independent (unlike drawing seeds from one shared stream in
        grid order), so extending an axis or resuming a half-finished sweep
        cannot shift any other cell's ensemble.  The scope excludes the
        engine keyfield (see :attr:`SweepCell.seed_scope`): engine rows of
        one grid point re-run the same ensemble, and must therefore report
        identical statistics — a built-in cross-engine agreement check.
        Delegates to :func:`derive_cell_seed` (shared with ``repro.serve``).
        """
        return derive_cell_seed(self.master_seed, cell.seed_scope)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "protocols": [
                {"name": name, "params": dict(params)}
                for name, params in self.protocols
            ],
            "populations": list(self.populations),
            "schedulers": list(self.schedulers),
            "engines": list(self.engines),
            "repetitions": self.repetitions,
            "master_seed": self.master_seed,
            "max_steps": self.max_steps,
            "stability_window": self.stability_window,
            "analytics": self.analytics,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        known = {
            "protocols", "populations", "schedulers", "engines",
            "repetitions", "master_seed", "max_steps", "stability_window",
            "analytics",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown sweep spec fields: {sorted(unknown, key=str)}")
        if "protocols" not in data or "populations" not in data:
            raise ValueError("a sweep spec needs 'protocols' and 'populations'")
        protocols: List[ProtocolAxisValue] = []
        for value in data["protocols"]:
            if isinstance(value, str):
                protocols.append(value)
            elif isinstance(value, Mapping):
                extra = set(value) - {"name", "params"}
                if extra or "name" not in value:
                    raise ValueError(
                        "protocol axis entries must be a name or "
                        f"{{'name', 'params'}} mappings, got {value!r}"
                    )
                protocols.append((value["name"], dict(value.get("params") or {})))
            else:
                protocols.append(tuple(value))
        kwargs = {key: data[key] for key in known & set(data) if key != "protocols"}
        return cls(protocols=protocols, **kwargs)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"sweep spec is not valid JSON: {error}") from None
        if not isinstance(data, Mapping):
            raise ValueError("a sweep spec must be a JSON object")
        return cls.from_dict(data)

    def __len__(self) -> int:
        return (
            len(self.protocols) * len(self.populations)
            * len(self.schedulers) * len(self.engines)
        )
