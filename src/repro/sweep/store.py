"""Resumable on-disk result tables for sweep runs.

One row per grid cell, py_experimenter style: the keyfields identify the
cell, a ``status`` column tracks its lifecycle (``created`` → ``running`` →
``done`` / ``error``), and the result columns carry the cell's convergence
statistics once it completes.  The runner persists the table **incrementally**
— after registering the grid and after every cell — so a killed sweep can be
resumed by reopening the store and skipping the ``done`` rows.

Two interchangeable file formats (:class:`CsvResultStore`,
:class:`JsonlResultStore`) plus an in-memory store for tests and throwaway
experiment runs.  Both file stores share the durability discipline:

* **crash-safe flushes** — every flush writes the complete table to a
  temporary file in the same directory, fsyncs it, and atomically renames it
  over the store path, so the on-disk table is always a complete snapshot
  (never a half-written one), and
* **torn-tail recovery on open** — if the file nevertheless ends mid-row
  (an external writer, a non-atomic copy, a filesystem that lied about the
  rename), the trailing partial row is detected, dropped, and reported via
  :attr:`ResultStore.recovered_cells`; the runner then re-runs that cell
  instead of silently loading garbage.  Corruption anywhere *other* than the
  final row is not plausibly a torn write and raises
  :class:`StoreCorruptionError` instead.

Rows are written in cell-registration order (= the spec's deterministic grid
order) and every value round-trips the format losslessly, so two sweeps of
the same spec — serial or process-parallel, straight through or killed and
resumed — produce **byte-identical** store files.
"""

from __future__ import annotations

import csv
import io
import json
import os
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .spec import KEYFIELDS

__all__ = [
    "COLUMNS",
    "STATUS_CREATED",
    "STATUS_DONE",
    "STATUS_ERROR",
    "STATUS_RUNNING",
    "CsvResultStore",
    "JsonlResultStore",
    "MemoryResultStore",
    "ResultStore",
    "StoreCorruptionError",
    "normalize_error_message",
    "open_store",
]

STATUS_CREATED = "created"
STATUS_RUNNING = "running"
STATUS_DONE = "done"
STATUS_ERROR = "error"
_STATUSES = (STATUS_CREATED, STATUS_RUNNING, STATUS_DONE, STATUS_ERROR)

#: The trajectory-analytics columns persisted per cell: predicate accuracy
#: (scored for every sweep whose protocol registers a predicate), the
#: convergence-time quantiles, and the top fired transitions — the latter two
#: filled only when the spec enables analytics extraction.
ANALYTICS_COLUMNS = (
    "accuracy",
    "consensus_q10",
    "consensus_q50",
    "consensus_q90",
    "top_transitions",
)

#: The fixed column set: the cell identity, its keyfields, the seed and
#: status, then the convergence statistics and trajectory analytics (None
#: until the cell is done).
COLUMNS = (
    ("cell",) + KEYFIELDS
    + (
        "seed",
        "status",
        "runs",
        "converged",
        "convergence_rate",
        "mean_steps",
        "median_steps",
        "min_steps",
        "max_steps",
        "mean_consensus_step",
    )
    + ANALYTICS_COLUMNS
    + ("error",)
)

_INT_COLUMNS = frozenset(
    {"population", "seed", "runs", "converged", "min_steps", "max_steps"}
)
_FLOAT_COLUMNS = frozenset(
    {
        "convergence_rate", "mean_steps", "median_steps", "mean_consensus_step",
        "accuracy", "consensus_q10", "consensus_q50", "consensus_q90",
    }
)
#: Statistic/diagnostic columns cleared when a cell (re)starts.
_RESULT_COLUMNS = (
    "runs", "converged", "convergence_rate", "mean_steps", "median_steps",
    "min_steps", "max_steps", "mean_consensus_step",
) + ANALYTICS_COLUMNS + ("error",)


class StoreCorruptionError(ValueError):
    """The store file is damaged beyond the recoverable torn-tail case."""


def open_store(path: Union[str, Path]) -> "ResultStore":
    """Open (or create) a file-backed store, picking the format by suffix.

    ``.csv`` maps to :class:`CsvResultStore`; ``.jsonl`` / ``.ndjson`` /
    ``.json`` to :class:`JsonlResultStore`; ``.sqlite`` / ``.sqlite3`` /
    ``.db`` to the claim-capable
    :class:`~repro.sweep.dbstore.SqliteResultStore`.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".csv":
        return CsvResultStore(path)
    if suffix in (".jsonl", ".ndjson", ".json"):
        return JsonlResultStore(path)
    if suffix in (".sqlite", ".sqlite3", ".db"):
        # Imported lazily: dbstore subclasses ResultStore from this module.
        from .dbstore import SqliteResultStore

        return SqliteResultStore(path)
    raise ValueError(
        f"cannot infer a store format from {path.name!r}; "
        "use a .csv, .jsonl or .sqlite path (or construct a store class directly)"
    )


class ResultStore:
    """Base class: an ordered map cell id → row with persistence hooks.

    Subclasses implement :meth:`_render` (the full table as text) and
    :meth:`_parse` (text back into rows + the recoverable torn tail).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path: Optional[Path] = Path(path) if path is not None else None
        self._rows: Dict[str, Dict[str, object]] = {}
        #: Cell ids whose trailing rows were dropped as torn on load; the
        #: runner re-runs them (and tests assert they were noticed).
        self.recovered_cells: Tuple[str, ...] = ()
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # Row lifecycle
    # ------------------------------------------------------------------
    def ensure(
        self, cell_id: str, keyfields: Mapping[str, object], seed: int
    ) -> bool:
        """Register a cell with status ``created`` unless already present.

        A cell that is already present must agree on its keyfields and seed:
        a mismatch means the store belongs to a *different* spec or master
        seed, and resuming would mix incompatible tables — raise instead.
        Returns True when the row was newly created.
        """
        existing = self._rows.get(cell_id)
        if existing is not None:
            for key, value in keyfields.items():
                if existing.get(key) != value:
                    raise StoreCorruptionError(
                        f"store row for {cell_id!r} disagrees on {key!r} "
                        f"({existing.get(key)!r} != {value!r}); this store was "
                        "written by a different sweep spec"
                    )
            if existing.get("seed") != seed:
                raise StoreCorruptionError(
                    f"store row for {cell_id!r} carries seed "
                    f"{existing.get('seed')!r}, expected {seed}; this store "
                    "was written with a different master seed"
                )
            return False
        row: Dict[str, object] = {column: None for column in COLUMNS}
        row.update(keyfields)
        row["cell"] = cell_id
        row["seed"] = seed
        row["status"] = STATUS_CREATED
        self._rows[cell_id] = row
        return True

    def mark_running(self, cell_id: str) -> None:
        """Flag a cell as in flight, clearing any stale results."""
        row = self._row(cell_id)
        row["status"] = STATUS_RUNNING
        for column in _RESULT_COLUMNS:
            row[column] = None

    def mark_done(
        self,
        cell_id: str,
        statistics,
        accuracy: Optional[float] = None,
        consensus_quantiles: Optional[Sequence[Optional[float]]] = None,
        top_transitions: Optional[str] = None,
    ) -> None:
        """Record a completed cell's convergence statistics and analytics.

        ``statistics`` is a
        :class:`~repro.simulation.statistics.ConvergenceStatistics`.  Float
        columns are coerced to ``float`` (``statistics.median`` can be an
        int) so the rendered value is format-stable across resume cycles.
        ``accuracy`` is the predicate-accuracy rate (None when the protocol
        registers no predicate); ``consensus_quantiles`` the
        (q10, q50, q90) convergence-time quantiles and ``top_transitions``
        their rendered top-k histogram — both None when the sweep runs
        without analytics extraction.
        """
        self._row(cell_id).update(
            _done_values(statistics, accuracy, consensus_quantiles, top_transitions)
        )

    def mark_error(self, cell_id: str, message: str) -> None:
        """Record a failed cell (kept for inspection; retried on resume).

        The message is normalized to a single line (see
        :func:`normalize_error_message`): every store row must stay one
        physical line so the line-oriented torn-tail recovery and the
        byte-stable round trip hold for arbitrary exception text.
        """
        row = self._row(cell_id)
        row["status"] = STATUS_ERROR
        for column in _RESULT_COLUMNS:
            row[column] = None
        row["error"] = normalize_error_message(message)

    def _row(self, cell_id: str) -> Dict[str, object]:
        row = self._rows.get(cell_id)
        if row is None:
            raise KeyError(f"unknown cell {cell_id!r}; call ensure() first")
        return row

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def status(self, cell_id: str) -> Optional[str]:
        """The cell's status, or None if the store has no row for it."""
        row = self._rows.get(cell_id)
        return None if row is None else row["status"]

    def get(self, cell_id: str) -> Optional[Dict[str, object]]:
        """A copy of the cell's row, or None."""
        row = self._rows.get(cell_id)
        return None if row is None else dict(row)

    def rows(self) -> List[Dict[str, object]]:
        """Copies of all rows, in registration order."""
        return [dict(row) for row in self._rows.values()]

    def status_counts(self) -> Dict[str, int]:
        """How many rows hold each status (absent statuses omitted)."""
        counts: Dict[str, int] = {}
        for row in self._rows.values():
            status = row["status"]
            counts[status] = counts.get(status, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, cell_id: str) -> bool:
        return cell_id in self._rows

    def import_rows(self, rows: Sequence[Mapping[str, object]]) -> None:
        """Adopt fully-formed rows verbatim, in order (the export bridge).

        ``rows`` must be :data:`COLUMNS`-shaped mappings (as returned by
        another store's :meth:`rows`); existing rows with the same cell id
        are replaced.  Used by ``python -m repro.sweep export`` to render a
        sqlite claim store as a CSV/JSONL table byte-identical to what a
        single-process sweep of the same spec would have written.
        """
        for row in rows:
            cell_id = row.get("cell")
            if not cell_id:
                raise ValueError("imported rows must carry a 'cell' id")
            status = row.get("status")
            if status not in _STATUSES:
                raise ValueError(
                    f"imported row for {cell_id!r} carries invalid status "
                    f"{status!r}"
                )
            self._rows[str(cell_id)] = {
                column: row.get(column) for column in COLUMNS
            }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Atomically persist the full table: write-temp, fsync, rename.

        The store file is therefore always a complete snapshot; a crash
        between flushes loses at most the cells completed since the last
        flush (which resume simply re-runs), never the file's integrity.
        """
        if self.path is None:
            return
        rendered = self._render(list(self._rows.values()))
        temporary = self.path.with_name(self.path.name + ".tmp")
        with open(temporary, "w", encoding="utf-8", newline="") as handle:
            handle.write(rendered)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, self.path)

    def _load(self) -> None:
        text = self.path.read_text(encoding="utf-8")
        rows, recovered = self._parse(text)
        self._rows = {}
        for row in rows:
            status = row.get("status")
            if status not in _STATUSES:
                raise StoreCorruptionError(
                    f"{self.path}: row for {row.get('cell')!r} carries invalid "
                    f"status {status!r}"
                )
            cell_id = row.get("cell")
            if not cell_id:
                raise StoreCorruptionError(f"{self.path}: row without a cell id")
            if cell_id in self._rows:
                raise StoreCorruptionError(
                    f"{self.path}: duplicate row for cell {cell_id!r}"
                )
            self._rows[cell_id] = {column: row.get(column) for column in COLUMNS}
        self.recovered_cells = tuple(recovered)

    # Subclass hooks -----------------------------------------------------
    def _render(self, rows: Sequence[Mapping[str, object]]) -> str:
        raise NotImplementedError

    def _parse(
        self, text: str
    ) -> Tuple[List[Dict[str, object]], List[str]]:
        raise NotImplementedError

    def __repr__(self) -> str:
        location = "memory" if self.path is None else str(self.path)
        counts = ", ".join(
            f"{status}={count}" for status, count in sorted(self.status_counts().items())
        )
        return f"{type(self).__name__}({location}, rows={len(self)}{', ' + counts if counts else ''})"


class MemoryResultStore(ResultStore):
    """An in-memory store: same interface, no persistence (flush is a no-op)."""

    def __init__(self):
        super().__init__(path=None)


def _optional_float(value) -> Optional[float]:
    return None if value is None else float(value)


def _optional_int(value) -> Optional[int]:
    return None if value is None else int(value)


def normalize_error_message(message: object) -> str:
    """Collapse an exception message onto one physical line.

    Newlines (any flavour) become the literal two-character sequence
    ``\\n``.  Two reasons, both regression-tested:

    * ``Path.read_text`` performs universal-newline translation, so a raw
      ``\\r`` / ``\\r\\n`` inside a CSV field silently mutates into ``\\n``
      on reload — the store round trip would not be byte-stable, breaking
      the kill-and-resume byte-identity guarantee for tables holding a
      multi-line traceback in an ``error`` row;
    * torn-tail recovery is line-oriented (the final *physical* line of a
      torn file is dropped); a row spanning several physical lines would
      make a mid-row tear unrecognizable.
    """
    text = str(message).replace("\r\n", "\n").replace("\r", "\n")
    return text.replace("\n", "\\n")


def _done_values(
    statistics,
    accuracy: Optional[float] = None,
    consensus_quantiles: Optional[Sequence[Optional[float]]] = None,
    top_transitions: Optional[str] = None,
) -> Dict[str, object]:
    """The column updates recording a completed cell.

    Shared by :meth:`ResultStore.mark_done` and the claim store's
    owner-guarded commit (:meth:`~repro.sweep.dbstore.SqliteResultStore.
    finish_claim`), so every backend persists bit-identical ``done`` rows.
    """
    if consensus_quantiles is not None and len(consensus_quantiles) != 3:
        raise ValueError(
            "consensus_quantiles must supply exactly (q10, q50, q90), "
            f"got {len(consensus_quantiles)} values"
        )
    quantiles = consensus_quantiles or (None, None, None)
    return {
        "status": STATUS_DONE,
        "error": None,
        "runs": int(statistics.runs),
        "converged": int(statistics.converged),
        "convergence_rate": float(statistics.convergence_rate),
        "mean_steps": _optional_float(statistics.mean_steps),
        "median_steps": _optional_float(statistics.median_steps),
        "min_steps": _optional_int(statistics.min_steps),
        "max_steps": _optional_int(statistics.max_steps),
        "mean_consensus_step": _optional_float(statistics.mean_consensus_step),
        "accuracy": _optional_float(accuracy),
        "consensus_q10": _optional_float(quantiles[0]),
        "consensus_q50": _optional_float(quantiles[1]),
        "consensus_q90": _optional_float(quantiles[2]),
        "top_transitions": (
            None if top_transitions is None else str(top_transitions)
        ),
    }


def _parse_typed(column: str, text: Optional[str], context: str):
    """Decode one CSV field back into its typed value ('' means None)."""
    if text is None or text == "":
        return None
    try:
        if column in _INT_COLUMNS:
            return int(text)
        if column in _FLOAT_COLUMNS:
            return float(text)
    except ValueError:
        raise StoreCorruptionError(
            f"{context}: column {column!r} holds non-numeric value {text!r}"
        ) from None
    return text


class CsvResultStore(ResultStore):
    """A CSV-backed store: a header row, then one row per cell.

    ``None`` renders as the empty field; ints and floats round-trip through
    ``repr`` so repeated load/flush cycles are byte-stable.
    """

    def _render(self, rows: Sequence[Mapping[str, object]]) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(COLUMNS)
        for row in rows:
            writer.writerow(
                "" if row[column] is None else str(row[column]) for column in COLUMNS
            )
        return buffer.getvalue()

    def _parse(self, text: str) -> Tuple[List[Dict[str, object]], List[str]]:
        recovered: List[str] = []
        if text and not text.endswith("\n"):
            # A torn tail: the final line was cut mid-write.  Drop it (the
            # cell id, when recognizable, is reported for re-running).
            cut = text.rfind("\n") + 1
            recovered.append(_first_csv_field(text[cut:]))
            text = text[:cut]
        records = list(csv.reader(io.StringIO(text)))
        if not records:
            return [], recovered
        header = records[0]
        if tuple(header) != COLUMNS:
            raise StoreCorruptionError(
                f"{self.path}: header {header!r} does not match the expected "
                f"column set; was this file written by a different version?"
            )
        rows: List[Dict[str, object]] = []
        for position, record in enumerate(records[1:], start=2):
            is_last = position == len(records)
            if len(record) != len(COLUMNS):
                if is_last:
                    recovered.append(record[0] if record else "")
                    continue
                raise StoreCorruptionError(
                    f"{self.path}: line {position} has {len(record)} fields, "
                    f"expected {len(COLUMNS)}"
                )
            try:
                row = {
                    column: _parse_typed(column, value, f"{self.path}: line {position}")
                    for column, value in zip(COLUMNS, record)
                }
            except StoreCorruptionError:
                if is_last:
                    recovered.append(record[0])
                    continue
                raise
            rows.append(row)
        return rows, recovered


def _first_csv_field(line: str) -> str:
    """Best-effort cell id of a torn CSV line (for the recovery report)."""
    try:
        parsed = next(csv.reader(io.StringIO(line)), None)
    except csv.Error:
        return ""
    return parsed[0] if parsed else ""


class JsonlResultStore(ResultStore):
    """A JSON-lines store: one JSON object per cell row."""

    def _render(self, rows: Sequence[Mapping[str, object]]) -> str:
        lines = [
            json.dumps(
                {column: row[column] for column in COLUMNS},
                sort_keys=False,
                separators=(",", ":"),
            )
            for row in rows
        ]
        return "".join(line + "\n" for line in lines)

    def _parse(self, text: str) -> Tuple[List[Dict[str, object]], List[str]]:
        recovered: List[str] = []
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        else:
            # No trailing newline: the final line is a torn tail.
            torn = lines.pop() if lines else ""
            recovered.append(_json_cell_hint(torn))
        rows: List[Dict[str, object]] = []
        for position, line in enumerate(lines, start=1):
            is_last = position == len(lines)
            try:
                data = json.loads(line)
                if not isinstance(data, dict):
                    raise ValueError("row is not a JSON object")
                missing = set(COLUMNS) - set(data)
                if missing:
                    raise ValueError(f"row is missing columns {sorted(missing, key=str)}")
            except ValueError as error:
                if is_last:
                    recovered.append(_json_cell_hint(line))
                    continue
                raise StoreCorruptionError(
                    f"{self.path}: line {position}: {error}"
                ) from None
            rows.append(data)
        return rows, recovered


def _json_cell_hint(line: str) -> str:
    """Best-effort cell id of a torn JSONL line (for the recovery report)."""
    marker = '"cell":"'
    start = line.find(marker)
    if start < 0:
        return ""
    start += len(marker)
    end = line.find('"', start)
    return line[start:end] if end > start else ""
