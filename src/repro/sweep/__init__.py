"""Grid sweeps over the batch subsystem, with resumable result tables.

The scenario-diversity layer on top of the engine stack: declare a grid of
(protocol × population × scheduler × engine) combinations once, run it over
the persistent worker pool, and get back an incrementally persisted,
resumable result table — the PY_EXPERIMENTER pattern, specialized to
population-protocol ensembles.

* :class:`SweepSpec` (:mod:`repro.sweep.spec`) — the declarative grid: axes,
  repetitions, master seed, step budget.  Expands deterministically to
  keyfield-ordered :class:`SweepCell` values, each owning a position-
  independent seed derived from the master seed and the cell identity.
* :class:`ResultStore` (:mod:`repro.sweep.store`) — one row per cell with a
  ``created``/``running``/``done``/``error`` status column, persisted
  atomically (write-temp-then-rename per flush) as CSV or JSON lines, with
  torn-tail recovery on open.
* :class:`SweepRunner` (:mod:`repro.sweep.runner`) — walks the grid, fans
  each cell's repetitions over one shared persistent
  :class:`~repro.simulation.batch.WorkerPool` (or a serial simulator cache),
  flushes the store after every cell, and resumes by skipping ``done`` rows.
  Tables are bit-identical across backends, worker counts and
  kill-and-resume cycles.
* ``python -m repro.sweep`` (:mod:`repro.sweep.cli`) — run/resume/show
  sweeps from the command line; experiment E12 drives the same machinery
  from the experiment registry.

Cells are scored against their protocol's registered predicate (the
``accuracy`` column), and a spec with ``analytics=True`` extracts
trajectory analytics inside the workers — convergence-time quantiles and
top fired transitions land as additional byte-stable columns (see
:mod:`repro.analytics`, experiment E13).
"""

from .dbstore import BOOKKEEPING_COLUMNS, Claim, SqliteResultStore
from .faults import (
    ACTIONS,
    INJECTION_POINTS,
    FaultPlan,
    FaultRule,
    InjectedFault,
    fault_point,
    install_fault_plan,
)
from .runner import (
    CellExecutionError,
    ClaimReport,
    SweepReport,
    SweepRunner,
    claim_worker,
    to_experiment_table,
)
from .spec import (
    KEYFIELDS,
    SCHEDULERS,
    SweepCell,
    SweepSpec,
    available_sweep_protocols,
    build_predicate_for,
    build_protocol_and_inputs,
    canonical_params,
    derive_cell_seed,
    register_sweep_protocol,
)
from .store import (
    ANALYTICS_COLUMNS,
    COLUMNS,
    STATUS_CREATED,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_RUNNING,
    CsvResultStore,
    JsonlResultStore,
    MemoryResultStore,
    ResultStore,
    StoreCorruptionError,
    normalize_error_message,
    open_store,
)

__all__ = [
    "KEYFIELDS",
    "SCHEDULERS",
    "ANALYTICS_COLUMNS",
    "COLUMNS",
    "STATUS_CREATED",
    "STATUS_RUNNING",
    "STATUS_DONE",
    "STATUS_ERROR",
    "SweepCell",
    "SweepSpec",
    "SweepReport",
    "SweepRunner",
    "available_sweep_protocols",
    "build_predicate_for",
    "build_protocol_and_inputs",
    "canonical_params",
    "derive_cell_seed",
    "register_sweep_protocol",
    "to_experiment_table",
    "ResultStore",
    "CsvResultStore",
    "JsonlResultStore",
    "MemoryResultStore",
    "SqliteResultStore",
    "BOOKKEEPING_COLUMNS",
    "Claim",
    "ClaimReport",
    "CellExecutionError",
    "claim_worker",
    "StoreCorruptionError",
    "normalize_error_message",
    "open_store",
    "ACTIONS",
    "INJECTION_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "fault_point",
    "install_fault_plan",
]
