"""Resumable execution of sweep grids over the batch subsystem.

The :class:`SweepRunner` walks a :class:`~repro.sweep.spec.SweepSpec`'s cell
grid in its deterministic order and runs one seeded ensemble per cell:

* every cell is registered in the :class:`~repro.sweep.store.ResultStore` up
  front (status ``created``), and the store is flushed incrementally — before
  a cell runs (``running``) and after it completes (``done`` / ``error``) —
  so a killed sweep leaves a consistent, resumable table behind;
* **resume is the default**: cells already ``done`` in the store are skipped,
  everything else (``created``, a stale ``running`` from a killed run, and —
  unless ``retry_errors=False`` — ``error``) is (re)run;
* under ``backend="process"`` every cell fans its repetitions over **one
  shared persistent** :class:`~repro.simulation.batch.WorkerPool`: worker
  processes are created once per :meth:`SweepRunner.run` and cache one
  initialized simulator per (protocol, scheduler, engine) spec, so the grid
  pays protocol pickling and stepper compilation once per spec per worker,
  not once per cell;
* results are backend-independent **by construction**: each cell's ensemble
  seeds derive from the spec's master seed and the cell identity alone
  (see :meth:`~repro.sweep.spec.SweepSpec.cell_seed`), and the batch layer
  guarantees serial/process bit-identity for a fixed seed list — so the same
  spec produces byte-identical store files serially, in parallel, straight
  through, or across any kill-and-resume cycle.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..config import monotonic_time
from ..core.configuration import Configuration
from ..core.predicates import Predicate
from ..core.protocol import Protocol
from ..obs import trace as _obs_trace
from ..obs.registry import get_registry
from ..simulation.batch import WorkerPool, _dumps_for_workers
from ..simulation.scheduler import Scheduler
from ..simulation.simulator import SimulationResult, Simulator
from ..simulation.statistics import accuracy_against_predicate, summarize_runs
from ..simulation.trajectory import DEFAULT_TRAJECTORY_CAPACITY
from .faults import InjectedFault, fault_point
from .spec import SweepCell, SweepSpec, build_inputs_for
from .store import STATUS_DONE, STATUS_ERROR, ResultStore, StoreCorruptionError

__all__ = [
    "CellExecutionError",
    "ClaimReport",
    "SweepReport",
    "SweepRunner",
    "claim_worker",
    "to_experiment_table",
]

_BACKENDS = ("serial", "process")


class CellExecutionError(RuntimeError):
    """A grid cell's ensemble failed (crash, timeout, or protocol error).

    The claim loop's unit of containment: every failure inside
    :meth:`SweepRunner._run_cell` — a raising protocol builder, a worker
    process crash (:class:`~repro.simulation.batch.WorkerCrashError`), an
    ensemble timeout (:class:`~repro.simulation.batch.WorkerTimeoutError`) —
    is wrapped in this typed error carrying the cell id and the original
    cause, and converted into a retry-or-park decision on the claim store
    instead of killing the runner process.
    """

    def __init__(self, cell_id: str, cause: BaseException):
        self.cell_id = cell_id
        self.cause = cause
        super().__init__(f"{type(cause).__name__}: {cause}")


@dataclass(frozen=True)
class SweepReport:
    """What one :meth:`SweepRunner.run` call did to the grid."""

    #: Cells in the grid.
    total: int
    #: Cells that completed successfully during this call.
    executed: int
    #: Cells skipped because the store already had them ``done`` (or
    #: ``error`` with ``retry_errors=False`` — counted separately below).
    skipped: int
    #: Cells that raised during this call (recorded as ``error`` rows).
    failed: int
    #: The subset of ``skipped`` that was skipped as a *previous* ``error``
    #: (``retry_errors=False``) — still failures, just not this call's.
    skipped_errors: int = 0

    @property
    def remaining(self) -> int:
        """Cells not reached (an interrupted run, e.g. via ``max_cells``)."""
        return self.total - self.executed - self.skipped - self.failed

    @property
    def complete(self) -> bool:
        """True when every cell of the grid is actually ``done``.

        False while cells remain, and also when any cell failed — in this
        call or in the run a ``retry_errors=False`` resume skipped over.
        """
        return self.failed == 0 and self.skipped_errors == 0 and self.remaining == 0


@dataclass(frozen=True)
class ClaimReport:
    """What one :meth:`SweepRunner.run_claims` loop did to a shared grid.

    Unlike :class:`SweepReport`, the counters are *this runner's* view: other
    runners may have executed the rest of the grid concurrently.  ``drained``
    is the global statement — on exit, every row of the store was ``done`` or
    a terminal (parked) ``error`` row.
    """

    #: This runner's owner id.
    owner: str
    #: Cells in the grid.
    total: int
    #: Claims this runner executed and committed.
    executed: int
    #: Claims that failed and were recorded for retry (backoff pending).
    retried: int
    #: Claims that failed with retries exhausted (terminal ``error`` rows).
    parked: int
    #: Commits refused because the lease had been reclaimed meanwhile (the
    #: reclaimant recomputes the identical row, so nothing is damaged).
    lost: int
    #: Whether the store was fully drained when the loop exited.
    drained: bool
    #: Whether the loop exited on a stop request (SIGTERM drain) rather than
    #: an empty store or an exhausted ``max_cells`` budget.
    stopped: bool = False


class _HeartbeatPump:
    """A daemon thread extending a held claim's lease while the cell runs.

    Beats every ``interval`` seconds (default: a third of the store's lease)
    until stopped; each beat goes through the store's ``heartbeat`` — and
    therefore through the ``heartbeat-loss`` fault point, which is how the
    partition chaos tests starve a lease under a live runner.  A beat
    returning False (the claim is gone) is remembered so the claim loop can
    report the eventual lost commit with a cause.

    Lease trouble is never silent: a beat that lands late (more than two
    intervals since the previous one — a starved thread or a blocked store),
    a gap that eats into the final beat of the lease window, and a beat
    whose claim is already gone each emit a structured ``warning`` event
    through :mod:`repro.obs.trace` and bump the
    ``repro_sweep_heartbeat_warnings_total{reason=...}`` counter; the
    reasons are also kept on :attr:`warnings` for the claim loop's report.
    """

    def __init__(self, store: ResultStore, claim: object, interval: float):
        self._store = store
        self._claim = claim
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self.claim_alive = True
        self.warnings: List[str] = []
        self._warn_counter = get_registry().counter(
            "repro_sweep_heartbeat_warnings_total",
            "Heartbeat-pump lease warnings by reason.",
            labelnames=("reason",),
        )
        self._thread = threading.Thread(target=self._beat, daemon=True)

    def __enter__(self) -> "_HeartbeatPump":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join()

    def _warn(self, reason: str, **attrs: object) -> None:
        self.warnings.append(reason)
        self._warn_counter.inc(reason=reason)
        _obs_trace.event(
            f"heartbeat-{reason}",
            kind="warning",
            reason=reason,
            cell=getattr(self._claim, "cell", None),
            owner=getattr(self._claim, "owner", None),
            interval=self._interval,
            **attrs,
        )

    def _beat(self) -> None:
        lease = getattr(self._store, "lease_seconds", None)
        last = monotonic_time()
        while not self._stop.wait(self._interval):
            now = monotonic_time()
            gap = now - last
            if gap > 2.0 * self._interval:
                # At least one beat went missing (a starved thread, a store
                # call that blocked) — the lease burned down unattended.
                self._warn("skipped", gap=gap)
            if lease is not None and gap > lease - self._interval:
                # Within one beat of expiry: the next hiccup loses the claim.
                self._warn("lease-at-risk", gap=gap, lease=lease)
            if not self._store.heartbeat(self._claim):
                self._warn("lost")
                self.claim_alive = False
                return
            last = monotonic_time()


class SweepRunner:
    """Run a sweep spec against a result store, resumably.

    Parameters
    ----------
    spec:
        The grid to run.
    store:
        Where rows are persisted.  Reusing a store from an earlier (possibly
        interrupted) run of the **same** spec resumes it; a store written by
        a different spec or master seed is rejected at registration time.
    backend:
        ``"process"`` (default) fans each cell's repetitions over a shared
        persistent :class:`~repro.simulation.batch.WorkerPool`;
        ``"serial"`` runs everything in-process, reusing one simulator per
        (protocol, scheduler, engine) spec across cells.
    max_workers, chunk_size, start_method:
        Pool knobs, as for :class:`~repro.simulation.batch.BatchRunner`.
        Ignored under ``backend="serial"``.
    retry_errors:
        Whether resumption re-runs cells recorded as ``error`` (default) or
        skips them.
    """

    def __init__(
        self,
        spec: SweepSpec,
        store: ResultStore,
        backend: str = "process",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        retry_errors: bool = True,
    ):
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (expected one of {_BACKENDS})"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        self.spec = spec
        self.store = store
        self.backend = backend
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.retry_errors = retry_errors

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        max_cells: Optional[int] = None,
        on_error: str = "raise",
        progress: Optional[Callable[[str], None]] = None,
    ) -> SweepReport:
        """Execute the grid (or what remains of it) and return a report.

        Parameters
        ----------
        max_cells:
            Stop after attempting this many cells (completed or failed) —
            the controlled-interruption knob used by the resume tests and
            the CI smoke job.  Skipped ``done`` cells do not count.
        on_error:
            ``"raise"`` (default) persists the ``error`` row, then re-raises
            the cell's exception; ``"continue"`` records it and moves on —
            the failure stays visible in the table and the report.
        progress:
            Optional callback receiving one human-readable line per cell.
        """
        if on_error not in ("raise", "continue"):
            raise ValueError(
                f"on_error must be 'raise' or 'continue', got {on_error!r}"
            )
        if max_cells is not None and max_cells < 0:
            raise ValueError(f"max_cells must be non-negative, got {max_cells}")

        cells = self.spec.cells()
        for cell in cells:
            self.store.ensure(
                cell.cell_id, cell.keyfields(), self.spec.cell_seed(cell)
            )
        self.store.flush()

        executed = failed = skipped = skipped_errors = attempted = 0
        caches = _CellCaches()
        pool: Optional[WorkerPool] = None
        try:
            for index, cell in enumerate(cells):
                status = self.store.status(cell.cell_id)
                if status == STATUS_DONE or (
                    status == STATUS_ERROR and not self.retry_errors
                ):
                    skipped += 1
                    if status == STATUS_ERROR:
                        skipped_errors += 1
                    if progress is not None:
                        progress(
                            f"[{index + 1}/{len(cells)}] {cell.cell_id} "
                            f"skipped ({status})"
                        )
                    continue
                if max_cells is not None and attempted >= max_cells:
                    break
                attempted += 1
                self.store.mark_running(cell.cell_id)
                self.store.flush()
                with _obs_trace.span(
                    "sweep-cell", kind="sweep-cell", cell=cell.cell_id
                ) as cell_span:
                    try:
                        if self.backend == "process" and pool is None:
                            pool = WorkerPool(
                                max_workers=self.max_workers,
                                start_method=self.start_method,
                            )
                        results = self._run_cell(cell, caches, pool)
                    except Exception as error:
                        failed += 1
                        cell_span.set(status="error")
                        self.store.mark_error(
                            cell.cell_id, f"{type(error).__name__}: {error}"
                        )
                        self.store.flush()
                        if progress is not None:
                            progress(
                                f"[{index + 1}/{len(cells)}] {cell.cell_id} "
                                f"ERROR: {error}"
                            )
                        if on_error == "raise":
                            raise
                    else:
                        executed += 1
                        statistics = summarize_runs(results)
                        cell_span.set(
                            status="done",
                            runs=statistics.runs,
                            converged=statistics.converged,
                        )
                        self.store.mark_done(
                            cell.cell_id, statistics, **self._result_extras(
                                cell, caches, results
                            )
                        )
                        self.store.flush()
                        if progress is not None:
                            progress(
                                f"[{index + 1}/{len(cells)}] {cell.cell_id} done "
                                f"(converged {statistics.converged}/{statistics.runs}, "
                                f"mean steps {statistics.mean_steps:.1f})"
                            )
        finally:
            if pool is not None:
                pool.close()
        return SweepReport(
            total=len(cells), executed=executed, skipped=skipped, failed=failed,
            skipped_errors=skipped_errors,
        )

    # ------------------------------------------------------------------
    # Claim-based execution (multi-runner mode)
    # ------------------------------------------------------------------
    def run_claims(
        self,
        owner: str,
        max_cells: Optional[int] = None,
        cell_timeout: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        wait_for_stragglers: bool = True,
        idle_wait: float = 0.2,
        stop_event: Optional[threading.Event] = None,
        progress: Optional[Callable[[str], None]] = None,
    ) -> ClaimReport:
        """Drain the grid cooperatively: claim, execute, commit, repeat.

        The multi-runner mode: any number of processes (one host or many
        sharing a filesystem) point :meth:`run_claims` at the same sqlite
        store and the grid drains concurrently.  Requires a claim-capable
        store (:class:`~repro.sweep.dbstore.SqliteResultStore`).

        Each iteration atomically claims the next open cell, executes its
        ensemble (under a heartbeat pump extending the lease), and commits
        the result through the owner-guarded ``finish_claim``.  A failing
        cell — including worker crashes and ensemble timeouts, both wrapped
        in :class:`CellExecutionError` — is recorded for retry with
        exponential backoff, or parked as a terminal ``error`` row once the
        store's ``max_retries`` is exhausted; the runner itself survives and
        moves on.  Because every cell's seeds derive from the spec's master
        seed and the cell identity alone, the drained table's ``done`` rows
        are byte-identical to a single-process :meth:`run` of the same spec,
        no matter how many runners participated or how often they crashed.

        Parameters
        ----------
        owner:
            This runner's claim-owner id; must be unique across concurrently
            live runners (the launcher derives it from host and index).
        max_cells:
            Stop after processing this many claims (the controlled-
            interruption knob; ``None`` = run until the grid drains).
        cell_timeout:
            Wall-clock budget per cell ensemble (process backend only) —
            expiry raises through the crash containment and counts as a
            cell failure.
        heartbeat_interval:
            Seconds between lease extensions (default: a third of the
            store's ``lease_seconds``).
        wait_for_stragglers:
            When no cell is claimable but unresolved rows remain (live
            claims of other runners, rows in backoff), keep polling every
            ``idle_wait`` seconds until the grid drains (default) instead of
            returning.  Waiting runners also adopt expired leases, so a
            SIGKILLed peer's cells are re-executed without any restart.
        stop_event:
            Optional external stop flag: the loop finishes the cell in
            flight, then exits without claiming further — the graceful
            SIGTERM drain of :func:`claim_worker`.
        progress:
            Optional callback receiving one line per processed claim.
        """
        claim_api = ("claim_next", "finish_claim", "fail_claim", "heartbeat")
        if not all(hasattr(self.store, name) for name in claim_api):
            raise TypeError(
                "run_claims requires a claim-capable store (a .sqlite path / "
                f"SqliteResultStore), got {type(self.store).__name__}"
            )
        if max_cells is not None and max_cells < 0:
            raise ValueError(f"max_cells must be non-negative, got {max_cells}")
        if idle_wait <= 0:
            raise ValueError(f"idle_wait must be positive, got {idle_wait}")
        if heartbeat_interval is None:
            heartbeat_interval = self.store.lease_seconds / 3.0

        cells = self.spec.cells()
        by_id = {cell.cell_id: cell for cell in cells}
        for cell in cells:
            self.store.ensure(
                cell.cell_id, cell.keyfields(), self.spec.cell_seed(cell)
            )

        executed = retried = parked = lost = processed = 0
        stopped = False
        caches = _CellCaches()
        pool: Optional[WorkerPool] = None
        # The registry mirror of this loop's ClaimReport counters: cumulative
        # across claim loops in the process, scrapeable while the loop runs.
        claim_counter = get_registry().counter(
            "repro_sweep_claims_total",
            "Claim outcomes processed by run_claims.",
            labelnames=("outcome",),
        )
        try:
            while True:
                if stop_event is not None and stop_event.is_set():
                    stopped = True
                    break
                if max_cells is not None and processed >= max_cells:
                    break
                claim = self.store.claim_next(owner)
                if claim is None:
                    if not wait_for_stragglers:
                        break
                    if self.store.unresolved_count() == 0:
                        break
                    # Rows remain but none is eligible right now: another
                    # runner's live claim, or a backoff window.  Poll — an
                    # expired lease or due retry becomes claimable here,
                    # which is how surviving runners adopt a killed peer's
                    # cells without any restart.
                    time.sleep(idle_wait)
                    continue
                cell = by_id.get(claim.cell)
                if cell is None:
                    # Not this spec's cell: the store holds a different (or
                    # larger) grid.  Hand the claim back and refuse to mix.
                    self.store.release_claim(claim)
                    raise StoreCorruptionError(
                        f"claimed cell {claim.cell!r} is not part of this "
                        "sweep spec; the store holds a different grid"
                    )
                processed += 1
                try:
                    # Models a runner dying (or erroring) between claiming
                    # and executing: the claim is held, no result exists.
                    try:
                        fault_point("mid-cell")
                    except InjectedFault as fault:
                        raise CellExecutionError(claim.cell, fault) from fault
                    if self.backend == "process" and pool is None:
                        pool = WorkerPool(
                            max_workers=self.max_workers,
                            start_method=self.start_method,
                        )
                    with _obs_trace.span(
                        "claim", kind="claim", cell=claim.cell,
                        attempt=claim.attempt, owner=owner,
                    ), _HeartbeatPump(
                        self.store, claim, heartbeat_interval
                    ) as pump:
                        results = self._execute_claimed(
                            cell, caches, pool, cell_timeout
                        )
                except CellExecutionError as error:
                    fate = self.store.fail_claim(claim, str(error))
                    if fate == "retry":
                        retried += 1
                        claim_counter.inc(outcome="retried")
                    elif fate == "parked":
                        parked += 1
                        claim_counter.inc(outcome="parked")
                    else:
                        lost += 1
                        claim_counter.inc(outcome="lost")
                    if progress is not None:
                        progress(
                            f"[{owner}] {claim.cell} attempt {claim.attempt} "
                            f"FAILED ({fate}): {error}"
                        )
                else:
                    statistics = summarize_runs(results)
                    committed = self.store.finish_claim(
                        claim, statistics, **self._result_extras(
                            cell, caches, results
                        )
                    )
                    if committed:
                        executed += 1
                        claim_counter.inc(outcome="executed")
                    else:
                        lost += 1
                        claim_counter.inc(outcome="lost")
                    if progress is not None:
                        outcome = "done" if committed else (
                            "lost (lease reclaimed)" if not pump.claim_alive
                            else "lost"
                        )
                        progress(
                            f"[{owner}] {claim.cell} attempt {claim.attempt} "
                            f"{outcome} (converged "
                            f"{statistics.converged}/{statistics.runs})"
                        )
        finally:
            if pool is not None:
                pool.close()
        return ClaimReport(
            owner=owner,
            total=len(cells),
            executed=executed,
            retried=retried,
            parked=parked,
            lost=lost,
            drained=self.store.unresolved_count() == 0,
            stopped=stopped,
        )

    def _execute_claimed(
        self,
        cell: SweepCell,
        caches: "_CellCaches",
        pool: Optional[WorkerPool],
        timeout: Optional[float],
    ) -> List[SimulationResult]:
        """Run a claimed cell, wrapping any failure in the typed cell error.

        The wrapped message renders as ``TypeName: text`` — exactly what the
        single-process path's ``mark_error`` records — so parked rows stay
        byte-comparable with a serial sweep's ``error`` rows.
        """
        try:
            return self._run_cell(cell, caches, pool, timeout=timeout)
        except Exception as error:
            raise CellExecutionError(cell.cell_id, error) from error

    # ------------------------------------------------------------------
    # One cell
    # ------------------------------------------------------------------
    def _run_cell(
        self,
        cell: SweepCell,
        caches: "_CellCaches",
        pool: Optional[WorkerPool],
        timeout: Optional[float] = None,
    ) -> List[SimulationResult]:
        protocol = caches.protocol(cell)
        inputs = caches.inputs(cell)
        scheduler = caches.scheduler(cell)
        seeds = self._cell_run_seeds(cell)
        analytics = (
            caches.analytics_spec(cell, inputs) if self.spec.analytics else None
        )
        if self.backend == "serial":
            simulator = caches.serial_simulator(cell, protocol, scheduler)
            configuration = protocol.initial_configuration(inputs)
            return simulator._run_seeds(
                configuration, seeds, self.spec.max_steps,
                self.spec.stability_window, False, DEFAULT_TRAJECTORY_CAPACITY,
                analytics,
            )
        return pool.run_seeds(
            protocol,
            inputs,
            seeds,
            scheduler=scheduler,
            engine=cell.engine,
            max_steps=self.spec.max_steps,
            stability_window=self.spec.stability_window,
            chunk_size=self.chunk_size,
            analytics=analytics,
            spec_bytes=caches.spec_bytes(cell, protocol, scheduler),
            timeout=timeout,
        )

    def _result_extras(
        self,
        cell: SweepCell,
        caches: "_CellCaches",
        results: List[SimulationResult],
    ) -> Dict[str, object]:
        """The analytics columns of a completed cell.

        Predicate accuracy is scored whenever the protocol registers a
        predicate — analytics on or off.  With analytics enabled the workers
        already scored each run against the expected predicate value (the
        spec's ``expected_output``), so the aggregated accuracy is reused;
        without analytics it is recomputed here from the consensus values
        the results carry.  The trajectory-derived columns (convergence-time
        quantiles, top transitions) come from the in-worker metric dicts and
        are therefore only present under ``spec.analytics=True``.
        Everything here is a deterministic pure function of the results, so
        the persisted columns inherit the store's byte-stability across
        backends and resume cycles.
        """
        if self.spec.analytics:
            # Imported lazily: repro.analytics imports this package for its
            # report CLI, so a module-level import would be circular.
            from ..analytics.ensemble import aggregate_run_metrics, top_transitions

            aggregated = aggregate_run_metrics(
                [result.analytics for result in results],
                quantile_points=(0.1, 0.5, 0.9),
            )
            rendered = None
            if aggregated.histogram is not None:
                names = [
                    transition.name
                    for transition in caches.protocol(cell).petri_net.transitions
                ]
                top = top_transitions(aggregated.histogram, names, k=3)
                # None (not "") when nothing fired: the CSV round-trip cannot
                # distinguish an empty string from an absent value.
                rendered = (
                    "; ".join(f"{name}:{count}" for name, count in top)
                    if top else None
                )
            return {
                "accuracy": aggregated.accuracy,
                "consensus_quantiles": aggregated.stable_consensus_quantiles,
                "top_transitions": rendered,
            }
        predicate = caches.predicate(cell)
        return {
            "accuracy": (
                accuracy_against_predicate(results, predicate, caches.inputs(cell))
                if predicate is not None
                else None
            )
        }

    def _cell_run_seeds(self, cell: SweepCell) -> List[int]:
        """The cell's per-repetition seeds.

        Derived exactly like ``BatchRunner.run_many(seed=cell_seed)`` derives
        them, so a cell's ensemble can be reproduced outside the sweep with
        the cell seed alone.
        """
        master = random.Random(self.spec.cell_seed(cell))
        return [master.getrandbits(64) for _ in range(self.spec.repetitions)]

    def __repr__(self) -> str:
        return (
            f"SweepRunner({len(self.spec)} cells, backend={self.backend!r}, "
            f"store={self.store!r})"
        )


class _CellCaches:
    """Per-run caches shared across cells.

    One built protocol per (protocol, params) axis value — so every
    population/scheduler/engine cell of that protocol reuses its compiled
    caches — plus one scheduler instance per kind, and per
    (protocol, params, scheduler, engine) spec either one serial simulator
    or one transport pickle (the worker-side simulator-cache key, kept
    byte-stable so every cell of a spec hits the same cached simulator in
    the pool workers).
    """

    def __init__(self):
        self._protocols: Dict[Tuple[str, str], Protocol] = {}
        self._inputs: Dict[Tuple[str, str, int], Configuration] = {}
        self._schedulers: Dict[str, Scheduler] = {}
        self._serial: Dict[Tuple[str, str, str, str], Simulator] = {}
        self._spec_bytes: Dict[Tuple[str, str, str, str], bytes] = {}
        self._predicates: Dict[Tuple[str, str, int], Optional[Predicate]] = {}
        self._analytics: Dict[Tuple[str, str, int], object] = {}

    def protocol(self, cell: SweepCell) -> Protocol:
        key = (cell.protocol, cell.params_json)
        protocol = self._protocols.get(key)
        if protocol is None:
            protocol, inputs = cell.build()
            self._protocols[key] = protocol
            self._inputs[key + (cell.population,)] = inputs
        return protocol

    def inputs(self, cell: SweepCell) -> Configuration:
        key = (cell.protocol, cell.params_json, cell.population)
        inputs = self._inputs.get(key)
        if inputs is None:
            inputs = build_inputs_for(
                cell.protocol, self.protocol(cell), cell.population, cell.params
            )
            self._inputs[key] = inputs
        return inputs

    def predicate(self, cell: SweepCell) -> Optional[Predicate]:
        """The cell's registered predicate (or None), cached per grid point."""
        key = (cell.protocol, cell.params_json, cell.population)
        if key not in self._predicates:
            self._predicates[key] = cell.build_predicate()
        return self._predicates[key]

    def analytics_spec(self, cell: SweepCell, inputs: Configuration):
        """The in-worker extraction spec of a cell, cached per grid point.

        The expected predicate value is folded in up front, so every worker
        scores correctness locally without seeing the predicate object.
        """
        key = (cell.protocol, cell.params_json, cell.population)
        spec = self._analytics.get(key)
        if spec is None:
            from ..analytics.metrics import AnalyticsSpec

            predicate = self.predicate(cell)
            expected = None if predicate is None else predicate.evaluate(inputs)
            spec = AnalyticsSpec(
                histogram=True, consensus_times=True, expected_output=expected
            )
            self._analytics[key] = spec
        return spec

    def scheduler(self, cell: SweepCell) -> Scheduler:
        scheduler = self._schedulers.get(cell.scheduler)
        if scheduler is None:
            scheduler = cell.make_scheduler()
            self._schedulers[cell.scheduler] = scheduler
        return scheduler

    def _spec_key(self, cell: SweepCell) -> Tuple[str, str, str, str]:
        return (cell.protocol, cell.params_json, cell.scheduler, cell.engine)

    def serial_simulator(
        self, cell: SweepCell, protocol: Protocol, scheduler: Scheduler
    ) -> Simulator:
        key = self._spec_key(cell)
        simulator = self._serial.get(key)
        if simulator is None:
            simulator = Simulator(protocol, scheduler=scheduler, engine=cell.engine)
            self._serial[key] = simulator
        return simulator

    def spec_bytes(
        self, cell: SweepCell, protocol: Protocol, scheduler: Scheduler
    ) -> bytes:
        key = self._spec_key(cell)
        payload = self._spec_bytes.get(key)
        if payload is None:
            payload = _dumps_for_workers((protocol, scheduler, cell.engine))
            self._spec_bytes[key] = payload
        return payload


def claim_worker(
    spec_json: str,
    store_path: str,
    owner: str,
    lease_seconds: Optional[float] = None,
    max_retries: Optional[int] = None,
    backoff_base: Optional[float] = None,
    backend: str = "process",
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    start_method: Optional[str] = None,
    cell_timeout: Optional[float] = None,
    heartbeat_interval: Optional[float] = None,
    fault_plan: Optional[str] = None,
    wait_for_stragglers: bool = True,
    idle_wait: float = 0.2,
    max_cells: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> ClaimReport:
    """One complete claim-loop runner: the ``workers`` launcher's unit.

    Designed to be a process entry point (``multiprocessing.Process`` target
    or a per-host shell invocation): opens its own
    :class:`~repro.sweep.dbstore.SqliteResultStore` connection on
    ``store_path``, registers the grid (idempotent and cross-process safe),
    drains it via :meth:`SweepRunner.run_claims`, and finishes with a store
    consistency check.

    **SIGTERM drains gracefully**: the first signal sets a stop flag — the
    cell in flight completes and commits, then the loop exits without
    claiming further (its report says ``stopped=True``).  Only SIGKILL loses
    a claim, and that is exactly the case the lease-expiry recovery covers.

    ``fault_plan`` optionally installs a per-runner deterministic fault plan
    (see :mod:`repro.sweep.faults`) — passed explicitly rather than through
    the environment so a launcher can aim chaos at one runner of a fleet.
    """
    import signal

    from .dbstore import (
        DEFAULT_BACKOFF_BASE,
        DEFAULT_LEASE_SECONDS,
        DEFAULT_MAX_RETRIES,
        SqliteResultStore,
    )
    from .faults import install_fault_plan

    if fault_plan is not None:
        install_fault_plan(fault_plan)

    # Launcher-spawned runner processes honour REPRO_TRACE themselves: the
    # parent's installed tracer does not survive a spawn, and each runner
    # appends whole lines to the shared trace file under its own pid.
    _obs_trace.tracer_from_env()

    stop_event = threading.Event()

    def _drain(signum: int, frame: object) -> None:
        stop_event.set()

    try:
        previous = signal.signal(signal.SIGTERM, _drain)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        previous = None

    spec = SweepSpec.from_json(spec_json)
    store = SqliteResultStore(
        store_path,
        lease_seconds=(
            DEFAULT_LEASE_SECONDS if lease_seconds is None else lease_seconds
        ),
        max_retries=DEFAULT_MAX_RETRIES if max_retries is None else max_retries,
        backoff_base=(
            DEFAULT_BACKOFF_BASE if backoff_base is None else backoff_base
        ),
    )
    try:
        runner = SweepRunner(
            spec,
            store,
            backend=backend,
            max_workers=max_workers,
            chunk_size=chunk_size,
            start_method=start_method,
        )
        report = runner.run_claims(
            owner,
            max_cells=max_cells,
            cell_timeout=cell_timeout,
            heartbeat_interval=heartbeat_interval,
            wait_for_stragglers=wait_for_stragglers,
            idle_wait=idle_wait,
            stop_event=stop_event,
            progress=progress,
        )
        _verify_claim_consistency(store, owner)
        return report
    finally:
        store.close()
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)


def _verify_claim_consistency(store: ResultStore, owner: str) -> None:
    """The runner's exit invariant: it left nothing of its own behind.

    After a drain (graceful or straggler-waited), no row may still be
    ``running`` under this owner's id — a leftover would mean a claim was
    neither committed, failed, nor released, i.e. a bookkeeping bug, which
    must fail the runner loudly rather than leave a row to time out.
    """
    leftovers = [
        row["cell"]
        for row in store.rows()
        if row["status"] == "running"
        and store.bookkeeping(str(row["cell"])).get("owner") == owner
    ]
    if leftovers:
        raise StoreCorruptionError(
            f"runner {owner!r} exited holding live claims: {leftovers!r}"
        )


def to_experiment_table(
    store: ResultStore,
    experiment_id: str = "SWEEP",
    title: Optional[str] = None,
):
    """Render a store as an :class:`~repro.experiments.harness.ExperimentTable`.

    The bridge between the sweep subsystem and the experiment harness: E12
    returns one, and the CLI's ``show`` command renders one.
    """
    from ..experiments.harness import ExperimentTable
    from .store import COLUMNS

    table = ExperimentTable(
        experiment_id=experiment_id,
        title=title or "sweep results",
        columns=list(COLUMNS),
    )
    for row in store.rows():
        table.add_row(**row)
    return table
