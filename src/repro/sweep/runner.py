"""Resumable execution of sweep grids over the batch subsystem.

The :class:`SweepRunner` walks a :class:`~repro.sweep.spec.SweepSpec`'s cell
grid in its deterministic order and runs one seeded ensemble per cell:

* every cell is registered in the :class:`~repro.sweep.store.ResultStore` up
  front (status ``created``), and the store is flushed incrementally — before
  a cell runs (``running``) and after it completes (``done`` / ``error``) —
  so a killed sweep leaves a consistent, resumable table behind;
* **resume is the default**: cells already ``done`` in the store are skipped,
  everything else (``created``, a stale ``running`` from a killed run, and —
  unless ``retry_errors=False`` — ``error``) is (re)run;
* under ``backend="process"`` every cell fans its repetitions over **one
  shared persistent** :class:`~repro.simulation.batch.WorkerPool`: worker
  processes are created once per :meth:`SweepRunner.run` and cache one
  initialized simulator per (protocol, scheduler, engine) spec, so the grid
  pays protocol pickling and stepper compilation once per spec per worker,
  not once per cell;
* results are backend-independent **by construction**: each cell's ensemble
  seeds derive from the spec's master seed and the cell identity alone
  (see :meth:`~repro.sweep.spec.SweepSpec.cell_seed`), and the batch layer
  guarantees serial/process bit-identity for a fixed seed list — so the same
  spec produces byte-identical store files serially, in parallel, straight
  through, or across any kill-and-resume cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.configuration import Configuration
from ..core.predicates import Predicate
from ..core.protocol import Protocol
from ..simulation.batch import WorkerPool, _dumps_for_workers
from ..simulation.scheduler import Scheduler
from ..simulation.simulator import SimulationResult, Simulator
from ..simulation.statistics import accuracy_against_predicate, summarize_runs
from ..simulation.trajectory import DEFAULT_TRAJECTORY_CAPACITY
from .spec import SweepCell, SweepSpec, build_inputs_for
from .store import STATUS_DONE, STATUS_ERROR, ResultStore

__all__ = ["SweepReport", "SweepRunner", "to_experiment_table"]

_BACKENDS = ("serial", "process")


@dataclass(frozen=True)
class SweepReport:
    """What one :meth:`SweepRunner.run` call did to the grid."""

    #: Cells in the grid.
    total: int
    #: Cells that completed successfully during this call.
    executed: int
    #: Cells skipped because the store already had them ``done`` (or
    #: ``error`` with ``retry_errors=False`` — counted separately below).
    skipped: int
    #: Cells that raised during this call (recorded as ``error`` rows).
    failed: int
    #: The subset of ``skipped`` that was skipped as a *previous* ``error``
    #: (``retry_errors=False``) — still failures, just not this call's.
    skipped_errors: int = 0

    @property
    def remaining(self) -> int:
        """Cells not reached (an interrupted run, e.g. via ``max_cells``)."""
        return self.total - self.executed - self.skipped - self.failed

    @property
    def complete(self) -> bool:
        """True when every cell of the grid is actually ``done``.

        False while cells remain, and also when any cell failed — in this
        call or in the run a ``retry_errors=False`` resume skipped over.
        """
        return self.failed == 0 and self.skipped_errors == 0 and self.remaining == 0


class SweepRunner:
    """Run a sweep spec against a result store, resumably.

    Parameters
    ----------
    spec:
        The grid to run.
    store:
        Where rows are persisted.  Reusing a store from an earlier (possibly
        interrupted) run of the **same** spec resumes it; a store written by
        a different spec or master seed is rejected at registration time.
    backend:
        ``"process"`` (default) fans each cell's repetitions over a shared
        persistent :class:`~repro.simulation.batch.WorkerPool`;
        ``"serial"`` runs everything in-process, reusing one simulator per
        (protocol, scheduler, engine) spec across cells.
    max_workers, chunk_size, start_method:
        Pool knobs, as for :class:`~repro.simulation.batch.BatchRunner`.
        Ignored under ``backend="serial"``.
    retry_errors:
        Whether resumption re-runs cells recorded as ``error`` (default) or
        skips them.
    """

    def __init__(
        self,
        spec: SweepSpec,
        store: ResultStore,
        backend: str = "process",
        max_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        start_method: Optional[str] = None,
        retry_errors: bool = True,
    ):
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} (expected one of {_BACKENDS})"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
        self.spec = spec
        self.store = store
        self.backend = backend
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.retry_errors = retry_errors

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        max_cells: Optional[int] = None,
        on_error: str = "raise",
        progress: Optional[Callable[[str], None]] = None,
    ) -> SweepReport:
        """Execute the grid (or what remains of it) and return a report.

        Parameters
        ----------
        max_cells:
            Stop after attempting this many cells (completed or failed) —
            the controlled-interruption knob used by the resume tests and
            the CI smoke job.  Skipped ``done`` cells do not count.
        on_error:
            ``"raise"`` (default) persists the ``error`` row, then re-raises
            the cell's exception; ``"continue"`` records it and moves on —
            the failure stays visible in the table and the report.
        progress:
            Optional callback receiving one human-readable line per cell.
        """
        if on_error not in ("raise", "continue"):
            raise ValueError(
                f"on_error must be 'raise' or 'continue', got {on_error!r}"
            )
        if max_cells is not None and max_cells < 0:
            raise ValueError(f"max_cells must be non-negative, got {max_cells}")

        cells = self.spec.cells()
        for cell in cells:
            self.store.ensure(
                cell.cell_id, cell.keyfields(), self.spec.cell_seed(cell)
            )
        self.store.flush()

        executed = failed = skipped = skipped_errors = attempted = 0
        caches = _CellCaches()
        pool: Optional[WorkerPool] = None
        try:
            for index, cell in enumerate(cells):
                status = self.store.status(cell.cell_id)
                if status == STATUS_DONE or (
                    status == STATUS_ERROR and not self.retry_errors
                ):
                    skipped += 1
                    if status == STATUS_ERROR:
                        skipped_errors += 1
                    if progress is not None:
                        progress(
                            f"[{index + 1}/{len(cells)}] {cell.cell_id} "
                            f"skipped ({status})"
                        )
                    continue
                if max_cells is not None and attempted >= max_cells:
                    break
                attempted += 1
                self.store.mark_running(cell.cell_id)
                self.store.flush()
                try:
                    if self.backend == "process" and pool is None:
                        pool = WorkerPool(
                            max_workers=self.max_workers,
                            start_method=self.start_method,
                        )
                    results = self._run_cell(cell, caches, pool)
                except Exception as error:
                    failed += 1
                    self.store.mark_error(
                        cell.cell_id, f"{type(error).__name__}: {error}"
                    )
                    self.store.flush()
                    if progress is not None:
                        progress(
                            f"[{index + 1}/{len(cells)}] {cell.cell_id} "
                            f"ERROR: {error}"
                        )
                    if on_error == "raise":
                        raise
                else:
                    executed += 1
                    statistics = summarize_runs(results)
                    self.store.mark_done(
                        cell.cell_id, statistics, **self._result_extras(
                            cell, caches, results
                        )
                    )
                    self.store.flush()
                    if progress is not None:
                        progress(
                            f"[{index + 1}/{len(cells)}] {cell.cell_id} done "
                            f"(converged {statistics.converged}/{statistics.runs}, "
                            f"mean steps {statistics.mean_steps:.1f})"
                        )
        finally:
            if pool is not None:
                pool.close()
        return SweepReport(
            total=len(cells), executed=executed, skipped=skipped, failed=failed,
            skipped_errors=skipped_errors,
        )

    # ------------------------------------------------------------------
    # One cell
    # ------------------------------------------------------------------
    def _run_cell(
        self,
        cell: SweepCell,
        caches: "_CellCaches",
        pool: Optional[WorkerPool],
    ) -> List[SimulationResult]:
        protocol = caches.protocol(cell)
        inputs = caches.inputs(cell)
        scheduler = caches.scheduler(cell)
        seeds = self._cell_run_seeds(cell)
        analytics = (
            caches.analytics_spec(cell, inputs) if self.spec.analytics else None
        )
        if self.backend == "serial":
            simulator = caches.serial_simulator(cell, protocol, scheduler)
            configuration = protocol.initial_configuration(inputs)
            return simulator._run_seeds(
                configuration, seeds, self.spec.max_steps,
                self.spec.stability_window, False, DEFAULT_TRAJECTORY_CAPACITY,
                analytics,
            )
        return pool.run_seeds(
            protocol,
            inputs,
            seeds,
            scheduler=scheduler,
            engine=cell.engine,
            max_steps=self.spec.max_steps,
            stability_window=self.spec.stability_window,
            chunk_size=self.chunk_size,
            analytics=analytics,
            spec_bytes=caches.spec_bytes(cell, protocol, scheduler),
        )

    def _result_extras(
        self,
        cell: SweepCell,
        caches: "_CellCaches",
        results: List[SimulationResult],
    ) -> Dict[str, object]:
        """The analytics columns of a completed cell.

        Predicate accuracy is scored whenever the protocol registers a
        predicate — analytics on or off.  With analytics enabled the workers
        already scored each run against the expected predicate value (the
        spec's ``expected_output``), so the aggregated accuracy is reused;
        without analytics it is recomputed here from the consensus values
        the results carry.  The trajectory-derived columns (convergence-time
        quantiles, top transitions) come from the in-worker metric dicts and
        are therefore only present under ``spec.analytics=True``.
        Everything here is a deterministic pure function of the results, so
        the persisted columns inherit the store's byte-stability across
        backends and resume cycles.
        """
        if self.spec.analytics:
            # Imported lazily: repro.analytics imports this package for its
            # report CLI, so a module-level import would be circular.
            from ..analytics.ensemble import aggregate_run_metrics, top_transitions

            aggregated = aggregate_run_metrics(
                [result.analytics for result in results],
                quantile_points=(0.1, 0.5, 0.9),
            )
            rendered = None
            if aggregated.histogram is not None:
                names = [
                    transition.name
                    for transition in caches.protocol(cell).petri_net.transitions
                ]
                top = top_transitions(aggregated.histogram, names, k=3)
                # None (not "") when nothing fired: the CSV round-trip cannot
                # distinguish an empty string from an absent value.
                rendered = (
                    "; ".join(f"{name}:{count}" for name, count in top)
                    if top else None
                )
            return {
                "accuracy": aggregated.accuracy,
                "consensus_quantiles": aggregated.stable_consensus_quantiles,
                "top_transitions": rendered,
            }
        predicate = caches.predicate(cell)
        return {
            "accuracy": (
                accuracy_against_predicate(results, predicate, caches.inputs(cell))
                if predicate is not None
                else None
            )
        }

    def _cell_run_seeds(self, cell: SweepCell) -> List[int]:
        """The cell's per-repetition seeds.

        Derived exactly like ``BatchRunner.run_many(seed=cell_seed)`` derives
        them, so a cell's ensemble can be reproduced outside the sweep with
        the cell seed alone.
        """
        master = random.Random(self.spec.cell_seed(cell))
        return [master.getrandbits(64) for _ in range(self.spec.repetitions)]

    def __repr__(self) -> str:
        return (
            f"SweepRunner({len(self.spec)} cells, backend={self.backend!r}, "
            f"store={self.store!r})"
        )


class _CellCaches:
    """Per-run caches shared across cells.

    One built protocol per (protocol, params) axis value — so every
    population/scheduler/engine cell of that protocol reuses its compiled
    caches — plus one scheduler instance per kind, and per
    (protocol, params, scheduler, engine) spec either one serial simulator
    or one transport pickle (the worker-side simulator-cache key, kept
    byte-stable so every cell of a spec hits the same cached simulator in
    the pool workers).
    """

    def __init__(self):
        self._protocols: Dict[Tuple[str, str], Protocol] = {}
        self._inputs: Dict[Tuple[str, str, int], Configuration] = {}
        self._schedulers: Dict[str, Scheduler] = {}
        self._serial: Dict[Tuple[str, str, str, str], Simulator] = {}
        self._spec_bytes: Dict[Tuple[str, str, str, str], bytes] = {}
        self._predicates: Dict[Tuple[str, str, int], Optional[Predicate]] = {}
        self._analytics: Dict[Tuple[str, str, int], object] = {}

    def protocol(self, cell: SweepCell) -> Protocol:
        key = (cell.protocol, cell.params_json)
        protocol = self._protocols.get(key)
        if protocol is None:
            protocol, inputs = cell.build()
            self._protocols[key] = protocol
            self._inputs[key + (cell.population,)] = inputs
        return protocol

    def inputs(self, cell: SweepCell) -> Configuration:
        key = (cell.protocol, cell.params_json, cell.population)
        inputs = self._inputs.get(key)
        if inputs is None:
            inputs = build_inputs_for(
                cell.protocol, self.protocol(cell), cell.population, cell.params
            )
            self._inputs[key] = inputs
        return inputs

    def predicate(self, cell: SweepCell) -> Optional[Predicate]:
        """The cell's registered predicate (or None), cached per grid point."""
        key = (cell.protocol, cell.params_json, cell.population)
        if key not in self._predicates:
            self._predicates[key] = cell.build_predicate()
        return self._predicates[key]

    def analytics_spec(self, cell: SweepCell, inputs: Configuration):
        """The in-worker extraction spec of a cell, cached per grid point.

        The expected predicate value is folded in up front, so every worker
        scores correctness locally without seeing the predicate object.
        """
        key = (cell.protocol, cell.params_json, cell.population)
        spec = self._analytics.get(key)
        if spec is None:
            from ..analytics.metrics import AnalyticsSpec

            predicate = self.predicate(cell)
            expected = None if predicate is None else predicate.evaluate(inputs)
            spec = AnalyticsSpec(
                histogram=True, consensus_times=True, expected_output=expected
            )
            self._analytics[key] = spec
        return spec

    def scheduler(self, cell: SweepCell) -> Scheduler:
        scheduler = self._schedulers.get(cell.scheduler)
        if scheduler is None:
            scheduler = cell.make_scheduler()
            self._schedulers[cell.scheduler] = scheduler
        return scheduler

    def _spec_key(self, cell: SweepCell) -> Tuple[str, str, str, str]:
        return (cell.protocol, cell.params_json, cell.scheduler, cell.engine)

    def serial_simulator(
        self, cell: SweepCell, protocol: Protocol, scheduler: Scheduler
    ) -> Simulator:
        key = self._spec_key(cell)
        simulator = self._serial.get(key)
        if simulator is None:
            simulator = Simulator(protocol, scheduler=scheduler, engine=cell.engine)
            self._serial[key] = simulator
        return simulator

    def spec_bytes(
        self, cell: SweepCell, protocol: Protocol, scheduler: Scheduler
    ) -> bytes:
        key = self._spec_key(cell)
        payload = self._spec_bytes.get(key)
        if payload is None:
            payload = _dumps_for_workers((protocol, scheduler, cell.engine))
            self._spec_bytes[key] = payload
        return payload


def to_experiment_table(
    store: ResultStore,
    experiment_id: str = "SWEEP",
    title: Optional[str] = None,
):
    """Render a store as an :class:`~repro.experiments.harness.ExperimentTable`.

    The bridge between the sweep subsystem and the experiment harness: E12
    returns one, and the CLI's ``show`` command renders one.
    """
    from ..experiments.harness import ExperimentTable
    from .store import COLUMNS

    table = ExperimentTable(
        experiment_id=experiment_id,
        title=title or "sweep results",
        columns=list(COLUMNS),
    )
    for row in store.rows():
        table.add_row(**row)
    return table
