"""A sqlite-backed :class:`~repro.sweep.store.ResultStore` with atomic claims.

The CSV/JSONL stores assume **one** writer: a single ``SweepRunner`` process
owns the file and persists full-table snapshots.  This module is the
multi-runner backend, py_experimenter style: the grid lives in one
``.sqlite`` file and any number of independent runner processes — one host
or many sharing a filesystem — repeatedly *claim* an open cell, execute it,
and commit the result, until the table drains.  Concurrency safety comes
entirely from sqlite:

* the database runs in WAL mode with a busy timeout, so readers never block
  the single writer and contending writers queue instead of erroring;
* every claim is one ``BEGIN IMMEDIATE`` transaction — select an eligible
  row, mark it ``running`` with the claimant's owner id and a lease expiry,
  commit — so two runners can never claim the same cell;
* result commits are **owner-guarded**: ``UPDATE … WHERE cell=? AND
  owner=? AND status='running'`` with a rowcount check, so a runner whose
  lease was reclaimed (it stalled, its heartbeat was partitioned away)
  cannot overwrite the reclaimant's work — its late commit is refused and
  reported as lost.

Liveness under crashes is lease-based: a claim holds ``lease_expires``
(wall-clock seconds), runners extend it via :meth:`~SqliteResultStore.
heartbeat` while the cell executes, and a ``running`` row whose lease has
expired is presumed orphaned by a dead runner and becomes claimable again.
Each reclaim increments ``retry_count``; a failing cell backs off
exponentially (``backoff_base * 2**(attempts-1)`` seconds between tries)
and is **parked** as a plain ``error`` row once ``max_retries`` is
exhausted, so one poisoned cell cannot livelock the fleet.

The store still *is* a :class:`ResultStore`: the single-writer API
(``ensure`` / ``mark_running`` / ``mark_done`` / ``mark_error`` / ``rows``)
works unchanged, rows carry exactly :data:`~repro.sweep.store.COLUMNS` in
registration order, and the claim bookkeeping (owner / lease / retry
columns) lives **outside** that schema — so ``rows()`` from a drained claim
store is directly comparable (and, by the determinism of cell seeds,
byte-identical once rendered) to a single-process sweep's CSV table.

Wall-clock time is used *only* for leases and backoff — scheduling
bookkeeping, never a simulation input; tests inject a fake clock.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

from .faults import fault_point
from .spec import KEYFIELDS
from .store import (
    COLUMNS,
    STATUS_CREATED,
    STATUS_DONE,
    STATUS_ERROR,
    STATUS_RUNNING,
    ResultStore,
    StoreCorruptionError,
    _FLOAT_COLUMNS,
    _INT_COLUMNS,
    _RESULT_COLUMNS,
    _STATUSES,
    _done_values,
    normalize_error_message,
)

__all__ = [
    "BOOKKEEPING_COLUMNS",
    "Claim",
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_BUSY_TIMEOUT",
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_MAX_RETRIES",
    "SqliteResultStore",
]

#: Claim-lifecycle defaults.  A lease far longer than any sane cell runtime
#: (heartbeats extend it anyway); a handful of retries with seconds-scale
#: backoff before a cell is parked.
DEFAULT_LEASE_SECONDS = 60.0
DEFAULT_MAX_RETRIES = 3
DEFAULT_BACKOFF_BASE = 1.0
DEFAULT_BUSY_TIMEOUT = 30.0

#: The claim-bookkeeping columns sqlite adds *next to* the shared
#: :data:`~repro.sweep.store.COLUMNS` schema.  They are deliberately not
#: part of ``rows()`` output: done-row comparisons against single-process
#: stores exclude exactly this set.
BOOKKEEPING_COLUMNS = ("owner", "lease_expires", "retry_count", "next_attempt")

#: Seeds are unsigned 64-bit (sha256-derived) and can exceed sqlite's signed
#: INTEGER range, so the seed column is stored as TEXT and parsed back.
_TEXT_INT_COLUMNS = frozenset({"seed"})


def _wall_clock() -> float:
    """Lease/backoff timestamps (bookkeeping only, never a simulation input)."""
    return time.time()  # qa: allow[DET102] -- lease bookkeeping, not a simulation input


class _MonotonicFloor:
    """A clock wrapper that never runs backwards (per store, thread-safe).

    Lease and backoff arithmetic assumes timestamps only grow; a backwards
    wall-clock step (NTP correction, VM resume) read raw would instantly
    "expire" every live lease — two workers then hold the same cell — or
    push ``next_attempt`` into the apparent future, stalling retries.  The
    fix is the classic monotonic floor: remember the largest value ever
    returned and clamp every read to ``max(floor, raw())``.  Time simply
    stands still until the wall clock catches back up, which is exactly the
    conservative behavior leases want (they err toward *not yet expired*).

    Wraps injected test clocks too, so the regression tests drive a fake
    clock backwards and observe the clamp.
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self._clock = clock
        self._floor = float("-inf")
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            now = float(self._clock())
            if now < self._floor:
                return self._floor
            self._floor = now
            return now


def _column_type(column: str) -> str:
    if column in _TEXT_INT_COLUMNS:
        return "TEXT"
    if column in _INT_COLUMNS:
        return "INTEGER"
    if column in _FLOAT_COLUMNS:
        return "REAL"
    return "TEXT"


def _to_db(column: str, value: object) -> object:
    if value is None:
        return None
    if column in _TEXT_INT_COLUMNS:
        return str(value)
    return value


def _from_db(column: str, value: object, context: str) -> object:
    if value is None:
        return None
    if column in _TEXT_INT_COLUMNS:
        try:
            return int(value)
        except (TypeError, ValueError):
            raise StoreCorruptionError(
                f"{context}: column {column!r} holds non-integer value {value!r}"
            ) from None
    return value


@dataclass(frozen=True)
class Claim:
    """A successfully claimed cell: who holds it, and for which attempt.

    ``attempt`` is the row's retry count at claim time: 0 on the first
    execution, 1 after one failure/reclaim, and so on — the claim loop
    reports it so chaos logs show which attempt finally committed.
    """

    cell: str
    owner: str
    attempt: int
    seed: int
    keyfields: Dict[str, object]


class SqliteResultStore(ResultStore):
    """The claim-capable sqlite backend (see the module docstring).

    Parameters
    ----------
    path:
        The ``.sqlite`` database path (created if absent).
    lease_seconds / max_retries / backoff_base:
        Claim-lifecycle knobs; see :meth:`claim_next` and :meth:`fail_claim`.
    busy_timeout:
        Seconds a writer waits on a contended database before sqlite gives
        up (surfaced as ``sqlite3.OperationalError: database is locked``).
    clock:
        The wall-clock source for leases and backoff.  Tests inject a fake;
        production uses :func:`time.time` via the module helper.  Either
        way the store clamps reads with a per-store monotonic floor
        (:class:`_MonotonicFloor`): a backwards wall-clock step can never
        expire a live lease or stall backoff arithmetic.
    """

    def __init__(
        self,
        path: Union[str, Path],
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        busy_timeout: float = DEFAULT_BUSY_TIMEOUT,
        clock: Optional[Callable[[], float]] = None,
    ):
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {max_retries}")
        if backoff_base < 0:
            raise ValueError(f"backoff_base must be non-negative, got {backoff_base}")
        # Deliberately *not* calling super().__init__: the base constructor
        # would try to text-parse the database file.  The in-memory ``_rows``
        # mirror exists only to serve the read API and is refreshed from the
        # database (the sole source of truth) before every read.
        self.path: Optional[Path] = Path(path)
        self._rows: Dict[str, Dict[str, object]] = {}
        self.recovered_cells: Tuple[str, ...] = ()
        self.lease_seconds = float(lease_seconds)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        # The clamp wraps *any* clock source, injected fakes included: a
        # backwards step is absorbed per store (see _MonotonicFloor).
        self._clock: Callable[[], float] = _MonotonicFloor(
            clock if clock is not None else _wall_clock
        )
        # One connection, shared across the claim loop and the heartbeat
        # thread; the lock serializes them (sqlite connections are not
        # thread-safe, and cross-*process* safety comes from sqlite itself).
        self._lock = threading.RLock()
        self._connection = sqlite3.connect(
            str(self.path),
            timeout=busy_timeout,
            isolation_level=None,
            check_same_thread=False,
        )
        with self._lock:
            self._connection.execute(
                f"PRAGMA busy_timeout={int(busy_timeout * 1000)}"
            )
            self._enable_wal(busy_timeout)
            self._create_schema()

    def _enable_wal(self, busy_timeout: float) -> None:
        """Switch the database to WAL, retrying through the first-open race.

        The journal-mode change needs a moment of exclusivity; sqlite's busy
        handler does not cover every lock transition involved, so two
        processes creating the same store can see a raw "database is locked"
        here.  WAL is persistent in the file header — once either opener
        wins, the other's retry is a no-op read.
        """
        deadline = time.monotonic() + busy_timeout
        while True:
            try:
                self._connection.execute("PRAGMA journal_mode=WAL")
                return
            except sqlite3.OperationalError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # ------------------------------------------------------------------
    # Schema and connection plumbing
    # ------------------------------------------------------------------
    def _create_schema(self) -> None:
        result_columns = ", ".join(
            f'"{column}" {_column_type(column)}'
            for column in COLUMNS
            if column != "cell"
        )
        self._connection.execute(
            'CREATE TABLE IF NOT EXISTS cells ('
            '"cell" TEXT PRIMARY KEY, '
            '"position" INTEGER NOT NULL, '
            f"{result_columns}, "
            '"owner" TEXT, '
            '"lease_expires" REAL, '
            '"retry_count" INTEGER NOT NULL DEFAULT 0, '
            '"next_attempt" REAL)'
        )

    def _transaction(self) -> "_ImmediateTransaction":
        return _ImmediateTransaction(self._connection, self._lock)

    def close(self) -> None:
        """Close the database connection (the store is unusable after)."""
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "SqliteResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # ResultStore contract (single-writer API)
    # ------------------------------------------------------------------
    def ensure(
        self, cell_id: str, keyfields: Mapping[str, object], seed: int
    ) -> bool:
        """Register a cell unless present (cross-process idempotent).

        Unlike the file stores, several launcher processes may race to
        register the same grid: ``INSERT OR IGNORE`` makes the race benign,
        and the loser still *verifies* the surviving row agrees on keyfields
        and seed — a mismatch means two different specs were pointed at one
        database, which raises :class:`StoreCorruptionError` exactly like a
        foreign-file resume would.
        """
        with self._transaction():
            inserted = self._connection.execute(
                'INSERT OR IGNORE INTO cells ("cell", "position", "seed", "status", '
                + ", ".join(f'"{key}"' for key in keyfields)
                + ") VALUES (?, (SELECT COALESCE(MAX(position) + 1, 0) FROM cells), ?, ?, "
                + ", ".join("?" for _ in keyfields)
                + ")",
                [cell_id, _to_db("seed", seed), STATUS_CREATED]
                + [_to_db(key, value) for key, value in keyfields.items()],
            ).rowcount
            row = self._fetch_row(cell_id)
        if row is None:  # pragma: no cover - insert-or-ignore guarantees a row
            raise StoreCorruptionError(f"cell {cell_id!r} vanished mid-registration")
        for key, value in keyfields.items():
            if row.get(key) != value:
                raise StoreCorruptionError(
                    f"store row for {cell_id!r} disagrees on {key!r} "
                    f"({row.get(key)!r} != {value!r}); this store was "
                    "written by a different sweep spec"
                )
        if row.get("seed") != seed:
            raise StoreCorruptionError(
                f"store row for {cell_id!r} carries seed {row.get('seed')!r}, "
                f"expected {seed}; this store was written with a different "
                "master seed"
            )
        return inserted == 1

    def mark_running(self, cell_id: str) -> None:
        with self._transaction():
            self._require_cell(cell_id)
            clears = ", ".join(f'"{column}" = NULL' for column in _RESULT_COLUMNS)
            self._connection.execute(
                f'UPDATE cells SET "status" = ?, {clears} WHERE "cell" = ?',
                (STATUS_RUNNING, cell_id),
            )

    def mark_done(
        self,
        cell_id: str,
        statistics: object,
        accuracy: Optional[float] = None,
        consensus_quantiles: Optional[Tuple[Optional[float], ...]] = None,
        top_transitions: Optional[str] = None,
    ) -> None:
        values = _done_values(statistics, accuracy, consensus_quantiles, top_transitions)
        with self._transaction():
            self._require_cell(cell_id)
            self._apply_values(cell_id, values)

    def mark_error(self, cell_id: str, message: str) -> None:
        with self._transaction():
            self._require_cell(cell_id)
            clears = ", ".join(f'"{column}" = NULL' for column in _RESULT_COLUMNS)
            self._connection.execute(
                f'UPDATE cells SET "status" = ?, {clears}, "error" = ? '
                'WHERE "cell" = ?',
                (STATUS_ERROR, normalize_error_message(message), cell_id),
            )

    def import_rows(self, rows: "List[Mapping[str, object]]") -> None:
        with self._transaction():
            for row in rows:
                cell_id = row.get("cell")
                if not cell_id:
                    raise ValueError("imported rows must carry a 'cell' id")
                if row.get("status") not in _STATUSES:
                    raise ValueError(
                        f"imported row for {cell_id!r} carries invalid status "
                        f"{row.get('status')!r}"
                    )
                self._connection.execute(
                    'INSERT OR REPLACE INTO cells ("cell", "position", '
                    + ", ".join(f'"{c}"' for c in COLUMNS if c != "cell")
                    + ") VALUES (?, "
                    "COALESCE((SELECT position FROM cells WHERE cell = ?), "
                    "(SELECT COALESCE(MAX(position) + 1, 0) FROM cells)), "
                    + ", ".join("?" for c in COLUMNS if c != "cell")
                    + ")",
                    [cell_id, cell_id]
                    + [_to_db(c, row.get(c)) for c in COLUMNS if c != "cell"],
                )

    def flush(self) -> None:
        """A no-op: every mutation above already committed durably."""

    # ------------------------------------------------------------------
    # Claim lifecycle (the multi-runner API)
    # ------------------------------------------------------------------
    def claim_next(self, owner: str) -> Optional[Claim]:
        """Atomically claim the next open cell for ``owner``, or ``None``.

        Eligible, in grid (registration) order:

        * ``created`` rows — never attempted;
        * ``running`` rows whose lease expired — orphaned by a dead or
          partitioned runner; reclaiming increments ``retry_count`` and, if
          that exhausts ``max_retries``, the row is *parked* as ``error``
          (with a lease-expiry message) instead of claimed;
        * ``error`` rows with a due ``next_attempt`` — failed earlier, now
          past their backoff; parked rows (``next_attempt`` NULL) stay put.

        The whole scan-and-mark runs in one ``BEGIN IMMEDIATE`` transaction,
        so concurrent claimants serialize and can never double-claim.  Returns
        ``None`` only when no row is currently eligible (the grid may still
        hold live claims or backing-off rows — see :meth:`unresolved_count`).
        """
        if not owner:
            raise ValueError("claim owner id must be non-empty")
        now = self._clock()
        with self._transaction() as txn:
            eligible = self._connection.execute(
                'SELECT "cell", "status", "retry_count" FROM cells WHERE '
                '("status" = ?) OR '
                '("status" = ? AND "lease_expires" IS NOT NULL AND "lease_expires" <= ?) OR '
                '("status" = ? AND "next_attempt" IS NOT NULL AND "next_attempt" <= ?) '
                'ORDER BY "position"',
                (STATUS_CREATED, STATUS_RUNNING, now, STATUS_ERROR, now),
            ).fetchall()
            for cell_id, status, retry_count in eligible:
                attempt = int(retry_count)
                if status == STATUS_RUNNING:
                    # A stale lease: the previous owner is presumed dead.
                    attempt += 1
                    if attempt > self.max_retries:
                        self._park(
                            cell_id,
                            attempt,
                            f"lease expired after {attempt} attempts; parked",
                        )
                        continue
                clears = ", ".join(
                    f'"{column}" = NULL' for column in _RESULT_COLUMNS
                )
                self._connection.execute(
                    f'UPDATE cells SET "status" = ?, {clears}, "owner" = ?, '
                    '"lease_expires" = ?, "retry_count" = ?, "next_attempt" = NULL '
                    'WHERE "cell" = ?',
                    (STATUS_RUNNING, owner, now + self.lease_seconds, attempt, cell_id),
                )
                row = self._fetch_row(cell_id)
                if not fault_point("before-claim-commit"):
                    # A scripted drop: abandon the claim (roll back) but
                    # keep any parking decisions? No — the whole txn rolls
                    # back, exactly like a runner dying mid-claim.
                    txn.rollback()
                    return None
                assert row is not None
                return Claim(
                    cell=cell_id,
                    owner=owner,
                    attempt=attempt,
                    seed=int(row["seed"]),  # type: ignore[arg-type]
                    keyfields={key: row[key] for key in KEYFIELDS},
                )
        return None

    def heartbeat(self, claim: Claim) -> bool:
        """Extend a held claim's lease; returns whether the claim survives.

        ``False`` means the claim is gone — the lease expired and another
        runner reclaimed (or parked) the cell — and the holder should stop
        wasting cycles on it.  The ``heartbeat-loss`` fault point models a
        network partition: a ``drop`` rule silently suppresses the lease
        extension (this call lies ``True``) so the lease expires under a
        still-running cell.
        """
        if not fault_point("heartbeat-loss"):
            return True
        now = self._clock()
        with self._transaction():
            updated = self._connection.execute(
                'UPDATE cells SET "lease_expires" = ? WHERE "cell" = ? AND '
                '"owner" = ? AND "status" = ?',
                (now + self.lease_seconds, claim.cell, claim.owner, STATUS_RUNNING),
            ).rowcount
        return updated == 1

    def finish_claim(
        self,
        claim: Claim,
        statistics: object,
        accuracy: Optional[float] = None,
        consensus_quantiles: Optional[Tuple[Optional[float], ...]] = None,
        top_transitions: Optional[str] = None,
    ) -> bool:
        """Commit a claimed cell's results; returns whether the commit won.

        The update is owner-guarded: it only applies while ``claim`` still
        holds the row.  A ``False`` return means the commit was *lost* —
        the lease expired and the cell was reclaimed (its new owner will
        produce the identical row, so nothing is damaged) — or a scripted
        ``before-result-write`` drop suppressed the write.  Either way the
        claim holder must not retry the write: the row is no longer theirs.
        """
        values = _done_values(statistics, accuracy, consensus_quantiles, top_transitions)
        if not fault_point("before-result-write"):
            return False
        with self._transaction():
            assignments = ", ".join(f'"{column}" = ?' for column in values)
            updated = self._connection.execute(
                f'UPDATE cells SET {assignments}, "lease_expires" = NULL, '
                '"next_attempt" = NULL '
                'WHERE "cell" = ? AND "owner" = ? AND "status" = ?',
                [_to_db(column, value) for column, value in values.items()]
                + [claim.cell, claim.owner, STATUS_RUNNING],
            ).rowcount
        return updated == 1

    def fail_claim(self, claim: Claim, message: str) -> str:
        """Record a claimed cell's failure; returns the row's fate.

        ``"retry"``
            The failure is recorded (status ``error``) with ``next_attempt``
            set ``backoff_base * 2**attempts`` seconds out — the row becomes
            claimable again once the backoff elapses.
        ``"parked"``
            Retries are exhausted; the row is a terminal ``error`` row
            (``next_attempt`` NULL) exactly as :meth:`mark_error` writes it,
            plus the retry bookkeeping.
        ``"lost"``
            The claim had already been reclaimed; nothing was written.
        """
        now = self._clock()
        with self._transaction():
            held = self._connection.execute(
                'SELECT "retry_count" FROM cells WHERE "cell" = ? AND '
                '"owner" = ? AND "status" = ?',
                (claim.cell, claim.owner, STATUS_RUNNING),
            ).fetchone()
            if held is None:
                return "lost"
            attempts = int(held[0]) + 1
            if attempts > self.max_retries:
                self._park(claim.cell, attempts, message)
                return "parked"
            clears = ", ".join(f'"{column}" = NULL' for column in _RESULT_COLUMNS)
            backoff = self.backoff_base * (2 ** (attempts - 1))
            self._connection.execute(
                f'UPDATE cells SET "status" = ?, {clears}, "error" = ?, '
                '"owner" = NULL, "lease_expires" = NULL, "retry_count" = ?, '
                '"next_attempt" = ? WHERE "cell" = ?',
                (
                    STATUS_ERROR,
                    normalize_error_message(message),
                    attempts,
                    now + backoff,
                    claim.cell,
                ),
            )
            return "retry"

    def release_claim(self, claim: Claim) -> bool:
        """Hand a held claim back untouched (graceful SIGTERM drain).

        The row returns to ``created``, immediately claimable by any other
        runner; a clean handback does not consume a retry (``retry_count``
        stays at the claim's attempt number).  Returns whether the claim
        was still held.
        """
        with self._transaction():
            updated = self._connection.execute(
                'UPDATE cells SET "status" = ?, "owner" = NULL, '
                '"lease_expires" = NULL, "retry_count" = ?, "next_attempt" = NULL '
                'WHERE "cell" = ? AND "owner" = ? AND "status" = ?',
                (
                    STATUS_CREATED,
                    claim.attempt,
                    claim.cell,
                    claim.owner,
                    STATUS_RUNNING,
                ),
            ).rowcount
        return updated == 1

    def _park(self, cell_id: str, attempts: int, message: str) -> None:
        """Terminal error: record the failure with retries exhausted."""
        clears = ", ".join(f'"{column}" = NULL' for column in _RESULT_COLUMNS)
        self._connection.execute(
            f'UPDATE cells SET "status" = ?, {clears}, "error" = ?, '
            '"owner" = NULL, "lease_expires" = NULL, "retry_count" = ?, '
            '"next_attempt" = NULL WHERE "cell" = ?',
            (STATUS_ERROR, normalize_error_message(message), attempts, cell_id),
        )

    # ------------------------------------------------------------------
    # Queries (refresh the mirror from the database first)
    # ------------------------------------------------------------------
    def unresolved_count(self) -> int:
        """Rows that still need work: not ``done`` and not parked.

        Zero means the grid is fully drained (every cell is ``done`` or a
        terminal ``error`` row) — the claim loop's exit condition when
        waiting out other runners' live claims and backoff windows.
        """
        with self._lock:
            (count,) = self._connection.execute(
                'SELECT COUNT(*) FROM cells WHERE "status" NOT IN (?, ?) OR '
                '("status" = ? AND "next_attempt" IS NOT NULL)',
                (STATUS_DONE, STATUS_ERROR, STATUS_ERROR),
            ).fetchone()
        return int(count)

    def next_attempt_at(self) -> Optional[float]:
        """The soonest moment any backoff/lease makes a row eligible."""
        with self._lock:
            (soonest,) = self._connection.execute(
                'SELECT MIN(t) FROM (SELECT "next_attempt" AS t FROM cells '
                'WHERE "status" = ? AND "next_attempt" IS NOT NULL '
                'UNION ALL SELECT "lease_expires" AS t FROM cells '
                'WHERE "status" = ? AND "lease_expires" IS NOT NULL)',
                (STATUS_ERROR, STATUS_RUNNING),
            ).fetchone()
        return None if soonest is None else float(soonest)

    def bookkeeping(self, cell_id: str) -> Dict[str, object]:
        """The claim-bookkeeping columns of one row (tests and diagnostics)."""
        with self._lock:
            fetched = self._connection.execute(
                "SELECT "
                + ", ".join(f'"{c}"' for c in BOOKKEEPING_COLUMNS)
                + ' FROM cells WHERE "cell" = ?',
                (cell_id,),
            ).fetchone()
        if fetched is None:
            raise KeyError(f"unknown cell {cell_id!r}; call ensure() first")
        return dict(zip(BOOKKEEPING_COLUMNS, fetched))

    def _fetch_row(self, cell_id: str) -> Optional[Dict[str, object]]:
        fetched = self._connection.execute(
            "SELECT " + ", ".join(f'"{c}"' for c in COLUMNS)
            + ' FROM cells WHERE "cell" = ?',
            (cell_id,),
        ).fetchone()
        if fetched is None:
            return None
        context = f"{self.path}: cell {cell_id!r}"
        return {
            column: _from_db(column, value, context)
            for column, value in zip(COLUMNS, fetched)
        }

    def _require_cell(self, cell_id: str) -> None:
        found = self._connection.execute(
            'SELECT 1 FROM cells WHERE "cell" = ?', (cell_id,)
        ).fetchone()
        if found is None:
            raise KeyError(f"unknown cell {cell_id!r}; call ensure() first")

    def _apply_values(self, cell_id: str, values: Mapping[str, object]) -> None:
        assignments = ", ".join(f'"{column}" = ?' for column in values)
        self._connection.execute(
            f'UPDATE cells SET {assignments} WHERE "cell" = ?',
            [_to_db(column, value) for column, value in values.items()] + [cell_id],
        )

    def _refresh(self) -> None:
        with self._lock:
            fetched = self._connection.execute(
                "SELECT " + ", ".join(f'"{c}"' for c in COLUMNS)
                + " FROM cells ORDER BY position"
            ).fetchall()
        rows: Dict[str, Dict[str, object]] = {}
        for record in fetched:
            row = {
                column: _from_db(
                    column, value, f"{self.path}: cell {record[0]!r}"
                )
                for column, value in zip(COLUMNS, record)
            }
            status = row.get("status")
            if status not in _STATUSES:
                raise StoreCorruptionError(
                    f"{self.path}: row for {row.get('cell')!r} carries invalid "
                    f"status {status!r}"
                )
            rows[str(row["cell"])] = row
        self._rows = rows

    def rows(self) -> List[Dict[str, object]]:
        self._refresh()
        return super().rows()

    def get(self, cell_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            return self._fetch_row(cell_id)

    def status(self, cell_id: str) -> Optional[str]:
        row = self.get(cell_id)
        return None if row is None else row["status"]  # type: ignore[return-value]

    def status_counts(self) -> Dict[str, int]:
        self._refresh()
        return super().status_counts()

    def __len__(self) -> int:
        self._refresh()
        return len(self._rows)

    def __contains__(self, cell_id: str) -> bool:
        return self.get(cell_id) is not None


class _ImmediateTransaction:
    """``BEGIN IMMEDIATE`` … ``COMMIT`` with rollback on exceptions.

    ``BEGIN IMMEDIATE`` takes the database write lock *up front*, so the
    read-check-update sequences above are serialized across processes — the
    sqlite-level mutual exclusion every claim guarantee rests on.
    """

    def __init__(self, connection: sqlite3.Connection, lock: threading.RLock):
        self._connection = connection
        self._lock = lock
        self._finished = False

    def __enter__(self) -> "_ImmediateTransaction":
        self._lock.acquire()
        try:
            self._connection.execute("BEGIN IMMEDIATE")
        except BaseException:
            self._lock.release()
            raise
        return self

    def rollback(self) -> None:
        if not self._finished:
            self._finished = True
            self._connection.execute("ROLLBACK")

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        try:
            if not self._finished:
                self._finished = True
                if exc_type is None:
                    self._connection.execute("COMMIT")
                else:
                    self._connection.execute("ROLLBACK")
        finally:
            self._lock.release()
