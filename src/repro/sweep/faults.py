"""Deterministic fault injection for the distributed sweep layer.

Chaos testing a claim-based store is only useful if the chaos is
**reproducible**: "kill a runner somewhere around the third cell" is not a
regression test.  This module therefore scripts faults ahead of time: a
:class:`FaultPlan` is a set of ``(point, hit, action)`` rules, and the claim
store / claim loop call :func:`fault_point` at a fixed set of named injection
points.  The Nth evaluation of a point in a process fires exactly the action
the plan scripted for hit N — nothing else, ever — so a chaos test states
precisely where in the claim lifecycle a runner dies, and does so on every
run.

Injection points (:data:`INJECTION_POINTS`)
-------------------------------------------
``before-claim-commit``
    Inside :meth:`~repro.sweep.dbstore.SqliteResultStore.claim_next`, after
    the claim ``UPDATE`` but before the transaction commits.  A fault here
    must leave the cell claimable (the transaction rolls back / is never
    committed), proving a runner dying mid-claim loses nothing.
``mid-cell``
    In the claim loop, after a claim is held but before the cell's ensemble
    executes.  A ``kill`` here leaves a stale ``running`` row whose lease
    must expire and be reclaimed.
``before-result-write``
    Inside :meth:`~repro.sweep.dbstore.SqliteResultStore.finish_claim`,
    after the ensemble completed but before the ``done`` row is written.
    The most adversarial spot: the work is done, the commit is lost — the
    cell must be recomputed to an identical row.
``heartbeat-loss``
    Inside the heartbeat sender.  The ``drop`` action suppresses this and
    every later heartbeat (a sustained network partition), so the lease
    expires under a still-running cell and another runner reclaims it; the
    original owner's late commit must then be refused.

Actions (:data:`ACTIONS`)
-------------------------
``raise``
    Raise :class:`InjectedFault` — exercises the exception paths (retry /
    backoff / park) without killing the process.
``kill``
    ``SIGKILL`` the current process — no cleanup handlers, exactly like a
    crashed host.
``drop``
    Silently skip the guarded operation.  Only meaningful at points guarding
    a suppressible side effect.  At ``heartbeat-loss`` the drop is **sticky**
    — this and every later heartbeat vanishes, a sustained partition; at the
    other points it suppresses exactly the scripted hit (a one-shot loss:
    the retried operation must then succeed, or recovery could never be
    proven).

Plans travel as text (``"mid-cell@1:kill;heartbeat-loss@2:drop"``) through
the ``REPRO_FAULT_PLAN`` environment variable — read via the sanctioned
:func:`repro.config.fault_plan_text` funnel — or are installed
programmatically with :func:`install_fault_plan`.  :meth:`FaultPlan.seeded`
derives a plan from an integer seed for randomized-but-reproducible sweeps
of the fault space.

Faults only ever interrupt bookkeeping and control flow.  No injection
point sits inside a simulation, so an installed plan cannot change any
computed statistic — only whether, where, and on which attempt it commits.
That is what makes the kill-anywhere/resume-anywhere byte-identity tests
meaningful.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..config import fault_plan_text

__all__ = [
    "ACTIONS",
    "INJECTION_POINTS",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "fault_point",
    "install_fault_plan",
]

#: The named injection points, in claim-lifecycle order.
INJECTION_POINTS = (
    "before-claim-commit",
    "mid-cell",
    "before-result-write",
    "heartbeat-loss",
)

#: The scripted actions a rule may fire.
ACTIONS = ("raise", "kill", "drop")

#: Points where a ``drop`` is sticky (suppresses every later evaluation
#: too): losing heartbeats models a sustained partition, and a partition
#: does not heal after one missed beat.
_STICKY_DROP_POINTS = frozenset({"heartbeat-loss"})


class InjectedFault(RuntimeError):
    """The exception fired by a ``raise`` rule (carries point and hit)."""

    def __init__(self, point: str, hit: int):
        super().__init__(f"injected fault at {point} (hit {hit})")
        self.point = point
        self.hit = hit


@dataclass(frozen=True)
class FaultRule:
    """Fire ``action`` on the ``hit``-th evaluation of ``point`` (1-based)."""

    point: str
    hit: int
    action: str

    def __post_init__(self):
        if self.point not in INJECTION_POINTS:
            raise ValueError(
                f"unknown injection point {self.point!r} "
                f"(expected one of {INJECTION_POINTS})"
            )
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (expected one of {ACTIONS})"
            )
        if not isinstance(self.hit, int) or isinstance(self.hit, bool) or self.hit < 1:
            raise ValueError(f"hit must be a positive integer, got {self.hit!r}")

    def render(self) -> str:
        return f"{self.point}@{self.hit}:{self.action}"


class FaultPlan:
    """An immutable set of :class:`FaultRule` values with a text round trip."""

    def __init__(self, rules: Iterable[FaultRule] = ()):
        rules = tuple(rules)
        seen: Set[Tuple[str, int]] = set()
        for rule in rules:
            key = (rule.point, rule.hit)
            if key in seen:
                raise ValueError(
                    f"duplicate fault rule for {rule.point}@{rule.hit}"
                )
            seen.add(key)
        self.rules: Tuple[FaultRule, ...] = rules
        self._by_key: Dict[Tuple[str, int], str] = {
            (rule.point, rule.hit): rule.action for rule in rules
        }

    @property
    def empty(self) -> bool:
        return not self.rules

    def action_for(self, point: str, hit: int) -> Optional[str]:
        """The scripted action for this evaluation, or ``None``."""
        return self._by_key.get((point, hit))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the text rendering: ``point@hit:action`` joined by ``;``.

        Whitespace around separators is ignored; an empty string is the
        empty plan.  Malformed rules raise :class:`ValueError` naming the
        offending fragment — a typo'd chaos job must fail loudly, not run
        fault-free.
        """
        rules: List[FaultRule] = []
        for fragment in text.split(";"):
            fragment = fragment.strip()
            if not fragment:
                continue
            head, separator, action = fragment.rpartition(":")
            point, at, hit_text = head.partition("@")
            if not separator or not at:
                raise ValueError(
                    f"malformed fault rule {fragment!r} "
                    "(expected 'point@hit:action')"
                )
            try:
                hit = int(hit_text)
            except ValueError:
                raise ValueError(
                    f"malformed fault rule {fragment!r}: hit {hit_text!r} "
                    "is not an integer"
                ) from None
            rules.append(FaultRule(point.strip(), hit, action.strip()))
        return cls(rules)

    @classmethod
    def seeded(
        cls,
        seed: int,
        count: int = 1,
        points: Sequence[str] = INJECTION_POINTS,
        actions: Sequence[str] = ("raise",),
        max_hit: int = 3,
    ) -> "FaultPlan":
        """A deterministic pseudo-random plan: ``count`` rules drawn from a
        seeded :class:`random.Random` over the given points/actions and hit
        counts ``1..max_hit``.

        The same seed always yields the same plan, so a randomized chaos
        sweep is reported (and replayed) by its seed alone.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if max_hit < 1:
            raise ValueError(f"max_hit must be at least 1, got {max_hit}")
        rng = random.Random(seed)
        keys = [(point, hit) for point in points for hit in range(1, max_hit + 1)]
        if count > len(keys):
            raise ValueError(
                f"cannot draw {count} distinct rules from {len(keys)} "
                "(point, hit) slots"
            )
        chosen = rng.sample(keys, count)
        return cls(
            FaultRule(point, hit, actions[rng.randrange(len(actions))])
            for point, hit in chosen
        )

    def render(self) -> str:
        """The text form accepted by :meth:`parse` (and the environment)."""
        return ";".join(rule.render() for rule in self.rules)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self.rules == other.rules

    def __repr__(self) -> str:
        return f"FaultPlan({self.render()!r})" if self.rules else "FaultPlan()"


class _FaultState:
    """Per-process controller: the active plan plus evaluation counters."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counts: Dict[str, int] = {point: 0 for point in INJECTION_POINTS}
        self.sticky_drops: Set[str] = set()


#: ``None`` means "not yet initialized": the first :func:`fault_point` call
#: parses ``REPRO_FAULT_PLAN`` from the environment.  Chaos subprocesses
#: therefore need no code changes — exporting the variable is enough.
_STATE: Optional[_FaultState] = None


def install_fault_plan(plan: Union[FaultPlan, str, None]) -> None:
    """Install a plan programmatically (resetting all hit counters).

    ``None`` clears back to the uninitialized state, so the next evaluation
    re-reads the environment — tests use this to restore isolation.
    """
    global _STATE
    if plan is None:
        _STATE = None
        return
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _STATE = _FaultState(plan)


def _ensure_state() -> _FaultState:
    global _STATE
    if _STATE is None:
        _STATE = _FaultState(FaultPlan.parse(fault_plan_text()))
    return _STATE


def _kill_self() -> None:  # pragma: no cover - the process dies here
    if hasattr(signal, "SIGKILL"):
        os.kill(os.getpid(), signal.SIGKILL)
    os._exit(137)


def fault_point(point: str) -> bool:
    """Evaluate an injection point; returns whether to proceed.

    ``True``: no fault (or none scripted for this hit) — perform the guarded
    operation.  ``False``: a ``drop`` rule fired — silently skip it (at
    ``heartbeat-loss`` the drop is sticky from then on).  A ``raise`` rule
    raises :class:`InjectedFault`; a ``kill`` rule does not return.
    """
    if point not in INJECTION_POINTS:
        raise ValueError(
            f"unknown injection point {point!r} (expected one of {INJECTION_POINTS})"
        )
    state = _ensure_state()
    if point in state.sticky_drops:
        return False
    state.counts[point] += 1
    action = state.plan.action_for(point, state.counts[point])
    if action is None:
        return True
    if action == "raise":
        raise InjectedFault(point, state.counts[point])
    if action == "kill":  # pragma: no cover - the process dies here
        _kill_self()
    if point in _STICKY_DROP_POINTS:
        state.sticky_drops.add(point)
    return False
