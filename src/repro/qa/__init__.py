"""Static quality assurance for the reproduction: lint, audit, typed core.

The whole value of this codebase rests on one invariant: for a fixed
``(protocol, inputs, seed)`` the reference, compiled, and NumPy engines
consume the random stream identically and produce bit-identical trajectories.
PRs 1–5 defend that invariant with example-based tests (golden trajectories,
cross-engine equality suites); this package defends it *statically*, so the
hazard classes that break it are flagged at review time instead of whenever a
golden file happens to disagree.

Architecture — three independent passes over different artifacts, sharing
one finding/suppression pipeline:

``rules``
    The rule catalogue (``DET1xx`` determinism errors, ``DET2xx`` ordering
    warnings, ``PKL001`` pickle safety), :class:`~repro.qa.rules.Finding`,
    ``# qa: allow[rule-id]`` pragma parsing, and the committed-baseline
    machinery.  Everything a pass emits flows through here.

``determinism``
    An ``ast`` walker over the *library sources*: module-level ``random``
    calls, wall-clock/entropy reads, environment reads outside
    :mod:`repro.config`, set iteration feeding ordering-sensitive sinks,
    un-keyed ``sorted``/``min``/``max`` over sets.

``codegen_audit``
    A structural verifier over the *generated stepper sources* that
    :class:`~repro.simulation.compiled.CompiledNet` ``exec``-compiles:
    closed namespaces, pure-local step loops, complete transition dispatch
    matching the net's delta lists, recording variant = fast variant + ring
    writes.  Nothing human reviews the per-net generated code; this pass
    does.

``picklesafety``
    A shape-based scan for classes caching generated functions/closures on
    ``self`` without a ``__getstate__`` to drop them — the bug class that
    breaks shipping net specs to batch worker processes.

``cli`` / ``__main__``
    ``python -m repro.qa {lint,audit-codegen,check-pickle,typecheck,rules}``
    with the 0/1/2 exit-code convention of ``repro.analytics``, which is what
    the CI ``qa`` job gates on.  ``typecheck`` drives ``mypy`` (optional
    ``qa`` extra) over the annotated ``repro.core`` + ``repro.simulation``
    packages.

The passes are deliberately local tripwires, not a type system: they catch
the common hazard *shapes* cheaply and loudly, while the golden-trajectory
and cross-engine test suites remain the ground truth.
"""

from .rules import RULES, Finding, Rule

__all__ = ["RULES", "Finding", "Rule"]
