"""The QA rule catalogue, findings, suppression pragmas, and baselines.

Shared plumbing of the static-analysis passes (:mod:`repro.qa.determinism`,
:mod:`repro.qa.picklesafety`): every pass emits :class:`Finding` values whose
``rule`` field names an entry of :data:`RULES`, and the CLI funnels them
through the same suppression pipeline —

1. **pragmas**: a finding on a line carrying ``# qa: allow[RULE-ID]`` (ids
   comma-separated, optionally followed by ``-- justification``) is dropped
   at the source.  Pragmas are the per-site escape hatch for code that is
   *provably* safe despite matching a rule (e.g. an un-keyed ``sorted`` over
   a set of dense integer indices, which are totally ordered);
2. **baseline**: findings whose :meth:`Finding.fingerprint` appears in a
   committed baseline file are reported as baselined and do not fail the
   lint.  The baseline is the adoption path for pre-existing accepted sites:
   ``python -m repro.qa lint --write-baseline`` records the current findings,
   and CI gates only on *new* ones.  Fingerprints are line-number-free
   (path, rule, stripped source text), so unrelated edits above a baselined
   site do not invalidate it.

Severities order ``error > warning > info``; the CLI fails (exit 1) on any
unsuppressed finding at or above its ``--fail-on`` threshold (default
``warning``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "SEVERITIES",
    "RULES",
    "Rule",
    "Finding",
    "parse_pragmas",
    "apply_pragmas",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "severity_at_least",
]

#: Severity levels, most severe first.
SEVERITIES = ("error", "warning", "info")


@dataclass(frozen=True)
class Rule:
    """One entry of the rule catalogue."""

    id: str
    severity: str
    summary: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r} (expected one of {SEVERITIES})"
            )


#: The rule catalogue.  Ids are stable — pragmas and baselines reference
#: them — so renumbering is a breaking change.
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Rule(
            "DET101",
            "error",
            "module-level random.* call: thread a seeded random.Random "
            "instance instead",
        ),
        Rule(
            "DET102",
            "error",
            "wall-clock / entropy source (time.time, datetime.now, "
            "os.urandom, uuid) in library code",
        ),
        Rule(
            "DET103",
            "error",
            "environment read outside the sanctioned config module "
            "(repro/config.py)",
        ),
        Rule(
            "DET201",
            "warning",
            "iteration over a set/frozenset flows into an ordering-sensitive "
            "sink (list/tuple/enumerate/append/index assignment)",
        ),
        Rule(
            "DET202",
            "warning",
            "un-keyed min/max/sorted over a set: add key= (or prove the "
            "elements totally ordered and pragma)",
        ),
        Rule(
            "PKL001",
            "error",
            "class stores generated functions/closures without a "
            "__getstate__ that drops them (breaks pickling to batch workers)",
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One reported violation, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str
    #: Stripped text of the flagged source line, the line-number-free part of
    #: the baseline fingerprint.
    source: str = ""
    #: Set by the suppression pipeline: ``None`` = live, else the reason the
    #: finding does not gate ("pragma" / "baseline").
    suppressed: Optional[str] = field(default=None, compare=False)

    @property
    def severity(self) -> str:
        rule = RULES.get(self.rule)
        return rule.severity if rule is not None else "error"

    def fingerprint(self) -> Tuple[str, str, str]:
        """The baseline identity: path, rule, and flagged source text.

        Line numbers are deliberately absent so edits elsewhere in the file
        do not churn the baseline; two identical lines in one file share a
        fingerprint and are matched with multiset semantics.
        """
        return (Path(self.path).as_posix(), self.rule, self.source.strip())

    def render(self) -> str:
        tag = f" [{self.suppressed}]" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule} {self.severity}: {self.message}{tag}"


def severity_at_least(severity: str, threshold: str) -> bool:
    """True if ``severity`` is at least as severe as ``threshold``."""
    return SEVERITIES.index(severity) <= SEVERITIES.index(threshold)


# ----------------------------------------------------------------------
# Suppression pragmas
# ----------------------------------------------------------------------
#: ``# qa: allow[DET202]`` / ``# qa: allow[DET101, DET102] -- justification``
_PRAGMA_RE = re.compile(r"#\s*qa:\s*allow\[([A-Za-z0-9_,\s*]+)\]")


def parse_pragmas(source: str) -> Dict[int, frozenset]:
    """Map 1-based line numbers to the rule ids allowed on that line.

    The pragma must sit on the flagged line itself (trailing comment) or on
    its own line directly above — the latter for lines too long to carry a
    trailing comment.  The wildcard ``allow[*]`` suppresses every rule.
    """
    allowed: Dict[int, frozenset] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if not match:
            continue
        ids = frozenset(part.strip() for part in match.group(1).split(",") if part.strip())
        allowed[number] = allowed.get(number, frozenset()) | ids
        if text.lstrip().startswith("#"):
            # A standalone pragma comment covers the next line as well.
            allowed[number + 1] = allowed.get(number + 1, frozenset()) | ids
    return allowed


def apply_pragmas(findings: Iterable[Finding], pragmas: Dict[int, frozenset]) -> List[Finding]:
    """Mark findings allowed by a pragma on their line as suppressed."""
    result = []
    for finding in findings:
        ids = pragmas.get(finding.line, frozenset())
        if finding.rule in ids or "*" in ids:
            finding = Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                message=finding.message,
                source=finding.source,
                suppressed="pragma",
            )
        result.append(finding)
    return result


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
_BASELINE_VERSION = 1


def load_baseline(path: Path) -> List[Tuple[str, str, str]]:
    """Read a baseline file into a list of fingerprints.

    Raises :class:`ValueError` on malformed files — a corrupt baseline must
    fail the lint rather than silently baseline nothing (or everything).
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"baseline {path} is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or payload.get("version") != _BASELINE_VERSION:
        raise ValueError(
            f"baseline {path} has an unsupported format "
            f"(expected a JSON object with version={_BASELINE_VERSION})"
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} is missing its findings list")
    fingerprints = []
    for entry in entries:
        try:
            fingerprints.append((entry["path"], entry["rule"], entry["source"]))
        except (TypeError, KeyError):
            raise ValueError(
                f"baseline {path} contains a malformed entry: {entry!r}"
            ) from None
    return fingerprints


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the fingerprints of the (unsuppressed) findings as the baseline.

    Entries are sorted so the file is byte-stable for a given finding set
    regardless of scan order — a committed baseline should not churn.
    """
    entries = sorted(
        (
            {"path": p, "rule": r, "source": s}
            for (p, r, s) in (f.fingerprint() for f in findings if f.suppressed is None)
        ),
        key=lambda entry: (entry["path"], entry["rule"], entry["source"]),
    )
    payload = {"version": _BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def apply_baseline(
    findings: Iterable[Finding], fingerprints: Sequence[Tuple[str, str, str]]
) -> List[Finding]:
    """Mark findings matching baseline fingerprints as suppressed.

    Matching is multiset-style: a fingerprint occurring once in the baseline
    absorbs only one occurrence of an identical finding, so *adding* a second
    copy of a baselined hazard still fails the lint.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for fingerprint in fingerprints:
        budget[fingerprint] = budget.get(fingerprint, 0) + 1
    result = []
    for finding in findings:
        key = finding.fingerprint()
        if finding.suppressed is None and budget.get(key, 0) > 0:
            budget[key] -= 1
            finding = Finding(
                rule=finding.rule,
                path=finding.path,
                line=finding.line,
                message=finding.message,
                source=finding.source,
                suppressed="baseline",
            )
        result.append(finding)
    return result
