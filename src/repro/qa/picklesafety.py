"""Pickle-safety checker: generated-function attributes need ``__getstate__``.

The batch layer ships net specs to worker processes by pickling them
(:mod:`repro.simulation.batch`).  Any class that caches ``exec``-compiled
steppers or locally-defined closures on ``self`` is unpicklable *unless* it
defines a ``__getstate__`` that drops those caches — the exact bug class that
was fixed by hand in ``PetriNet`` / ``CompiledNet`` and that every new engine
is one forgotten method away from reintroducing.

The scan is static and two-phase, per batch of files:

1. collect **generator factories**: functions (module-level or methods) that
   call ``exec``/``compile`` or return a nested ``def``/``lambda``.  A value
   produced by one of those is assumed to be an unpicklable function object;
2. for every class, find ``self.<attr> = ...`` assignments whose right-hand
   side is a lambda, a nested function name, a factory call, or a container
   literal/comprehension holding one — and require the class (or one of its
   in-batch base classes) to define ``__getstate__``.  Classes inheriting
   from an in-batch base that defines it are exempt, which is how
   ``VectorizedNet`` rides on ``CompiledNet.__getstate__``.

Findings use rule ``PKL001`` (see :mod:`repro.qa.rules`).  Like the
determinism pass this is a local, shape-based tripwire — it will not catch a
factory imported from a third module, and does not try to prove the
``__getstate__`` actually drops the offending attribute (the round-trip
pickling tests cover that).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .determinism import iter_python_files
from .rules import Finding, apply_pragmas, parse_pragmas

__all__ = ["check_source", "check_paths"]


def _returns_nested_function(node: ast.AST) -> bool:
    """Does this function define a nested def/lambda and return it?"""
    nested: Set[str] = set()
    for child in ast.walk(node):
        if child is node:
            continue
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested.add(child.name)
    if not nested:
        # It may still return a lambda directly.
        nested = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Return) and child.value is not None:
            value = child.value
            if isinstance(value, ast.Lambda):
                return True
            if isinstance(value, ast.Name) and value.id in nested:
                return True
    return False


def _calls_exec_or_compile(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and isinstance(child.func, ast.Name):
            if child.func.id in {"exec", "compile", "eval"}:
                return True
    return False


class _ClassInfo:
    def __init__(self, name: str, path: str, node: ast.ClassDef) -> None:
        self.name = name
        self.path = path
        self.node = node
        self.bases = [base.id for base in node.bases if isinstance(base, ast.Name)]
        self.has_getstate = any(
            isinstance(item, ast.FunctionDef) and item.name == "__getstate__"
            for item in node.body
        )
        #: (lineno, attr, why) for each hazardous self-assignment.
        self.hazards: List[Tuple[int, str, str]] = []


def _collect_factories(tree: ast.AST) -> Set[str]:
    """Names of functions/methods in this module that produce function objects."""
    factories: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _calls_exec_or_compile(node) or _returns_nested_function(node):
                factories.add(node.name)
    return factories


def _hazard_reason(
    value: ast.AST, factories: Set[str], local_defs: Set[str]
) -> Optional[str]:
    """Why ``self.x = <value>`` stores an unpicklable function, or ``None``."""
    if isinstance(value, ast.Lambda):
        return "a lambda"
    if isinstance(value, ast.Name) and value.id in local_defs:
        return f"the nested function {value.id!r}"
    if isinstance(value, ast.Call):
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in {"self", "cls"}:
                name = func.attr
        if name is not None and name in factories:
            return f"the result of generator factory {name}()"
    # Containers of hazards: ``{k: self._make(...)}`` / ``[lambda: ...]``.
    if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        for element in value.elts:
            reason = _hazard_reason(element, factories, local_defs)
            if reason is not None:
                return reason
    if isinstance(value, ast.Dict):
        for element in value.values:
            if element is None:
                continue
            reason = _hazard_reason(element, factories, local_defs)
            if reason is not None:
                return reason
    if isinstance(value, (ast.DictComp,)):
        return _hazard_reason(value.value, factories, local_defs)
    if isinstance(value, (ast.ListComp, ast.SetComp)):
        return _hazard_reason(value.elt, factories, local_defs)
    return None


def _scan_class(info: _ClassInfo, factories: Set[str]) -> None:
    for method in info.node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_defs = {
            child.name
            for child in ast.walk(method)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not method
        }
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    reason = _hazard_reason(node.value, factories, local_defs)
                    if reason is not None:
                        info.hazards.append((node.lineno, target.attr, reason))
            # ``self._steppers[key] = stepper`` — subscript store into a
            # function-holding cache attribute.
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id == "self"
                ):
                    reason = _hazard_reason(node.value, factories, local_defs)
                    if reason is not None:
                        info.hazards.append(
                            (node.lineno, target.value.attr, reason)
                        )


def check_source(source: str, path: str) -> List[Finding]:
    """Single-file scan (no cross-file base resolution); pragmas applied."""
    return _check_batch([(source, path)])


def _check_batch(modules: Sequence[Tuple[str, str]]) -> List[Finding]:
    classes: Dict[str, _ClassInfo] = {}
    per_file: Dict[str, List[_ClassInfo]] = {}
    pragma_maps: Dict[str, Dict[int, frozenset]] = {}
    source_lines: Dict[str, List[str]] = {}
    parse_errors: List[Finding] = []

    for source, path in modules:
        pragma_maps[path] = parse_pragmas(source)
        source_lines[path] = source.splitlines()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            parse_errors.append(
                Finding(
                    rule="PKL001",
                    path=path,
                    line=error.lineno or 1,
                    message=f"file does not parse: {error.msg}",
                )
            )
            continue
        factories = _collect_factories(tree)
        infos = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                info = _ClassInfo(node.name, path, node)
                _scan_class(info, factories)
                infos.append(info)
                # Last definition wins on name clashes; fine for a tripwire.
                classes[node.name] = info
        per_file[path] = infos

    def _inherits_getstate(info: _ClassInfo, seen: Set[str]) -> bool:
        if info.has_getstate:
            return True
        for base in info.bases:
            if base in seen:
                continue
            seen.add(base)
            base_info = classes.get(base)
            if base_info is not None and _inherits_getstate(base_info, seen):
                return True
        return False

    findings: List[Finding] = list(parse_errors)
    for path, infos in per_file.items():
        file_findings: List[Finding] = []
        for info in infos:
            if not info.hazards or _inherits_getstate(info, {info.name}):
                continue
            lines = source_lines[path]
            for lineno, attr, reason in info.hazards:
                text = lines[lineno - 1].strip() if 1 <= lineno <= len(lines) else ""
                file_findings.append(
                    Finding(
                        rule="PKL001",
                        path=path,
                        line=lineno,
                        message=(
                            f"{info.name}.{attr} stores {reason} but "
                            f"{info.name} defines no __getstate__ to drop it "
                            "before pickling to batch workers"
                        ),
                        source=text,
                    )
                )
        findings.extend(apply_pragmas(file_findings, pragma_maps[path]))
    return sorted(findings, key=lambda f: (f.path, f.line))


def check_paths(root: Path, relative_to: Optional[Path] = None) -> List[Finding]:
    """Scan a file or tree with cross-file base-class resolution."""
    modules: List[Tuple[str, str]] = []
    for file_path in iter_python_files(root):
        shown = file_path
        if relative_to is not None:
            try:
                shown = file_path.relative_to(relative_to)
            except ValueError:
                shown = file_path
        modules.append((file_path.read_text(encoding="utf-8"), shown.as_posix()))
    return _check_batch(modules)
