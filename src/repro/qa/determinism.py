"""Determinism linter: an ``ast`` walker over the library sources.

The cross-engine contract (reference / compiled / numpy produce bit-identical
trajectories) survives only if nothing in the hot paths depends on
*unspecified* ordering or out-of-band inputs.  This pass flags the hazard
classes that have historically broken that contract:

``DET101`` — **module-level random calls** (``random.random()``,
    ``random.shuffle(...)``, ...).  The module-level functions share hidden
    global state; all randomness must flow through an explicitly seeded
    ``random.Random`` (or ``numpy`` ``Generator``) threaded by the caller.

``DET102`` — **wall-clock / entropy reads** (``time.time``/``time_ns``,
    ``datetime.now``/``utcnow``/``today``, ``os.urandom``, ``uuid.uuid1``/
    ``uuid4``) anywhere in library code.  ``time.perf_counter`` /
    ``monotonic`` are exempt: they are legitimate for *measuring* a run and
    cannot leak into results that are pure functions of (inputs, seed).

``DET103`` — **environment reads** (``os.environ``, ``os.getenv``,
    ``os.environb``) outside the sanctioned config module
    (:mod:`repro.config`).  Scattered env reads are invisible simulation
    inputs; the funnel keeps them auditable (see that module's docstring).

``DET201`` — **set iteration feeding an ordering-sensitive sink**: a ``for``
    loop over a bare ``set``/``frozenset`` literal/call/comprehension (or a
    local the function assigned one to, or ``dict.keys()`` of no particular
    contract) whose body appends/extends/inserts into a sequence, assigns
    through a subscript, or yields — i.e. materializes the unordered
    iteration order into an ordered structure.  Loops that only aggregate
    order-insensitively (membership tests, ``+=`` into counters, building
    another set/dict) are not flagged.

``DET202`` — **un-keyed ``sorted``/``min``/``max`` over a set expression**.
    ``sorted(some_set)`` is only deterministic if the elements are totally
    ordered under ``<``; for mixed or rich-comparison types the result (or an
    exception) depends on hash iteration order.  Passing ``key=`` (or
    pragma-ing a site whose elements are provably totally ordered, e.g. dense
    ``int`` indices) settles it.

The walker is intentionally *local*: it tracks set-ness only through
straight-line assignments within one function body (``s = set(...); for x in
s: ...``), never across calls or attributes.  That misses aliases — fine: the
linter is a tripwire for the common hazard shapes, and the codegen auditor +
golden-trajectory tests backstop the rest.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Union

from .rules import Finding, apply_pragmas, parse_pragmas

__all__ = ["lint_source", "lint_path", "iter_python_files"]

#: Module whose env reads are sanctioned (DET103).  Compared by path suffix so
#: the rule holds regardless of the scan root.
SANCTIONED_ENV_MODULES = ("repro/config.py",)

#: time/datetime attributes that read the wall clock (DET102).
_WALLCLOCK_TIME_ATTRS = {"time", "time_ns", "localtime", "gmtime", "ctime"}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}
_ENTROPY_UUID_ATTRS = {"uuid1", "uuid4"}

#: random-module functions whose call is DET101.  Everything callable on the
#: module is hazardous; the set exists only to skip non-call attributes like
#: ``random.Random`` (the fix, not the bug).
_RANDOM_MODULE_SAFE_ATTRS = {"Random", "SystemRandom"}


def _line_of(source_lines: Sequence[str], lineno: int) -> str:
    if 1 <= lineno <= len(source_lines):
        return source_lines[lineno - 1]
    return ""


def _is_name(node: ast.AST, name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


def _call_target(node: ast.Call) -> Optional[ast.Attribute]:
    return node.func if isinstance(node.func, ast.Attribute) else None


def _is_set_expr(node: ast.AST, set_locals: Set[str]) -> bool:
    """Syntactically set-typed: literal, comprehension, ``set()``/``frozenset()``
    call, binary op over sets (``a | b``, ``a - b``), ``dict.keys()``, or a
    local previously assigned one of those."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if isinstance(node, ast.Call):
        if _is_name(node.func, "set") or _is_name(node.func, "frozenset"):
            return True
        target = _call_target(node)
        if target is not None and target.attr in {
            "keys",
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        }:
            # ``.keys()`` has no ordering contract when the receiver's type is
            # unknown here; set-algebra method results are plain sets.
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left, set_locals) or _is_set_expr(node.right, set_locals)
    return False


def _has_key_kwarg(node: ast.Call) -> bool:
    return any(keyword.arg == "key" for keyword in node.keywords)


class _OrderSensitiveSinkVisitor(ast.NodeVisitor):
    """Detect whether a loop body materializes iteration order."""

    _SINK_METHODS = {"append", "extend", "insert", "appendleft", "write", "writelines"}

    def __init__(self, loop_var_names: Set[str]) -> None:
        self.loop_vars = loop_var_names
        self.sensitive = False

    def visit_Call(self, node: ast.Call) -> None:
        target = _call_target(node)
        if target is not None and target.attr in self._SINK_METHODS:
            self.sensitive = True
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Store):
            self.sensitive = True
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        self.sensitive = True
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.sensitive = True
        self.generic_visit(node)

    # Nested defs open a fresh scope; their sinks are not this loop's sinks.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass


def _loop_target_names(target: ast.AST) -> Set[str]:
    names = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: Sequence[str]) -> None:
        self.path = path
        self.source_lines = source_lines
        self.findings: List[Finding] = []
        #: Stack of per-function sets of locals known to hold sets.
        self._set_locals: List[Set[str]] = [set()]

    # -- helpers -------------------------------------------------------
    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=lineno,
                message=message,
                source=_line_of(self.source_lines, lineno).strip(),
            )
        )

    @property
    def _locals(self) -> Set[str]:
        return self._set_locals[-1]

    # -- scope management ----------------------------------------------
    def _visit_function(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> None:
        self._set_locals.append(set())
        self.generic_visit(node)
        self._set_locals.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if _is_set_expr(node.value, self._locals):
                self._locals.add(name)
            else:
                self._locals.discard(name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if _is_set_expr(node.value, self._locals):
                self._locals.add(node.target.id)
            else:
                self._locals.discard(node.target.id)
        self.generic_visit(node)

    # -- DET101 / DET102 / DET103 --------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        target = _call_target(node)
        if target is not None and isinstance(target.value, ast.Name):
            module, attr = target.value.id, target.attr
            if module == "random" and attr not in _RANDOM_MODULE_SAFE_ATTRS:
                self._emit(
                    "DET101",
                    node,
                    f"call to random.{attr}() uses the shared module-level RNG; "
                    "thread a seeded random.Random instance instead",
                )
            elif module == "time" and attr in _WALLCLOCK_TIME_ATTRS:
                self._emit("DET102", node, f"time.{attr}() reads the wall clock")
            elif module == "datetime" and attr in _WALLCLOCK_DATETIME_ATTRS:
                self._emit("DET102", node, f"datetime.{attr}() reads the wall clock")
            elif module == "os" and attr == "urandom":
                self._emit("DET102", node, "os.urandom() reads system entropy")
            elif module == "uuid" and attr in _ENTROPY_UUID_ATTRS:
                self._emit("DET102", node, f"uuid.{attr}() reads system entropy")
            elif module == "os" and attr in {"getenv", "getenvb"}:
                self._maybe_env_finding(node, f"os.{attr}()")
        # ``datetime.datetime.now()`` — attribute chain two deep.
        if (
            target is not None
            and isinstance(target.value, ast.Attribute)
            and isinstance(target.value.value, ast.Name)
            and target.value.value.id == "datetime"
            and target.value.attr in {"datetime", "date"}
            and target.attr in _WALLCLOCK_DATETIME_ATTRS
        ):
            self._emit(
                "DET102",
                node,
                f"datetime.{target.value.attr}.{target.attr}() reads the wall clock",
            )
        # DET202: un-keyed sorted/min/max over a set expression.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in {"sorted", "min", "max"}
            and node.args
            and _is_set_expr(node.args[0], self._locals)
            and not _has_key_kwarg(node)
        ):
            self._emit(
                "DET202",
                node,
                f"un-keyed {node.func.id}() over a set expression: pass key= "
                "or justify total ordering with a pragma",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "os"
            and node.attr in {"environ", "environb"}
        ):
            self._maybe_env_finding(node, f"os.{node.attr}")
        self.generic_visit(node)

    def _maybe_env_finding(self, node: ast.AST, what: str) -> None:
        posix = Path(self.path).as_posix()
        if any(posix.endswith(suffix) for suffix in SANCTIONED_ENV_MODULES):
            return
        self._emit(
            "DET103",
            node,
            f"{what} read outside the sanctioned config module; route it "
            "through repro.config",
        )

    # -- DET201 --------------------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self._locals):
            sink_visitor = _OrderSensitiveSinkVisitor(_loop_target_names(node.target))
            for statement in node.body:
                sink_visitor.visit(statement)
            if sink_visitor.sensitive:
                self._emit(
                    "DET201",
                    node,
                    "iterating an unordered set into an ordering-sensitive "
                    "sink; sort the set (with a key) before iterating",
                )
        self.generic_visit(node)


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one module's source text; returns findings with pragmas applied."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                rule="DET102",
                path=path,
                line=error.lineno or 1,
                message=f"file does not parse: {error.msg}",
            )
        ]
    visitor = _DeterminismVisitor(path, source.splitlines())
    visitor.visit(tree)
    findings = sorted(visitor.findings, key=lambda f: (f.line, f.rule))
    return apply_pragmas(findings, parse_pragmas(source))


def iter_python_files(root: Path) -> Iterator[Path]:
    """Yield the ``.py`` files under ``root`` (or ``root`` itself), sorted."""
    if root.is_file():
        yield root
        return
    yield from sorted(root.rglob("*.py"), key=lambda p: p.as_posix())


def lint_path(root: Path, relative_to: Optional[Path] = None) -> List[Finding]:
    """Lint a file or directory tree; paths in findings are relative when
    ``relative_to`` is given (the baseline wants repo-relative paths)."""
    findings: List[Finding] = []
    for file_path in iter_python_files(root):
        shown = file_path
        if relative_to is not None:
            try:
                shown = file_path.relative_to(relative_to)
            except ValueError:
                shown = file_path
        findings.extend(
            lint_source(file_path.read_text(encoding="utf-8"), shown.as_posix())
        )
    return findings
