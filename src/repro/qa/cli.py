"""Command-line interface of the QA toolchain (``python -m repro.qa``).

Subcommands, mirroring the ``repro.analytics`` exit-code convention
(0 = clean, 1 = findings, 2 = usage error):

``lint <paths...>``
    Run the determinism linter (:mod:`repro.qa.determinism`) and the
    pickle-safety checker (:mod:`repro.qa.picklesafety`) over source trees.
    ``--baseline`` names a committed baseline file (default
    ``qa_baseline.json`` next to the first path's repo root if present);
    ``--write-baseline`` records the current unsuppressed findings instead of
    failing on them.  ``--fail-on {error,warning,info}`` sets the gating
    threshold (default ``warning``).

``audit-codegen``
    Generate and structurally audit the compiled steppers (fast + recording,
    both scheduler kinds) of every registered sweep protocol at several
    populations (:mod:`repro.qa.codegen_audit`).

``check-pickle <paths...>``
    Run only the pickle-safety pass (the lint subcommand includes it; this
    exists so CI can gate the two hazard families separately).

``typecheck``
    Run ``mypy`` on the typed packages (``repro.core``, ``repro.simulation``)
    using the repo's ``pyproject.toml`` configuration.  ``mypy`` is an
    optional dependency (``pip install repro[qa]``); without it this exits 2
    with an instruction rather than a traceback.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import codegen_audit, determinism, picklesafety
from .rules import (
    RULES,
    SEVERITIES,
    Finding,
    apply_baseline,
    load_baseline,
    severity_at_least,
    write_baseline,
)

__all__ = ["main"]

_DEFAULT_BASELINE = "qa_baseline.json"


def _print_findings(findings: Sequence[Finding], show_suppressed: bool) -> None:
    for finding in findings:
        if finding.suppressed is not None and not show_suppressed:
            continue
        print(finding.render())


def _gate(findings: Sequence[Finding], threshold: str) -> int:
    live = [
        finding
        for finding in findings
        if finding.suppressed is None and severity_at_least(finding.severity, threshold)
    ]
    counts = {severity: 0 for severity in SEVERITIES}
    for finding in findings:
        if finding.suppressed is None:
            counts[finding.severity] += 1
    suppressed = sum(1 for finding in findings if finding.suppressed is not None)
    summary = ", ".join(f"{count} {severity}(s)" for severity, count in counts.items() if count)
    print(
        f"qa: {summary or 'no findings'}"
        + (f", {suppressed} suppressed" if suppressed else "")
    )
    return 1 if live else 0


def _collect_lint(paths: Sequence[str], pickle_too: bool) -> List[Finding]:
    findings: List[Finding] = []
    cwd = Path.cwd()
    for raw in paths:
        root = Path(raw)
        if not root.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        relative_to = cwd if not root.is_absolute() else None
        target = root if root.is_absolute() else (cwd / root)
        findings.extend(determinism.lint_path(target, relative_to=relative_to))
        if pickle_too:
            findings.extend(picklesafety.check_paths(target, relative_to=relative_to))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def _command_lint(arguments: argparse.Namespace) -> int:
    try:
        findings = _collect_lint(arguments.paths, pickle_too=not arguments.no_pickle)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    baseline_path = Path(arguments.baseline) if arguments.baseline else Path(_DEFAULT_BASELINE)
    if arguments.write_baseline:
        write_baseline(baseline_path, findings)
        live = sum(1 for finding in findings if finding.suppressed is None)
        print(f"qa: wrote baseline with {live} finding(s) to {baseline_path}")
        return 0
    if baseline_path.exists():
        try:
            findings = apply_baseline(findings, load_baseline(baseline_path))
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    elif arguments.baseline:
        print(f"error: baseline {baseline_path} does not exist", file=sys.stderr)
        return 2

    _print_findings(findings, show_suppressed=arguments.show_suppressed)
    return _gate(findings, arguments.fail_on)


def _command_check_pickle(arguments: argparse.Namespace) -> int:
    cwd = Path.cwd()
    findings: List[Finding] = []
    for raw in arguments.paths:
        root = Path(raw)
        if not root.exists():
            print(f"error: no such file or directory: {raw}", file=sys.stderr)
            return 2
        relative_to = cwd if not root.is_absolute() else None
        target = root if root.is_absolute() else (cwd / root)
        findings.extend(picklesafety.check_paths(target, relative_to=relative_to))
    _print_findings(findings, show_suppressed=arguments.show_suppressed)
    return _gate(findings, "error")


def _command_audit_codegen(arguments: argparse.Namespace) -> int:
    # Imported lazily: the lint path must not require the simulation stack.
    from ..simulation.vectorized import numpy_available
    from ..sweep.spec import available_sweep_protocols, build_protocol_and_inputs

    populations = arguments.population or list(codegen_audit.DEFAULT_AUDIT_POPULATIONS)
    names = arguments.protocol or list(available_sweep_protocols())
    with_ensemble = numpy_available()
    if not with_ensemble:
        print("qa: NumPy unavailable, skipping the ensemble-table audit")
    failures = 0
    audited = 0
    for name in names:
        for population in populations:
            try:
                protocol, _inputs = build_protocol_and_inputs(name, population)
            except ValueError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            net = protocol.petri_net
            if net is None:
                print(f"{name}@{population}: skipped (no Petri net)")
                continue
            compiled = net.compiled(extra_states=protocol.states)
            classes = compiled.output_classes(protocol.output_table)
            problems = codegen_audit.audit_compiled_net(compiled, classes)
            if with_ensemble:
                vectorized = net.vectorized(extra_states=protocol.states)
                problems += [
                    f"ensemble: {problem}"
                    for problem in codegen_audit.audit_ensemble_net(
                        vectorized, classes
                    )
                ]
            audited += 1
            if problems:
                failures += 1
                print(f"{name}@{population}: FAIL")
                for problem in problems:
                    print(f"  {problem}")
            else:
                print(
                    f"{name}@{population}: ok "
                    f"(|P|={compiled.num_states}, |T|={compiled.num_transitions}, "
                    "kinds=uniform+transition, fast+recording"
                    + (", ensemble tables)" if with_ensemble else ")")
                )
    print(f"qa: audited {audited} protocol/population pairs, {failures} failing")
    return 1 if failures else 0


def _command_typecheck(arguments: argparse.Namespace) -> int:
    if importlib.util.find_spec("mypy") is None:
        print(
            "error: mypy is not installed; install the qa extra "
            "(pip install 'repro[qa]') to run the typed-core gate locally",
            file=sys.stderr,
        )
        return 2
    from mypy import api as mypy_api  # type: ignore[import-not-found]

    packages = arguments.package or ["repro.core", "repro.simulation"]
    argv = []
    for package in packages:
        argv.extend(["-p", package])
    stdout, stderr, status = mypy_api.run(argv)
    if stdout:
        print(stdout, end="")
    if stderr:
        print(stderr, end="", file=sys.stderr)
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa",
        description="Static QA toolchain: determinism lint, codegen audit, "
        "pickle safety, typed-core gate.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lint = subparsers.add_parser("lint", help="run the determinism + pickle-safety lint")
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument("--baseline", help=f"baseline file (default {_DEFAULT_BASELINE})")
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the baseline instead of failing",
    )
    lint.add_argument(
        "--fail-on",
        choices=SEVERITIES,
        default="warning",
        help="minimum severity that fails the lint (default: warning)",
    )
    lint.add_argument(
        "--no-pickle",
        action="store_true",
        help="skip the pickle-safety pass (determinism rules only)",
    )
    lint.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print pragma- and baseline-suppressed findings",
    )

    audit = subparsers.add_parser(
        "audit-codegen", help="structurally audit the generated steppers"
    )
    audit.add_argument(
        "--protocol",
        action="append",
        help="audit only this registered protocol (repeatable; default: all)",
    )
    audit.add_argument(
        "--population",
        action="append",
        type=int,
        help="audit at this population (repeatable; default: "
        f"{', '.join(map(str, codegen_audit.DEFAULT_AUDIT_POPULATIONS))})",
    )

    pickle_cmd = subparsers.add_parser(
        "check-pickle", help="run only the pickle-safety pass"
    )
    pickle_cmd.add_argument("paths", nargs="+", help="files or directories to scan")
    pickle_cmd.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print pragma-suppressed findings",
    )

    typecheck = subparsers.add_parser(
        "typecheck", help="run mypy on the typed packages (requires the qa extra)"
    )
    typecheck.add_argument(
        "--package",
        action="append",
        help="typecheck only this package (repeatable; default: "
        "repro.core, repro.simulation)",
    )

    rules_cmd = subparsers.add_parser("rules", help="print the rule catalogue")
    del rules_cmd

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    try:
        arguments = parser.parse_args(argv)
    except SystemExit as error:
        # argparse exits 2 on usage errors already; normalize other codes.
        return int(error.code or 0)
    if arguments.command == "lint":
        return _command_lint(arguments)
    if arguments.command == "audit-codegen":
        return _command_audit_codegen(arguments)
    if arguments.command == "check-pickle":
        return _command_check_pickle(arguments)
    if arguments.command == "typecheck":
        return _command_typecheck(arguments)
    if arguments.command == "rules":
        for rule in RULES.values():
            print(f"{rule.id}  {rule.severity:<8} {rule.summary}")
        return 0
    parser.error(f"unknown command {arguments.command!r}")
    return 2
