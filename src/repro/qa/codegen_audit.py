"""Codegen auditor: structural verification of the generated steppers.

:class:`~repro.simulation.compiled.CompiledNet` ``exec``-compiles a
specialized Python simulation loop per ``(scheduler kind, output classes,
recording)`` — straight-line code that nothing human reviews per net.  This
pass parses those generated sources back into an ``ast`` and verifies the
properties the cross-engine determinism contract rests on:

1. **closed namespace** — the function reads only its parameters, its own
   locals, and the single sanctioned global ``comb`` (pure, deterministic);
   any other free name means the generator leaked a dependency;
2. **pure-local step loop** — inside the per-step ``while`` body there is no
   attribute access (the one exception: ``enabled.append``, the
   transition-scheduler's candidate list) and no global read other than
   ``comb``: method lookups like ``rng.randrange`` must be hoisted out of the
   loop, both for speed and so the loop's behavior is fixed at generation
   time;
3. **complete dispatch** — the if/elif/else chain covers every transition
   index exactly once, in index order, and the ``c<i> += d`` statements of
   each arm match the net's ``delta_lists`` entry for that transition (and
   the ``one``/``zero``/``undef`` counter updates match ``consensus_deltas``);
   for the transition discipline the ``enabled`` list is additionally built
   by appending ``0..n-1`` in ascending order (the order the reference
   scheduler uses — a permutation would consume the RNG differently);
4. **counts round-trip** — the loop loads ``c<i>`` for exactly the generator's
   ``touched`` indices and writes back exactly its ``written`` indices;
5. **recording = fast + ring writes** — the recording variant's source,
   minus the ring-buffer statements and its two extra parameters, is
   byte-identical to the fast variant: recording must never change *what*
   is simulated.

The lock-step ensemble engine (:mod:`repro.simulation.ensemble`) has no
generated source to parse — it is a fixed array program steered by the
flattened plan tables of :class:`~repro.simulation.ensemble.EnsembleTables`.
Its audit analogue, :func:`audit_ensemble_net`, verifies those tables
against the same net plans the dispatch checks use: the CSR displacement /
affected / pre-entry arrays must round-trip ``delta_lists`` / ``affected`` /
``pre_lists`` exactly, the blocked weight layout must satisfy its selection
invariants (power-of-two block length with ``2·L² ≥ |T|``, and always one
all-zero dummy slot beyond the real transitions for the fast path's pad
writes), the padded fast-path tables must agree with the CSR ones, and
:class:`~repro.simulation.ensemble.VectorizedEnsemble` must satisfy the
``Stepper`` protocol with a consensus-delta table matching the compiled
engines'.

The entry points are :func:`audit_stepper_source` (one source string — used
by tests to prove the auditor rejects corrupted code),
:func:`audit_compiled_net` (every variant of one net) and
:func:`audit_ensemble_net` (the ensemble plan tables of one vectorized
net); the CLI subcommand ``python -m repro.qa audit-codegen`` runs the
latter two over every registered sweep protocol at several populations
(the ensemble audit is skipped when NumPy is unavailable).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..simulation.compiled import OUT_IGNORED, CompiledNet, _KINDS

__all__ = [
    "audit_stepper_source",
    "audit_compiled_net",
    "audit_ensemble_net",
    "DEFAULT_AUDIT_POPULATIONS",
]

#: Populations the CLI audits every registered protocol at.  Two sizes on
#: purpose: protocol builders may change net structure with population (e.g.
#: threshold parameters), so a single size under-covers the generator.
DEFAULT_AUDIT_POPULATIONS = (25, 100)

#: The only global name generated code may read (pure and deterministic).
_ALLOWED_GLOBALS = frozenset({"comb"})

#: The only attribute access allowed inside the step loop.
_ALLOWED_LOOP_ATTRS = frozenset({("enabled", "append")})

_BASE_PARAMS = ("counts", "rng", "max_steps", "stability_window", "one", "zero", "undef")
_RECORD_PARAMS = _BASE_PARAMS + ("ring", "capacity")


def _assigned_names(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.For)):
            target = node.target
            for leaf in ast.walk(target):
                if isinstance(leaf, ast.Name):
                    names.add(leaf.id)
        elif isinstance(node, ast.NamedExpr):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _delta_of_arm(statements: Sequence[ast.stmt]) -> Tuple[Dict[int, int], Dict[str, int]]:
    """The ``c<i>`` displacements and counter updates an arm performs."""
    counts: Dict[int, int] = {}
    counters: Dict[str, int] = {}
    for statement in statements:
        if not isinstance(statement, ast.AugAssign) or not isinstance(
            statement.target, ast.Name
        ):
            continue
        if not isinstance(statement.value, ast.Constant) or not isinstance(
            statement.value.value, int
        ):
            continue
        magnitude = statement.value.value
        if isinstance(statement.op, ast.Add):
            diff = magnitude
        elif isinstance(statement.op, ast.Sub):
            diff = -magnitude
        else:
            continue
        name = statement.target.id
        if name.startswith("c") and name[1:].isdigit():
            index = int(name[1:])
            counts[index] = counts.get(index, 0) + diff
        elif name in ("one", "zero", "undef"):
            counters[name] = counters.get(name, 0) + diff
    return counts, counters


def _dispatch_arms(chain: ast.If) -> List[List[ast.stmt]]:
    """Flatten an if/elif/else chain into its arm bodies, in order."""
    arms: List[List[ast.stmt]] = []
    node: ast.stmt = chain
    while True:
        assert isinstance(node, ast.If)
        arms.append(node.body)
        orelse = node.orelse
        if len(orelse) == 1 and isinstance(orelse[0], ast.If):
            node = orelse[0]
            continue
        if orelse:
            arms.append(orelse)
        return arms


def _find_step_loop(func: ast.FunctionDef) -> Optional[ast.While]:
    for statement in func.body:
        if isinstance(statement, ast.While):
            return statement
    return None


def _check_arm_deltas(
    net: CompiledNet,
    consensus_deltas: Sequence[Tuple[int, int, int]],
    arms: Sequence[Sequence[ast.stmt]],
    problems: List[str],
) -> None:
    if len(arms) != net.num_transitions:
        problems.append(
            f"dispatch covers {len(arms)} arms for {net.num_transitions} transitions"
        )
        return
    counter_names = ("one", "zero", "undef")
    for t, arm in enumerate(arms):
        got_counts, got_counters = _delta_of_arm(arm)
        want_counts = {index: diff for index, diff in net.delta_lists[t]}
        if got_counts != want_counts:
            problems.append(
                f"transition {t}: arm displaces {got_counts}, net says {want_counts}"
            )
        want_counters = {
            name: diff
            for name, diff in zip(counter_names, consensus_deltas[t])
            if diff
        }
        if got_counters != want_counters:
            problems.append(
                f"transition {t}: arm moves counters {got_counters}, "
                f"consensus deltas say {want_counters}"
            )


def _check_enabled_building(loop: ast.While, n: int, problems: List[str]) -> None:
    """Transition kind: ``enabled`` must receive 0..n-1 in ascending order."""
    appended: List[int] = []
    for statement in loop.body:
        candidates: Sequence[ast.stmt]
        if isinstance(statement, ast.If) and not statement.orelse:
            candidates = statement.body
        else:
            candidates = [statement]
        for inner in candidates:
            if (
                isinstance(inner, ast.Expr)
                and isinstance(inner.value, ast.Call)
                and isinstance(inner.value.func, ast.Attribute)
                and isinstance(inner.value.func.value, ast.Name)
                and inner.value.func.value.id == "enabled"
                and inner.value.func.attr == "append"
                and len(inner.value.args) == 1
                and isinstance(inner.value.args[0], ast.Constant)
            ):
                appended.append(inner.value.args[0].value)
    if appended != list(range(n)):
        problems.append(
            f"enabled list is built as {appended}, expected 0..{n - 1} in order "
            "(a permutation would consume the RNG differently than the "
            "reference scheduler)"
        )


def audit_stepper_source(
    source: str,
    net: CompiledNet,
    kind: str,
    classes: Sequence[int],
    record: bool = False,
) -> List[str]:
    """Structurally audit one generated stepper source against its net.

    Returns a list of problem descriptions; an empty list means the source
    passes every check.  Exposed separately from :func:`audit_compiled_net`
    so tests can feed deliberately corrupted sources and prove the auditor
    rejects them.
    """
    problems: List[str] = []
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [f"generated source does not parse: {error.msg} (line {error.lineno})"]

    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        return ["generated source is not a single function definition"]
    func = tree.body[0]
    if func.name != "__compiled_stepper":
        problems.append(f"unexpected function name {func.name!r}")

    expected_params = _RECORD_PARAMS if record else _BASE_PARAMS
    params = tuple(argument.arg for argument in func.args.args)
    if params != expected_params:
        problems.append(f"parameters are {params}, expected {expected_params}")

    # 1. Closed namespace: every loaded name is a parameter, a local, or comb.
    locals_and_params = _assigned_names(func) | set(params)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in locals_and_params and node.id not in _ALLOWED_GLOBALS:
                problems.append(
                    f"free name {node.id!r} (line {node.lineno}) is neither a "
                    "parameter, a local, nor a sanctioned global"
                )
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            problems.append(f"global/nonlocal declaration (line {node.lineno})")
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            problems.append(f"import inside generated code (line {node.lineno})")

    loop = _find_step_loop(func)
    if loop is None:
        problems.append("no per-step while loop found")
        return problems

    # 2. Pure-local loop body: no attribute access (except enabled.append),
    #    no global reads beyond comb.
    for node in ast.walk(loop):
        if isinstance(node, ast.Attribute):
            owner = node.value
            key = (owner.id if isinstance(owner, ast.Name) else "?", node.attr)
            if key not in _ALLOWED_LOOP_ATTRS:
                problems.append(
                    f"attribute access {key[0]}.{key[1]} inside the step loop "
                    f"(line {node.lineno}); method lookups must be hoisted out"
                )
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in locals_and_params and node.id not in _ALLOWED_GLOBALS:
                # Already reported by the namespace check; keep loop-local
                # context anyway for corrupted single-line injections.
                problems.append(
                    f"global read {node.id!r} inside the step loop (line {node.lineno})"
                )

    # 3. Complete dispatch with per-arm deltas matching the net.
    consensus_deltas = net.consensus_deltas(tuple(classes))
    n = net.num_transitions
    if kind == "uniform":
        chains = [s for s in loop.body if isinstance(s, ast.If) and _looks_like_dispatch(s)]
        if n <= 1:
            # Single transition: fire statements are inlined, no chain.
            if n == 1:
                _check_arm_deltas(net, consensus_deltas, [loop.body], problems)
        else:
            if len(chains) != 1:
                problems.append(
                    f"expected exactly one dispatch chain in the loop, found {len(chains)}"
                )
            else:
                _check_arm_deltas(net, consensus_deltas, _dispatch_arms(chains[0]), problems)
    elif kind == "transition":
        _check_enabled_building(loop, n, problems)
        if n > 1:
            chains = [s for s in loop.body if isinstance(s, ast.If) and _looks_like_dispatch(s)]
            if len(chains) != 1:
                problems.append(
                    f"expected exactly one dispatch chain in the loop, found {len(chains)}"
                )
            else:
                _check_arm_deltas(net, consensus_deltas, _dispatch_arms(chains[0]), problems)
        elif n == 1:
            _check_arm_deltas(net, consensus_deltas, [loop.body], problems)
    else:
        problems.append(f"unknown scheduler kind {kind!r}")

    # 4. Counts round-trip: c<i> loads and counts[i] write-backs.
    loaded: Set[int] = set()
    written_back: Set[int] = set()
    for statement in func.body:
        if (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
            and statement.targets[0].id.startswith("c")
            and statement.targets[0].id[1:].isdigit()
            and isinstance(statement.value, ast.Subscript)
            and isinstance(statement.value.value, ast.Name)
            and statement.value.value.id == "counts"
            and isinstance(statement.value.slice, ast.Constant)
        ):
            loaded.add(statement.value.slice.value)
        if (
            isinstance(statement, ast.Assign)
            and len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Subscript)
            and isinstance(statement.targets[0].value, ast.Name)
            and statement.targets[0].value.id == "counts"
            and isinstance(statement.targets[0].slice, ast.Constant)
        ):
            written_back.add(statement.targets[0].slice.value)
    read = {index for pre in net.pre_lists for index, _ in pre}
    written = {index for delta in net.delta_lists for index, _ in delta}
    touched = read | written
    if loaded != touched:
        problems.append(
            "loop loads count indices "
            # qa: allow[DET202] -- dense int state indices, totally ordered
            f"{sorted(loaded)}, expected the touched set {sorted(touched)}"
        )
    if written_back != written:
        problems.append(
            "loop writes back count indices "
            # qa: allow[DET202] -- dense int state indices, totally ordered
            f"{sorted(written_back)}, expected the written set {sorted(written)}"
        )
    return problems


def _looks_like_dispatch(node: ast.If) -> bool:
    """An If chain whose test involves ``pick``/``cum`` (uniform) or ``t``."""
    for leaf in ast.walk(node.test):
        if isinstance(leaf, ast.Name) and leaf.id in {"pick", "cum", "t"}:
            return True
        if isinstance(leaf, ast.NamedExpr) and isinstance(leaf.target, ast.Name):
            if leaf.target.id == "cum":
                return True
    return False


#: Ring-buffer statements the recording variant is allowed to add.
_RING_LINES = {"rpos = 0", "rpos += 1", "if rpos == capacity:"}


def _strip_ring_statements(source: str) -> str:
    """The recording variant's source with every ring statement removed and
    the two extra parameters dropped — what must equal the fast variant."""
    lines = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped in _RING_LINES or stripped.startswith("ring[rpos] ="):
            continue
        lines.append(line.replace(", ring, capacity", ""))
    return "\n".join(lines)


def audit_compiled_net(
    net: CompiledNet,
    classes: Optional[Sequence[int]] = None,
    kinds: Sequence[str] = _KINDS,
) -> List[str]:
    """Audit every stepper variant (kind x {fast, recording}) of one net.

    Returns problem descriptions prefixed with the variant that raised them;
    an empty list means the net's generated code passes every check.  With
    ``classes=None`` all states are treated as consensus-ignored, which still
    exercises dispatch/delta/namespace checks; pass the protocol's real
    output classes for counter coverage.
    """
    if classes is None:
        classes = (OUT_IGNORED,) * net.num_states
    classes = tuple(classes)
    problems: List[str] = []
    for kind in kinds:
        sources = {}
        for record in (False, True):
            source = net.stepper_source(kind, classes, record=record)
            sources[record] = source
            variant = f"{kind}/{'recording' if record else 'fast'}"
            for problem in audit_stepper_source(source, net, kind, classes, record=record):
                problems.append(f"{variant}: {problem}")
        if _strip_ring_statements(sources[True]) != sources[False]:
            problems.append(
                f"{kind}: recording variant differs from the fast variant by "
                "more than ring-write statements"
            )
    return problems


def audit_ensemble_net(
    net: Any, classes: Optional[Sequence[int]] = None
) -> List[str]:
    """Structurally audit the lock-step ensemble plan of one vectorized net.

    ``net`` is a :class:`~repro.simulation.vectorized.VectorizedNet` (the
    ensemble stepper's substrate).  Requires NumPy; callers gate on
    ``numpy_available()``.  Returns problem descriptions like
    :func:`audit_compiled_net`; an empty list means the ensemble tables and
    the :class:`~repro.simulation.ensemble.VectorizedEnsemble` wrapper pass
    every check.
    """
    from ..simulation.compiled import Stepper
    from ..simulation.ensemble import VectorizedEnsemble

    if classes is None:
        classes = (OUT_IGNORED,) * net.num_states
    classes = tuple(classes)
    problems: List[str] = []
    tables = net.ensemble_tables()
    n = net.num_transitions

    # 1. Blocked selection layout: power-of-two block length balancing the
    #    two scan stages, and always a dummy all-zero slot past the real
    #    transitions (the fast path's pad target must exist).
    if tables.block != 1 << tables.block_shift:
        problems.append(
            f"block length {tables.block} is not 2**block_shift "
            f"(shift {tables.block_shift})"
        )
    if n and 2 * tables.block * tables.block < n:
        problems.append(
            f"block length {tables.block} violates 2*L*L >= |T| for |T|={n}"
        )
    if tables.padded != tables.num_blocks * tables.block:
        problems.append(
            f"padded width {tables.padded} != num_blocks*block "
            f"({tables.num_blocks}*{tables.block})"
        )
    if n and tables.padded <= n:
        problems.append(
            f"padded width {tables.padded} leaves no dummy slot beyond "
            f"|T|={n} (fast-path pad writes would hit a real weight)"
        )

    # 2. CSR round-trip: the flattened displacement / affected / pre-entry
    #    arrays must reconstruct the net's plan lists exactly.
    for t in range(n):
        start, length = int(tables.d_start[t]), int(tables.d_len[t])
        got_delta = list(
            zip(
                tables.d_idx[start : start + length].tolist(),
                tables.d_val[start : start + length].tolist(),
            )
        )
        if got_delta != list(net.delta_lists[t]):
            problems.append(
                f"transition {t}: CSR displacements {got_delta}, "
                f"net says {list(net.delta_lists[t])}"
            )
        start, length = int(tables.a_start[t]), int(tables.a_len[t])
        got_affected = tables.a_trans[start : start + length].tolist()
        if got_affected != list(net.affected[t]):
            problems.append(
                f"transition {t}: CSR affected list {got_affected}, "
                f"net says {list(net.affected[t])}"
            )
        start, length = int(tables.e_start[t]), int(tables.e_len[t])
        got_pre = list(
            zip(
                tables.e_state[start : start + length].tolist(),
                tables.e_mult[start : start + length].tolist(),
            )
        )
        want_pre = [(index, mult) for index, mult in net.pre_lists[t]]
        if got_pre != want_pre:
            problems.append(
                f"transition {t}: CSR pre entries {got_pre}, net says {want_pre}"
            )

    # 3. Padded fast-path tables must agree with the CSR plan, and every pad
    #    must follow the zero-contribution conventions (scratch state column,
    #    dummy weight slot) that make the unmasked scatter exact.
    if tables.fast_uniform:
        for t in range(n):
            delta = list(net.delta_lists[t])
            row_idx = tables.d_idx_pad[t].tolist()
            row_val = tables.d_val_pad[t].tolist()
            width = len(row_idx)
            want_idx = [index for index, _ in delta]
            want_idx += [net.num_states] * (width - len(delta))
            want_val = [diff for _, diff in delta]
            want_val += [0] * (width - len(delta))
            if row_idx != want_idx or row_val != want_val:
                problems.append(
                    f"transition {t}: padded displacement row "
                    f"({row_idx}, {row_val}) does not match the plan with "
                    "scratch-column/zero padding"
                )
            affected = list(net.affected[t])
            row_a = tables.a_pad[t].tolist()
            width = len(row_a)
            if row_a != affected + [n] * (width - len(affected)):
                problems.append(
                    f"transition {t}: padded affected row {row_a} does not "
                    f"match the plan with dummy-slot ({n}) padding"
                )
            row_states = tables.a_states_pad[t].tolist()
            want_states = [
                net.pre_lists[u][0][0] if u < n else net.num_states
                for u in row_a
            ] + [
                net.pre_lists[u][1][0] if u < n else net.num_states
                for u in row_a
            ]
            if row_states != want_states:
                problems.append(
                    f"transition {t}: padded reweigh-state row does not name "
                    "the affected transitions' pre states "
                    "(scratch column for pads)"
                )

    # 4. Stepper conformance and the consensus-delta table shared with the
    #    generated steppers.
    want_cons = net.consensus_deltas(classes)
    for kind in _KINDS:
        ensemble = VectorizedEnsemble(net, kind, classes)
        if not isinstance(ensemble, Stepper):
            problems.append(f"{kind}: VectorizedEnsemble is not a Stepper")
        if ensemble.source() is not None:
            problems.append(f"{kind}: ensemble stepper claims generated source")
        if ensemble.qa_meta.get("implementation") != "numpy-ensemble":
            problems.append(
                f"{kind}: qa_meta implementation is "
                f"{ensemble.qa_meta.get('implementation')!r}"
            )
        got_cons = [tuple(row) for row in ensemble._dcons.tolist()]
        if got_cons != [tuple(row) for row in want_cons]:
            problems.append(
                f"{kind}: ensemble consensus-delta table diverges from "
                "net.consensus_deltas"
            )
    return problems
