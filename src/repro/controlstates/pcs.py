"""Petri nets with control-states (paper, Section 7).

A *P-Petri net with control-states* is a triple ``(S, T, E)`` where ``S`` is a
non-empty finite set of control-states, ``T`` is a ``P``-Petri net, and
``E subseteq S x T x S`` is a set of edges.  A path is a word of edges whose
control-states chain up; a cycle is a path from a control-state to itself.

In the lower-bound proof the control-states are the configurations of the
``T|_Q``-component of a bottom configuration (Section 8), and the edges are
the transitions connecting them; this module keeps the structure generic.

The module also provides strong-connectivity checks (Tarjan) and the
construction used in Section 8 that builds ``(S, T, E)`` from a Petri net and
a finite component of mutually-reachable configurations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..core.configuration import Configuration, State
from ..core.petrinet import PetriNet
from ..core.transition import Transition

ControlState = Hashable

__all__ = ["Edge", "ControlStatePetriNet", "component_control_net"]


class Edge:
    """An edge ``(s, t, s')`` of a Petri net with control-states."""

    __slots__ = ("source", "transition", "target", "_hash")

    def __init__(self, source: ControlState, transition: Transition, target: ControlState):
        self.source = source
        self.transition = transition
        self.target = target
        self._hash: Optional[int] = None

    def displacement(self) -> Dict[State, int]:
        """``Delta(e) = Delta(t)``: the displacement of the underlying transition."""
        return self.transition.displacement()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Edge):
            return NotImplemented
        return (
            self.source == other.source
            and self.transition == other.transition
            and self.target == other.target
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.source, self.transition, self.target))
        return self._hash

    def __repr__(self) -> str:
        label = self.transition.name or f"{self.transition.pre.pretty()}->{self.transition.post.pretty()}"
        return f"Edge({self.source!r} --[{label}]--> {self.target!r})"


class ControlStatePetriNet:
    """A Petri net with control-states ``(S, T, E)``.

    Parameters
    ----------
    control_states:
        The non-empty finite set ``S``.
    net:
        The underlying Petri net ``T``.
    edges:
        The edges ``E subseteq S x T x S``; every edge's transition must
        belong to ``T`` and its endpoints to ``S``.
    """

    def __init__(
        self,
        control_states: Iterable[ControlState],
        net: PetriNet,
        edges: Iterable[Edge],
    ):
        self.control_states: FrozenSet[ControlState] = frozenset(control_states)
        if not self.control_states:
            raise ValueError("a Petri net with control-states needs at least one control-state")
        self.net = net
        transition_set = set(net.transitions)
        edge_list: List[Edge] = []
        seen: Set[Edge] = set()
        for edge in edges:
            if edge.source not in self.control_states or edge.target not in self.control_states:
                raise ValueError(f"edge endpoints not in S: {edge!r}")
            if edge.transition not in transition_set:
                raise ValueError(f"edge transition not in T: {edge!r}")
            if edge not in seen:
                seen.add(edge)
                edge_list.append(edge)
        self.edges: Tuple[Edge, ...] = tuple(edge_list)
        self._outgoing: Dict[ControlState, List[Edge]] = {s: [] for s in self.control_states}
        for edge in self.edges:
            self._outgoing[edge.source].append(edge)

    # ------------------------------------------------------------------
    # Measures used by the bounds
    # ------------------------------------------------------------------
    @property
    def num_control_states(self) -> int:
        """``|S|``."""
        return len(self.control_states)

    @property
    def num_edges(self) -> int:
        """``|E|``."""
        return len(self.edges)

    def outgoing(self, control_state: ControlState) -> Sequence[Edge]:
        """The edges leaving a control-state."""
        return self._outgoing.get(control_state, ())

    def __iter__(self) -> Iterator[Edge]:
        return iter(self.edges)

    def __repr__(self) -> str:
        return (
            f"ControlStatePetriNet(|S|={self.num_control_states}, "
            f"|T|={self.net.num_transitions}, |E|={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Paths and connectivity
    # ------------------------------------------------------------------
    def is_path(self, edges: Sequence[Edge]) -> bool:
        """True if consecutive edges chain up (``target`` of one is ``source`` of the next)."""
        for previous, current in zip(edges, edges[1:]):
            if previous.target != current.source:
                return False
        return all(edge in set(self.edges) for edge in edges)

    def find_path(
        self, source: ControlState, target: ControlState
    ) -> Optional[List[Edge]]:
        """A shortest path of edges from ``source`` to ``target`` (None if none)."""
        if source == target:
            return []
        parents: Dict[ControlState, Tuple[ControlState, Edge]] = {}
        visited = {source}
        frontier = [source]
        while frontier:
            next_frontier = []
            for current in frontier:
                for edge in self.outgoing(current):
                    if edge.target in visited:
                        continue
                    visited.add(edge.target)
                    parents[edge.target] = (current, edge)
                    if edge.target == target:
                        return self._rebuild(parents, source, target)
                    next_frontier.append(edge.target)
            frontier = next_frontier
        return None

    def _rebuild(
        self,
        parents: Dict[ControlState, Tuple[ControlState, Edge]],
        source: ControlState,
        target: ControlState,
    ) -> List[Edge]:
        path: List[Edge] = []
        current = target
        while current != source:
            previous, edge = parents[current]
            path.append(edge)
            current = previous
        path.reverse()
        return path

    def is_strongly_connected(self) -> bool:
        """True if every control-state reaches every other through edges.

        Control-states with no incident edges make the net non-strongly
        connected unless ``|S| = 1``.
        """
        states = list(self.control_states)
        if len(states) <= 1:
            return True
        root = states[0]
        if len(self._reachable_from(root)) != len(states):
            return False
        reverse_adjacency: Dict[ControlState, List[ControlState]] = {s: [] for s in states}
        for edge in self.edges:
            reverse_adjacency[edge.target].append(edge.source)
        reached = {root}
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for predecessor in reverse_adjacency[current]:
                if predecessor not in reached:
                    reached.add(predecessor)
                    frontier.append(predecessor)
        return len(reached) == len(states)

    def _reachable_from(self, root: ControlState) -> Set[ControlState]:
        reached = {root}
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for edge in self.outgoing(current):
                if edge.target not in reached:
                    reached.add(edge.target)
                    frontier.append(edge.target)
        return reached

    def strongly_connected_components(self) -> List[Set[ControlState]]:
        """Tarjan's algorithm: the strongly connected components of ``(S, E)``."""
        index_counter = [0]
        stack: List[ControlState] = []
        lowlink: Dict[ControlState, int] = {}
        index: Dict[ControlState, int] = {}
        on_stack: Dict[ControlState, bool] = {}
        components: List[Set[ControlState]] = []

        def strongconnect(node: ControlState) -> None:
            # Iterative Tarjan to avoid recursion limits on large components.
            work = [(node, iter(self.outgoing(node)))]
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack[node] = True
            while work:
                current, edge_iterator = work[-1]
                advanced = False
                for edge in edge_iterator:
                    successor = edge.target
                    if successor not in index:
                        index[successor] = lowlink[successor] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(successor)
                        on_stack[successor] = True
                        work.append((successor, iter(self.outgoing(successor))))
                        advanced = True
                        break
                    if on_stack.get(successor, False):
                        lowlink[current] = min(lowlink[current], index[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    component: Set[ControlState] = set()
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.add(member)
                        if member == current:
                            break
                    components.append(component)

        for state in self.control_states:
            if state not in index:
                strongconnect(state)
        return components


def component_control_net(
    net: PetriNet,
    component: Iterable[Configuration],
    restriction: Optional[Iterable[State]] = None,
) -> ControlStatePetriNet:
    """Build the control-state net of Section 8 from a component of configurations.

    ``S`` is the given set of configurations (typically the ``T|_Q``-component
    of a bottom configuration), ``T`` is the given Petri net, and
    ``E = {(s, t, s') : s --t|_Q--> s'}`` where ``Q`` is ``restriction`` (the
    whole universe when omitted).
    """
    component_set = set(component)
    if restriction is None:
        restricted_net = net
        restrict_states: Optional[Set[State]] = None
    else:
        restrict_states = set(restriction)
        restricted_net = net
    edges: List[Edge] = []
    # Canonical source order: iterating the raw set would make the edge list
    # (and anything downstream that enumerates it) depend on hash order.
    for source in sorted(component_set, key=str):
        for transition in net.transitions:
            effective = (
                transition if restrict_states is None else transition.restrict(restrict_states)
            )
            target = effective.fire_if_enabled(source)
            if target is not None and target in component_set:
                edges.append(Edge(source, transition, target))
    return ControlStatePetriNet(component_set, restricted_net, edges)
