"""Petri nets with control-states: paths, cycles, multicycles (paper, Section 7).

This subpackage implements the combinatorial toolbox of Section 7: the
``(S, T, E)`` model, Parikh images and displacements of paths and multicycles,
the Euler lemma (7.1), small total cycles (Lemma 7.2) and small multicycles
obtained through Pottier's algorithm (Lemma 7.3).
"""

from .cycles import Cycle, Multicycle, Path, parikh_image, path_displacement
from .euler import euler_lemma, eulerian_cycle_from_parikh, is_balanced
from .pcs import ControlStatePetriNet, Edge, component_control_net
from .small_cycles import (
    SmallMulticycleResult,
    lemma_7_3_length_bound,
    lemma_7_3_threshold,
    simple_cycle_through,
    small_multicycle,
    total_cycle,
    total_cycle_length_bound,
)

__all__ = [
    "Edge",
    "ControlStatePetriNet",
    "component_control_net",
    "Path",
    "Cycle",
    "Multicycle",
    "parikh_image",
    "path_displacement",
    "euler_lemma",
    "eulerian_cycle_from_parikh",
    "is_balanced",
    "simple_cycle_through",
    "total_cycle",
    "total_cycle_length_bound",
    "lemma_7_3_threshold",
    "lemma_7_3_length_bound",
    "small_multicycle",
    "SmallMulticycleResult",
]
