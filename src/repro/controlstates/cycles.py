"""Paths, cycles and multicycles of Petri nets with control-states (Section 7).

A *path* from ``s`` to ``s'`` is a word of edges whose control-states chain
up.  A *cycle* is a path from a control-state to itself; it is *simple* when
the visited control-states are pairwise distinct, and *total* when its Parikh
image covers every edge.  A *multicycle* is a finite sequence of cycles, with
Parikh image and displacement summed over its cycles.

These objects carry the combinatorics of the small-cycle lemmas (7.1–7.3) and
of the final contradiction argument of Section 8.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..algebra.vectors import IntVector
from ..core.transition import Transition
from .pcs import ControlState, ControlStatePetriNet, Edge

__all__ = ["Path", "Cycle", "Multicycle", "parikh_image", "path_displacement"]


def parikh_image(edges: Sequence[Edge]) -> Dict[Edge, int]:
    """``#pi``: the number of occurrences of each edge in a word of edges."""
    image: Dict[Edge, int] = {}
    for edge in edges:
        image[edge] = image.get(edge, 0) + 1
    return image


def path_displacement(edges: Sequence[Edge]) -> IntVector:
    """``Delta(pi)``: the summed displacement of the edges of a path."""
    total = IntVector.zero()
    for edge in edges:
        total = total + IntVector(edge.displacement())
    return total


class Path:
    """A path of a Petri net with control-states: a chaining word of edges."""

    def __init__(self, edges: Sequence[Edge]):
        edges = tuple(edges)
        for previous, current in zip(edges, edges[1:]):
            if previous.target != current.source:
                raise ValueError(
                    f"edges do not chain: {previous!r} then {current!r}"
                )
        self.edges: Tuple[Edge, ...] = edges

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def source(self) -> Optional[ControlState]:
        """The first control-state (None for the empty path)."""
        return self.edges[0].source if self.edges else None

    @property
    def target(self) -> Optional[ControlState]:
        """The last control-state (None for the empty path)."""
        return self.edges[-1].target if self.edges else None

    @property
    def length(self) -> int:
        """``|pi|``: the number of edges."""
        return len(self.edges)

    def control_states(self) -> List[ControlState]:
        """The visited control-states ``s_0, ..., s_k`` in order."""
        if not self.edges:
            return []
        states = [self.edges[0].source]
        states.extend(edge.target for edge in self.edges)
        return states

    def transitions(self) -> List[Transition]:
        """The label of the path: the word of underlying Petri net transitions."""
        return [edge.transition for edge in self.edges]

    def parikh_image(self) -> Dict[Edge, int]:
        """``#pi``."""
        return parikh_image(self.edges)

    def displacement(self) -> IntVector:
        """``Delta(pi)``."""
        return path_displacement(self.edges)

    def is_elementary(self) -> bool:
        """True if no control-state is visited twice (also called a simple path)."""
        states = self.control_states()
        return len(states) == len(set(states))

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[Edge]:
        return iter(self.edges)

    def __add__(self, other: "Path") -> "Path":
        if not self.edges:
            return other
        if not other.edges:
            return self
        if self.target != other.source:
            raise ValueError("cannot concatenate paths whose endpoints do not match")
        return Path(self.edges + other.edges)

    def __repr__(self) -> str:
        return f"Path(length={self.length}, {self.source!r} -> {self.target!r})"


class Cycle(Path):
    """A cycle: a non-empty path whose source equals its target."""

    def __init__(self, edges: Sequence[Edge]):
        super().__init__(edges)
        if not self.edges:
            raise ValueError("a cycle must contain at least one edge")
        if self.source != self.target:
            raise ValueError(
                f"not a cycle: starts at {self.source!r} and ends at {self.target!r}"
            )

    def is_simple(self) -> bool:
        """True if the intermediate control-states ``s_1, ..., s_k`` are distinct."""
        states = [edge.target for edge in self.edges]
        return len(states) == len(set(states))

    def is_total(self, net: ControlStatePetriNet) -> bool:
        """True if every edge of ``net`` occurs at least once in the cycle."""
        image = self.parikh_image()
        return all(image.get(edge, 0) > 0 for edge in net.edges)

    def rotate_to(self, control_state: ControlState) -> "Cycle":
        """Rotate the cycle so that it starts (and ends) at ``control_state``."""
        states = self.control_states()
        if control_state not in states[:-1]:
            raise ValueError(f"control-state {control_state!r} is not on the cycle")
        pivot = states[:-1].index(control_state)
        rotated = self.edges[pivot:] + self.edges[:pivot]
        return Cycle(rotated)

    def power(self, exponent: int) -> "Cycle":
        """The cycle repeated ``exponent`` times (``exponent >= 1``)."""
        if exponent < 1:
            raise ValueError("cycle power requires a positive exponent")
        return Cycle(self.edges * exponent)

    def decompose_simple(self) -> List["Cycle"]:
        """Decompose the cycle into simple cycles with the same total Parikh image.

        Standard stack-based extraction: walk the cycle, and whenever a
        control-state repeats on the stack, pop the enclosed edges as a simple
        cycle.  The multiset union of the extracted simple cycles' edges is
        exactly the cycle's edge multiset.
        """
        simple_cycles: List[Cycle] = []
        stack_states: List[ControlState] = [self.edges[0].source]
        stack_edges: List[Edge] = []
        for edge in self.edges:
            stack_edges.append(edge)
            target = edge.target
            if target in stack_states:
                position = stack_states.index(target)
                count = len(stack_states) - position
                extracted = stack_edges[-count:]
                del stack_edges[-count:]
                del stack_states[position + 1:]
                simple_cycles.append(Cycle(extracted))
            else:
                stack_states.append(target)
        if stack_edges:
            # The walk returned to the start, so the stack must be empty here.
            raise RuntimeError("cycle decomposition left dangling edges")
        return simple_cycles

    def __repr__(self) -> str:
        return f"Cycle(length={self.length}, at {self.source!r})"


class Multicycle:
    """A multicycle: a finite sequence of cycles (paper, Section 7)."""

    def __init__(self, cycles: Iterable[Cycle] = ()):
        self.cycles: Tuple[Cycle, ...] = tuple(cycles)

    @property
    def length(self) -> int:
        """``|Theta|``: the summed length of the cycles."""
        return sum(cycle.length for cycle in self.cycles)

    def parikh_image(self) -> Dict[Edge, int]:
        """``#Theta``: the summed Parikh image of the cycles."""
        image: Dict[Edge, int] = {}
        for cycle in self.cycles:
            for edge, count in cycle.parikh_image().items():
                image[edge] = image.get(edge, 0) + count
        return image

    def displacement(self) -> IntVector:
        """``Delta(Theta)``: the summed displacement of the cycles."""
        total = IntVector.zero()
        for cycle in self.cycles:
            total = total + cycle.displacement()
        return total

    def is_total(self, net: ControlStatePetriNet) -> bool:
        """True if every edge of ``net`` occurs in some cycle of the multicycle."""
        image = self.parikh_image()
        return all(image.get(edge, 0) > 0 for edge in net.edges)

    def decompose_simple(self) -> "Multicycle":
        """The multicycle whose cycles are the simple cycles of this one's cycles."""
        simple: List[Cycle] = []
        for cycle in self.cycles:
            simple.extend(cycle.decompose_simple())
        return Multicycle(simple)

    def __add__(self, other: "Multicycle") -> "Multicycle":
        return Multicycle(self.cycles + other.cycles)

    def __len__(self) -> int:
        return len(self.cycles)

    def __iter__(self) -> Iterator[Cycle]:
        return iter(self.cycles)

    def __repr__(self) -> str:
        return f"Multicycle(cycles={len(self.cycles)}, length={self.length})"
