"""Small total cycles and small multicycles (Lemmas 7.2 and 7.3).

* **Lemma 7.2** — every strongly connected Petri net with control-states has a
  *total* cycle (one that uses every edge) of length at most ``|E| |S|``.
  The construction follows the paper: pick, for every edge, a short cycle
  through that edge (the edge followed by an elementary return path); the
  resulting multicycle is total, and the Euler lemma (7.1) merges it into a
  single total cycle with the same Parikh image.

* **Lemma 7.3** — given a multicycle ``Theta`` and a set ``Q`` of places, there
  is a *small* multicycle ``Theta'`` whose displacement has the same signs as
  ``Delta(Theta)`` (strictly, on places where ``|Delta(Theta)|`` is large), is
  zero on ``Q``, and that still uses every edge used at least ``k`` times by
  ``Theta``.  The construction solves the sign-split homogeneous system of
  Section 7 with Pottier's algorithm and recombines small minimal solutions.

Implementation note (documented substitution): the paper's system uses one
variable per *displacement of a simple cycle*; we use one variable per
*distinct simple cycle* occurring in ``Theta``.  This is a refinement (several
cycles may share a displacement) that keeps every property of the lemma
checkable on the constructed object — in particular ``#Theta'(e) > 0`` can be
evaluated directly because each beta-variable corresponds to a concrete cycle.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..algebra.linear_systems import SignSystem, SignSystemSolution
from ..algebra.vectors import IntVector
from ..core.configuration import State
from .cycles import Cycle, Multicycle, Path
from .euler import euler_lemma
from .pcs import ControlState, ControlStatePetriNet, Edge

__all__ = [
    "simple_cycle_through",
    "total_cycle",
    "total_cycle_length_bound",
    "lemma_7_3_threshold",
    "lemma_7_3_length_bound",
    "small_multicycle",
    "SmallMulticycleResult",
]


# ----------------------------------------------------------------------
# Lemma 7.2: small total cycles
# ----------------------------------------------------------------------
def simple_cycle_through(net: ControlStatePetriNet, edge: Edge) -> Cycle:
    """A short cycle through ``edge``: the edge followed by a shortest return path.

    The return path is elementary (shortest paths are), so the cycle has
    length at most ``|S|``.
    """
    return_path = net.find_path(edge.target, edge.source)
    if return_path is None:
        raise ValueError(
            f"no return path from {edge.target!r} to {edge.source!r}: net is not strongly connected"
        )
    return Cycle([edge] + return_path)


def total_cycle_length_bound(net: ControlStatePetriNet) -> int:
    """The Lemma 7.2 bound ``|E| |S|`` on the length of the constructed total cycle."""
    return net.num_edges * net.num_control_states


def total_cycle(net: ControlStatePetriNet) -> Cycle:
    """Lemma 7.2: a total cycle of length at most ``|E| |S|``.

    Raises
    ------
    ValueError
        If the net is not strongly connected or has no edge.
    """
    if not net.edges:
        raise ValueError("a total cycle requires at least one edge")
    if not net.is_strongly_connected():
        raise ValueError("Lemma 7.2 requires a strongly connected net")
    per_edge_cycles = [simple_cycle_through(net, edge) for edge in net.edges]
    multicycle = Multicycle(per_edge_cycles)
    cycle = euler_lemma(net, multicycle)
    return cycle


# ----------------------------------------------------------------------
# Lemma 7.3: small multicycles
# ----------------------------------------------------------------------
def lemma_7_3_threshold(
    net: ControlStatePetriNet,
    multicycle: Multicycle,
    zero_places: Iterable[State],
    num_places: int,
) -> int:
    """The threshold ``k`` of Lemma 7.3.

    ``k`` must exceed ``||Delta(Theta)|_Q||_1 * (1 + 2 |S| ||T||_inf)^{d(d+1)}``;
    this helper returns that value plus one.
    """
    zero_places = set(zero_places)
    displacement = multicycle.displacement().restrict(zero_places)
    base = 1 + 2 * net.num_control_states * max(net.net.max_value, 1)
    return displacement.norm1 * base ** (num_places * (num_places + 1)) + 1


def lemma_7_3_length_bound(net: ControlStatePetriNet, num_places: int) -> int:
    """The Lemma 7.3 bound ``(|E| + d)(1 + 2 |S| ||T||_inf)^{d(d+1)}`` on ``|Theta'|``."""
    base = 1 + 2 * net.num_control_states * max(net.net.max_value, 1)
    return (net.num_edges + num_places) * base ** (num_places * (num_places + 1))


class SmallMulticycleResult:
    """The output of :func:`small_multicycle`.

    Attributes
    ----------
    multicycle:
        The small multicycle ``Theta'``.
    solution:
        The sign-system solution it was assembled from.
    basis_size:
        The number of minimal solutions of the sign system (diagnostic).
    """

    def __init__(
        self,
        multicycle: Multicycle,
        solution: SignSystemSolution,
        basis_size: int,
    ):
        self.multicycle = multicycle
        self.solution = solution
        self.basis_size = basis_size

    def __repr__(self) -> str:
        return (
            f"SmallMulticycleResult(length={self.multicycle.length}, "
            f"basis_size={self.basis_size})"
        )


def small_multicycle(
    net: ControlStatePetriNet,
    multicycle: Multicycle,
    zero_places: Iterable[State],
    threshold: Optional[int] = None,
    places: Optional[Iterable[State]] = None,
) -> SmallMulticycleResult:
    """Lemma 7.3: build a small multicycle ``Theta'`` from ``Theta``.

    Guarantees on the returned multicycle (checked by the test suite):

    * sign preservation — for every place ``p``,
      ``Delta(Theta')(p) <= 0`` whenever ``Delta(Theta)(p) <= 0`` and
      ``Delta(Theta')(p) >= 0`` whenever ``Delta(Theta)(p) >= 0``;
      strictly negative (resp. positive) whenever ``Delta(Theta)(p)`` is below
      ``-threshold`` (resp. above ``threshold``),
    * ``Delta(Theta')(q) = 0`` for every ``q`` in ``zero_places``,
    * every edge used at least ``threshold`` times by ``Theta`` is used by
      ``Theta'``,
    * the cycles of ``Theta'`` are simple cycles of ``Theta``.

    Parameters
    ----------
    net:
        The Petri net with control-states hosting the multicycle.
    multicycle:
        The (possibly huge) multicycle ``Theta``.
    zero_places:
        The set ``Q`` of places whose ``Theta'`` displacement must vanish.
    threshold:
        The value ``k``; defaults to :func:`lemma_7_3_threshold`.
    places:
        The place universe ``P``; defaults to the states of the underlying
        Petri net.
    """
    place_list: Tuple[State, ...] = tuple(places if places is not None else net.net.states)
    zero_set: Set[State] = set(zero_places)
    if threshold is None:
        threshold = lemma_7_3_threshold(net, multicycle, zero_set, len(place_list))
    if threshold < 1:
        raise ValueError("the Lemma 7.3 threshold must be positive")

    simple = multicycle.decompose_simple()
    if not simple.cycles:
        raise ValueError("Lemma 7.3 requires a non-empty multicycle")

    # Group identical simple cycles (same edge sequence up to rotation would be
    # finer; exact equality of edge tuples is enough for correctness).
    cycle_keys: Dict[Tuple[Edge, ...], Cycle] = {}
    multiplicities: Dict[Tuple[Edge, ...], int] = {}
    for cycle in simple.cycles:
        key = cycle.edges
        cycle_keys.setdefault(key, cycle)
        multiplicities[key] = multiplicities.get(key, 0) + 1

    displacement = multicycle.displacement()
    signs = {
        place: (1 if displacement[place] >= 0 else -1) for place in place_list
    }
    actions = {key: cycle.displacement() for key, cycle in cycle_keys.items()}
    system = SignSystem(place_list, actions, signs)

    canonical = system.solution_from_multicycle(
        displacement.restrict(place_list), multiplicities
    )
    if not system.is_solution(canonical):
        raise RuntimeError("the canonical multicycle solution does not satisfy the sign system")

    minimal = system.minimal_solutions()
    parts = system.decompose(canonical)

    # H_0: minimal parts whose alpha vanishes on the zero places.
    def in_h0(part: SignSystemSolution) -> bool:
        return all(part.alpha[place] == 0 for place in zero_set)

    # Pick, for every edge used >= threshold times, a part of H_0 using it, and
    # for every place with |Delta(Theta)(p)| >= threshold, a part of H_0 with
    # alpha(p) > 0.  The counting argument of the paper guarantees existence;
    # we simply search the decomposition.
    chosen: List[SignSystemSolution] = []

    def edge_usage(part: SignSystemSolution) -> Dict[Edge, int]:
        usage: Dict[Edge, int] = {}
        for key, count in part.beta.items():
            if count <= 0:
                continue
            for edge, occurrences in cycle_keys[key].parikh_image().items():
                usage[edge] = usage.get(edge, 0) + count * occurrences
        return usage

    theta_parikh = multicycle.parikh_image()
    heavy_edges = [edge for edge, count in theta_parikh.items() if count >= threshold]
    for edge in heavy_edges:
        part = _find_part(parts, in_h0, lambda p: edge_usage(p).get(edge, 0) > 0)
        if part is None:
            raise RuntimeError(
                f"Lemma 7.3 counting argument failed for edge {edge!r}: "
                "threshold too small for this instance"
            )
        chosen.append(part)

    heavy_places = [
        place for place in place_list if abs(displacement[place]) >= threshold
    ]
    for place in heavy_places:
        part = _find_part(parts, in_h0, lambda p: p.alpha[place] > 0)
        if part is None:
            raise RuntimeError(
                f"Lemma 7.3 counting argument failed for place {place!r}: "
                "threshold too small for this instance"
            )
        chosen.append(part)

    if not chosen:
        # Degenerate but allowed: nothing is heavy; the empty multicycle works.
        combined = SignSystemSolution(IntVector.zero(), IntVector.zero())
    else:
        combined = chosen[0]
        for part in chosen[1:]:
            combined = combined + part

    cycles: List[Cycle] = []
    for key, count in combined.beta.items():
        for _ in range(count):
            cycles.append(cycle_keys[key])
    result = Multicycle(cycles)

    _check_small_multicycle(result, displacement, zero_set, place_list, threshold, theta_parikh)
    return SmallMulticycleResult(result, combined, len(minimal))


def _find_part(parts, in_h0, predicate) -> Optional[SignSystemSolution]:
    for part in parts:
        if in_h0(part) and predicate(part):
            return part
    return None


def _check_small_multicycle(
    result: Multicycle,
    displacement: IntVector,
    zero_set: Set[State],
    place_list: Sequence[State],
    threshold: int,
    theta_parikh: Mapping[Edge, int],
) -> None:
    """Internal sanity check of the Lemma 7.3 guarantees (cheap, always on)."""
    new_displacement = result.displacement()
    for place in place_list:
        original = displacement[place]
        new = new_displacement[place]
        if original <= 0 and new > 0:
            raise RuntimeError(f"sign violation on place {place!r}: {original} vs {new}")
        if original >= 0 and new < 0:
            raise RuntimeError(f"sign violation on place {place!r}: {original} vs {new}")
        if original <= -threshold and new >= 0:
            raise RuntimeError(f"strict sign violation on place {place!r}")
        if original >= threshold and new <= 0:
            raise RuntimeError(f"strict sign violation on place {place!r}")
    for place in zero_set:
        if new_displacement[place] != 0:
            raise RuntimeError(f"zero-place violation on {place!r}")
    new_parikh = result.parikh_image()
    for edge, count in theta_parikh.items():
        if count >= threshold and new_parikh.get(edge, 0) <= 0:
            raise RuntimeError(f"heavy edge {edge!r} is not used by the small multicycle")
