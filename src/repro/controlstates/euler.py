"""The Euler lemma for Petri nets with control-states (Lemma 7.1).

Lemma 7.1: for every **total** multicycle ``Theta`` of a **strongly
connected** Petri net with control-states, there exists a total cycle
``theta`` with the same Parikh image ``#theta = #Theta``.

The proof is the classical Eulerian-circuit argument: the multigraph whose
edge multiset is ``#Theta`` is balanced (every control-state has equal in- and
out-degree, because ``Theta`` is a union of cycles) and connected on the whole
net (because ``Theta`` is total and the net is strongly connected), so it
carries an Eulerian circuit — which is precisely a single cycle with the same
Parikh image.  This module implements that construction with Hierholzer's
algorithm.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional

from .cycles import Cycle, Multicycle
from .pcs import ControlState, ControlStatePetriNet, Edge

__all__ = ["eulerian_cycle_from_parikh", "euler_lemma", "is_balanced"]


def is_balanced(parikh: Mapping[Edge, int]) -> bool:
    """True if the edge multiset has equal in- and out-degree at every control-state.

    Every Parikh image of a multicycle is balanced; this is the necessary
    condition for an Eulerian circuit.
    """
    balance: Dict[ControlState, int] = {}
    for edge, count in parikh.items():
        if count < 0:
            raise ValueError("Parikh images must be non-negative")
        balance[edge.source] = balance.get(edge.source, 0) + count
        balance[edge.target] = balance.get(edge.target, 0) - count
    return all(value == 0 for value in balance.values())


def eulerian_cycle_from_parikh(
    parikh: Mapping[Edge, int], start: Optional[ControlState] = None
) -> Cycle:
    """Build a single cycle whose Parikh image is exactly ``parikh``.

    Requires the multiset to be balanced and its support to be connected (as
    an undirected multigraph restricted to control-states with incident
    edges); both hold in the setting of Lemma 7.1.  Hierholzer's algorithm is
    used: repeatedly walk unused edges until returning to the start, splicing
    sub-tours into the main tour.

    Parameters
    ----------
    parikh:
        The desired edge multiset (must be balanced, non-empty, connected).
    start:
        Optional control-state to start the cycle at; must have an outgoing
        edge in the multiset.
    """
    positive = {edge: count for edge, count in parikh.items() if count > 0}
    if not positive:
        raise ValueError("cannot build a cycle from an empty Parikh image")
    if not is_balanced(positive):
        raise ValueError("the Parikh image is not balanced; it is not a union of cycles")

    remaining: Dict[Edge, int] = dict(positive)
    outgoing: Dict[ControlState, List[Edge]] = {}
    for edge in positive:
        outgoing.setdefault(edge.source, []).append(edge)

    if start is None:
        start = next(iter(positive)).source
    if start not in outgoing:
        raise ValueError(f"start control-state {start!r} has no outgoing edge in the multiset")

    # Hierholzer: tour is a list of edges; we insert sub-tours in place.
    tour: List[Edge] = _walk_tour(start, remaining, outgoing)
    # Keep splicing while unused edges remain.
    while any(count > 0 for count in remaining.values()):
        # Find a position on the current tour whose control-state still has
        # unused outgoing edges; connectivity guarantees one exists.
        insert_at = None
        for index, edge in enumerate(tour):
            state = edge.source
            if _has_unused(state, remaining, outgoing):
                insert_at = index
                break
        if insert_at is None:
            raise ValueError(
                "the Parikh image is not connected: leftover edges cannot be spliced"
            )
        state = tour[insert_at].source
        sub_tour = _walk_tour(state, remaining, outgoing)
        tour = tour[:insert_at] + sub_tour + tour[insert_at:]
    return Cycle(tour)


def _has_unused(
    state: ControlState,
    remaining: Mapping[Edge, int],
    outgoing: Mapping[ControlState, List[Edge]],
) -> bool:
    return any(remaining[edge] > 0 for edge in outgoing.get(state, ()))


def _walk_tour(
    start: ControlState,
    remaining: Dict[Edge, int],
    outgoing: Mapping[ControlState, List[Edge]],
) -> List[Edge]:
    """Greedily walk unused edges from ``start`` until stuck (back at ``start`` if balanced)."""
    tour: List[Edge] = []
    current = start
    while True:
        next_edge = None
        for edge in outgoing.get(current, ()):
            if remaining[edge] > 0:
                next_edge = edge
                break
        if next_edge is None:
            break
        remaining[next_edge] -= 1
        tour.append(next_edge)
        current = next_edge.target
    if current != start:
        raise ValueError("walk did not return to its start: the multiset is not balanced")
    return tour


def euler_lemma(net: ControlStatePetriNet, multicycle: Multicycle) -> Cycle:
    """Lemma 7.1: from a total multicycle, build a total cycle with the same Parikh image.

    Raises
    ------
    ValueError
        If the net is not strongly connected or the multicycle is not total —
        the hypotheses of the lemma.
    """
    if not net.is_strongly_connected():
        raise ValueError("Euler lemma requires a strongly connected net")
    if not multicycle.is_total(net):
        raise ValueError("Euler lemma requires a total multicycle")
    cycle = eulerian_cycle_from_parikh(multicycle.parikh_image())
    return cycle
