"""Core model of the paper: configurations, Petri nets, protocols, predicates.

This subpackage implements Sections 2–4 of Leroux, *State Complexity of
Protocols With Leaders* (PODC 2022): configurations as multisets of states,
transitions and Petri nets, additive preorders, population protocols with
leaders, counting predicates, and the output-stability / stable-computation
semantics.
"""

from .configuration import Configuration, State, from_counts, from_sequence, unit, zero
from .petrinet import ExplorationLimitError, PetriNet, ReachabilityGraph
from .predicates import (
    AndPredicate,
    ConstantPredicate,
    CountingPredicate,
    ModuloPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    ThresholdPredicate,
    counting,
)
from .preorder import AdditivePreorder, PetriNetPreorder, RelationPreorder
from .protocol import OUTPUT_ONE, OUTPUT_UNDEFINED, OUTPUT_ZERO, Output, Protocol
from .semantics import (
    always_eventually_stable,
    forward_closure,
    is_output_stable,
    output_stable_nodes,
    stable_consensus_value,
)
from .transition import Transition, displacement_of_word, pairwise, word_width

__all__ = [
    "Configuration",
    "State",
    "unit",
    "zero",
    "from_counts",
    "from_sequence",
    "Transition",
    "pairwise",
    "displacement_of_word",
    "word_width",
    "PetriNet",
    "ReachabilityGraph",
    "ExplorationLimitError",
    "AdditivePreorder",
    "PetriNetPreorder",
    "RelationPreorder",
    "Protocol",
    "Output",
    "OUTPUT_ZERO",
    "OUTPUT_ONE",
    "OUTPUT_UNDEFINED",
    "Predicate",
    "CountingPredicate",
    "ThresholdPredicate",
    "ModuloPredicate",
    "NotPredicate",
    "AndPredicate",
    "OrPredicate",
    "ConstantPredicate",
    "counting",
    "forward_closure",
    "is_output_stable",
    "output_stable_nodes",
    "always_eventually_stable",
    "stable_consensus_value",
]
