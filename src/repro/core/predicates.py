"""Predicates over initial configurations.

A *predicate* (paper, Section 2) is a mapping ``phi : N^I -> {0, 1}`` where
``I`` is the set of initial states of a protocol.  The paper focuses on the
*counting predicates* ``(i >= n)``: the predicate over ``I = {i}`` that maps a
configuration ``rho`` to 1 exactly when ``rho(i) >= n``.

Beyond counting predicates, this module implements the standard Presburger
building blocks used by the baseline constructions and the extended examples:
linear threshold predicates, modulo (remainder) predicates, and boolean
combinations.  All of them are stably computable by population protocols
(Angluin et al. 2006), and the protocol constructions in
:mod:`repro.protocols` produce protocols for them.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from .configuration import Configuration, State

__all__ = [
    "Predicate",
    "CountingPredicate",
    "ThresholdPredicate",
    "ModuloPredicate",
    "NotPredicate",
    "AndPredicate",
    "OrPredicate",
    "ConstantPredicate",
    "counting",
]


class Predicate(abc.ABC):
    """A boolean predicate over configurations of initial states."""

    @property
    @abc.abstractmethod
    def initial_states(self) -> FrozenSet[State]:
        """The set ``I`` of initial states the predicate reads."""

    @abc.abstractmethod
    def evaluate(self, configuration: Configuration) -> int:
        """Evaluate the predicate; returns 0 or 1."""

    def __call__(self, configuration: Configuration) -> int:
        return self.evaluate(configuration)

    # ------------------------------------------------------------------
    # Boolean combinators
    # ------------------------------------------------------------------
    def __invert__(self) -> "Predicate":
        return NotPredicate(self)

    def __and__(self, other: "Predicate") -> "Predicate":
        return AndPredicate(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return OrPredicate(self, other)

    # ------------------------------------------------------------------
    # Enumeration helpers (used by verification on bounded populations)
    # ------------------------------------------------------------------
    def enumerate_inputs(self, max_agents: int) -> Iterable[Configuration]:
        """Enumerate all input configurations with at most ``max_agents`` agents."""
        states = sorted(self.initial_states, key=str)
        yield from _enumerate_configurations(states, max_agents)


def _enumerate_configurations(
    states: Sequence[State], max_agents: int
) -> Iterable[Configuration]:
    """All configurations over ``states`` of size at most ``max_agents``."""
    if not states:
        yield Configuration.zero()
        return

    def recurse(
        index: int, remaining: int, current: Dict[State, int]
    ) -> Iterator[Configuration]:
        if index == len(states):
            yield Configuration(current)
            return
        state = states[index]
        for count in range(remaining + 1):
            if count:
                current[state] = count
            yield from recurse(index + 1, remaining - count, current)
            current.pop(state, None)

    yield from recurse(0, max_agents, {})


class CountingPredicate(Predicate):
    """The counting predicate ``(i >= n)`` of the paper (Section 4).

    ``I = {i}`` and ``phi(rho) = 1`` iff ``rho(i) >= n``.
    """

    def __init__(self, state: State, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("counting predicates require a positive threshold n >= 1")
        self.state = state
        self.threshold = threshold

    @property
    def initial_states(self) -> FrozenSet[State]:
        return frozenset({self.state})

    def evaluate(self, configuration: Configuration) -> int:
        return 1 if configuration[self.state] >= self.threshold else 0

    def __repr__(self) -> str:
        return f"CountingPredicate({self.state!r} >= {self.threshold})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountingPredicate):
            return NotImplemented
        return self.state == other.state and self.threshold == other.threshold

    def __hash__(self) -> int:
        return hash(("counting", self.state, self.threshold))


class ThresholdPredicate(Predicate):
    """A linear threshold predicate ``sum_i a_i * x_i >= c``.

    The coefficients ``a_i`` may be negative; this is the general Presburger
    atom used by the succinct constructions of Blondin, Esparza & Jaax.
    """

    def __init__(self, coefficients: Mapping[State, int], constant: int) -> None:
        self.coefficients: Dict[State, int] = dict(coefficients)
        self.constant = constant

    @property
    def initial_states(self) -> FrozenSet[State]:
        return frozenset(self.coefficients)

    def evaluate(self, configuration: Configuration) -> int:
        total = sum(
            coefficient * configuration[state]
            for state, coefficient in self.coefficients.items()
        )
        return 1 if total >= self.constant else 0

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{coefficient}*{state}" for state, coefficient in sorted(
                self.coefficients.items(), key=lambda item: str(item[0])
            )
        )
        return f"ThresholdPredicate({terms} >= {self.constant})"


class ModuloPredicate(Predicate):
    """A remainder predicate ``sum_i a_i * x_i = r (mod m)``."""

    def __init__(self, coefficients: Mapping[State, int], modulus: int, remainder: int) -> None:
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        self.coefficients: Dict[State, int] = dict(coefficients)
        self.modulus = modulus
        self.remainder = remainder % modulus

    @property
    def initial_states(self) -> FrozenSet[State]:
        return frozenset(self.coefficients)

    def evaluate(self, configuration: Configuration) -> int:
        total = sum(
            coefficient * configuration[state]
            for state, coefficient in self.coefficients.items()
        )
        return 1 if total % self.modulus == self.remainder else 0

    def __repr__(self) -> str:
        return (
            f"ModuloPredicate(sum == {self.remainder} mod {self.modulus}, "
            f"coefficients={self.coefficients})"
        )


class ConstantPredicate(Predicate):
    """A predicate with a constant truth value over a given set of initial states."""

    def __init__(self, value: int, initial_states: Iterable[State] = ()) -> None:
        if value not in (0, 1):
            raise ValueError("constant predicates take the value 0 or 1")
        self.value = value
        self._initial_states = frozenset(initial_states)

    @property
    def initial_states(self) -> FrozenSet[State]:
        return self._initial_states

    def evaluate(self, configuration: Configuration) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantPredicate({self.value})"


class NotPredicate(Predicate):
    """Negation of a predicate."""

    def __init__(self, inner: Predicate) -> None:
        self.inner = inner

    @property
    def initial_states(self) -> FrozenSet[State]:
        return self.inner.initial_states

    def evaluate(self, configuration: Configuration) -> int:
        return 1 - self.inner.evaluate(configuration)

    def __repr__(self) -> str:
        return f"NotPredicate({self.inner!r})"


class _BinaryPredicate(Predicate):
    """Shared plumbing for binary boolean combinations."""

    def __init__(self, left: Predicate, right: Predicate) -> None:
        self.left = left
        self.right = right

    @property
    def initial_states(self) -> FrozenSet[State]:
        return self.left.initial_states | self.right.initial_states


class AndPredicate(_BinaryPredicate):
    """Conjunction of two predicates."""

    def evaluate(self, configuration: Configuration) -> int:
        return self.left.evaluate(configuration) & self.right.evaluate(configuration)

    def __repr__(self) -> str:
        return f"AndPredicate({self.left!r}, {self.right!r})"


class OrPredicate(_BinaryPredicate):
    """Disjunction of two predicates."""

    def evaluate(self, configuration: Configuration) -> int:
        return self.left.evaluate(configuration) | self.right.evaluate(configuration)

    def __repr__(self) -> str:
        return f"OrPredicate({self.left!r}, {self.right!r})"


def counting(state: State, threshold: int) -> CountingPredicate:
    """Shorthand for :class:`CountingPredicate`: the paper's ``(i >= n)``."""
    return CountingPredicate(state, threshold)
