"""Petri nets as finite sets of transitions.

A *P-Petri net* (paper, Section 3) is a finite set ``T`` of ``P``-transitions.
Its reachability relation ``--T*-->`` relates ``alpha`` to ``beta`` whenever
some word of transitions of ``T`` leads from ``alpha`` to ``beta``.  The paper
shows that additive preorders of finite interaction-width are exactly the
Petri-net reachability relations, which is why everything in this library is
ultimately expressed on Petri nets.

This module provides the :class:`PetriNet` container together with the firing
and exploration primitives used by the analysis layer:

* enabledness and successor computation,
* firing of words (:meth:`PetriNet.fire_word`),
* bounded forward exploration of the reachability set
  (:meth:`PetriNet.reachable_set`, :meth:`PetriNet.reachability_graph`),
* witness search for reachability between two configurations,
* restriction ``T|_Q`` (paper, Section 5).
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .configuration import Configuration, State
from .transition import Transition

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..simulation.compiled import CompiledNet
    from ..simulation.vectorized import VectorizedNet

__all__ = ["PetriNet", "ReachabilityGraph", "ExplorationLimitError"]


class ExplorationLimitError(RuntimeError):
    """Raised when an explicit-state exploration exceeds its node budget."""


class ReachabilityGraph:
    """The explicit reachability graph of a Petri net from a set of roots.

    Nodes are configurations; edges are labelled by the transition fired.
    The graph is built by :meth:`PetriNet.reachability_graph` and consumed by
    the stability / component analysis of Sections 5 and 6.
    """

    def __init__(self) -> None:
        self.nodes: Set[Configuration] = set()
        self.edges: Dict[Configuration, List[Tuple[Transition, Configuration]]] = {}
        self.roots: List[Configuration] = []

    def add_node(self, configuration: Configuration) -> bool:
        """Add a node; return True if it was new."""
        if configuration in self.nodes:
            return False
        self.nodes.add(configuration)
        self.edges[configuration] = []
        return True

    def add_edge(
        self, source: Configuration, transition: Transition, target: Configuration
    ) -> None:
        """Record that ``source --transition--> target``."""
        self.add_node(source)
        self.add_node(target)
        self.edges[source].append((transition, target))

    def successors(self, configuration: Configuration) -> List[Tuple[Transition, Configuration]]:
        """Outgoing labelled edges of ``configuration`` (empty if unknown)."""
        return self.edges.get(configuration, [])

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, configuration: Configuration) -> bool:
        return configuration in self.nodes

    def __iter__(self) -> Iterator[Configuration]:
        return iter(self.nodes)


class PetriNet:
    """A finite set of transitions over a common universe of states.

    Parameters
    ----------
    transitions:
        The transitions of the net.  Duplicates (equal pre/post pairs) are
        kept only once.
    states:
        Optional explicit universe of states ``P``.  States mentioned by
        transitions are always included; passing ``states`` lets callers add
        isolated states that no transition touches (the paper's bounds depend
        on ``|P|``, so the universe matters).
    name:
        Optional label for pretty-printing.
    """

    def __init__(
        self,
        transitions: Iterable[Transition] = (),
        states: Iterable[State] = (),
        name: Optional[str] = None,
    ) -> None:
        unique: List[Transition] = []
        seen: Set[Transition] = set()
        for transition in transitions:
            if transition not in seen:
                seen.add(transition)
                unique.append(transition)
        self._transitions: Tuple[Transition, ...] = tuple(unique)
        self._transition_set: FrozenSet[Transition] = frozenset(unique)
        universe: Set[State] = set(states)
        for transition in self._transitions:
            universe |= transition.states
        self._states: FrozenSet[State] = frozenset(universe)
        self.name = name
        self._compiled_cache: Dict[FrozenSet[State], "CompiledNet"] = {}
        self._vectorized_cache: Dict[FrozenSet[State], "VectorizedNet"] = {}

    # ------------------------------------------------------------------
    # Basic accessors and measures
    # ------------------------------------------------------------------
    @property
    def transitions(self) -> Tuple[Transition, ...]:
        """The transitions of the net, in insertion order."""
        return self._transitions

    @property
    def states(self) -> FrozenSet[State]:
        """The universe of states ``P``."""
        return self._states

    @property
    def num_states(self) -> int:
        """``|P|``."""
        return len(self._states)

    @property
    def num_transitions(self) -> int:
        """``|T|``."""
        return len(self._transitions)

    @property
    def width(self) -> int:
        """``max_t |t|``: an upper bound on the interaction-width of ``--T*-->``."""
        if not self._transitions:
            return 0
        return max(transition.width for transition in self._transitions)

    @property
    def max_value(self) -> int:
        """``||T||_inf``: the largest multiplicity in any pre/post configuration."""
        if not self._transitions:
            return 0
        return max(transition.max_value for transition in self._transitions)

    def is_conservative(self) -> bool:
        """True if every transition preserves the number of agents."""
        return all(transition.is_conservative() for transition in self._transitions)

    def __len__(self) -> int:
        return len(self._transitions)

    def __iter__(self) -> Iterator[Transition]:
        return iter(self._transitions)

    def __contains__(self, transition: Transition) -> bool:
        return transition in self._transition_set

    def __repr__(self) -> str:
        label = self.name or "PetriNet"
        return f"{label}(|P|={self.num_states}, |T|={self.num_transitions}, width={self.width})"

    def __getstate__(self) -> Dict[str, object]:
        """Drop the compiled/vectorized-net caches: the compiled cache holds
        ``exec``-generated stepper functions that cannot be pickled, and the
        vectorized cache is dropped alongside it for symmetry (its plan
        arrays would pickle, but rebuilding them is cheap).  Unpickled nets
        (e.g. in batch worker processes) recompile on first simulation and
        re-cache locally."""
        state = self.__dict__.copy()
        state["_compiled_cache"] = {}
        state["_vectorized_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compiled(self, extra_states: Iterable[State] = ()) -> "CompiledNet":
        """The dense array-backed representation of this net (see
        :mod:`repro.simulation.compiled`).

        ``extra_states`` enlarges the state universe beyond :attr:`states`
        (protocols may carry isolated states the net never touches).  The
        result is cached per distinct universe, so repeated simulations of the
        same net share one compiled representation.
        """
        key = frozenset(extra_states) - self._states
        cached = self._compiled_cache.get(key)
        if cached is None:
            from ..simulation.compiled import CompiledNet

            cached = CompiledNet(self, extra_states=key)
            self._compiled_cache[key] = cached
        return cached

    def vectorized(self, extra_states: Iterable[State] = ()) -> "VectorizedNet":
        """The NumPy-backed dense representation of this net (see
        :mod:`repro.simulation.vectorized`).

        Mirrors :meth:`compiled`: the result is cached per distinct state
        universe, so repeated simulations (and repeated ensembles on one
        :class:`~repro.simulation.batch.BatchRunner`) share one set of kernel
        structures.  Raises :class:`ImportError` when NumPy is missing.
        """
        key = frozenset(extra_states) - self._states
        cached = self._vectorized_cache.get(key)
        if cached is None:
            from ..simulation.vectorized import VectorizedNet

            cached = VectorizedNet(self, extra_states=key)
            self._vectorized_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def restrict(self, states: Iterable[State]) -> "PetriNet":
        """``T|_Q``: project every transition on the states of ``Q``."""
        wanted = set(states)
        restricted = [transition.restrict(wanted) for transition in self._transitions]
        name = None if self.name is None else f"{self.name}|Q"
        return PetriNet(restricted, states=wanted & set(self._states), name=name)

    def with_transitions(self, extra: Iterable[Transition]) -> "PetriNet":
        """Return a new net with ``extra`` transitions appended."""
        return PetriNet(
            list(self._transitions) + list(extra), states=self._states, name=self.name
        )

    def reverse(self) -> "PetriNet":
        """The net in which every transition is reversed (used by backward analyses)."""
        name = None if self.name is None else f"~{self.name}"
        return PetriNet(
            [transition.reverse() for transition in self._transitions],
            states=self._states,
            name=name,
        )

    # ------------------------------------------------------------------
    # Firing semantics
    # ------------------------------------------------------------------
    def enabled_transitions(self, configuration: Configuration) -> List[Transition]:
        """All transitions enabled in ``configuration``."""
        return [t for t in self._transitions if t.is_enabled(configuration)]

    def successors(self, configuration: Configuration) -> List[Tuple[Transition, Configuration]]:
        """All one-step successors of ``configuration`` with the transition fired."""
        result: List[Tuple[Transition, Configuration]] = []
        for transition in self._transitions:
            target = transition.fire_if_enabled(configuration)
            if target is not None:
                result.append((transition, target))
        return result

    def successor_set(self, configuration: Configuration) -> Set[Configuration]:
        """The set of one-step successors of ``configuration``."""
        return {target for _, target in self.successors(configuration)}

    def fire_word(
        self, configuration: Configuration, word: Sequence[Transition]
    ) -> Configuration:
        """Fire a word of transitions; raises ValueError if any step is disabled."""
        current = configuration
        for transition in word:
            current = transition.fire(current)
        return current

    def can_fire_word(self, configuration: Configuration, word: Sequence[Transition]) -> bool:
        """Return True if the whole word is firable from ``configuration``."""
        current = configuration
        for transition in word:
            next_configuration = transition.fire_if_enabled(current)
            if next_configuration is None:
                return False
            current = next_configuration
        return True

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------
    def reachable_set(
        self,
        roots: Iterable[Configuration],
        max_nodes: Optional[int] = None,
        prune: Optional[Callable[[Configuration], bool]] = None,
    ) -> Set[Configuration]:
        """Forward-explore the configurations reachable from ``roots``.

        Parameters
        ----------
        roots:
            Initial configurations.
        max_nodes:
            Abort with :class:`ExplorationLimitError` if more than this many
            distinct configurations are discovered.  ``None`` means no limit —
            only safe for conservative nets (finite reachability sets).
        prune:
            Optional predicate; configurations for which it returns True are
            kept in the result but not expanded further.
        """
        graph = self.reachability_graph(roots, max_nodes=max_nodes, prune=prune)
        return set(graph.nodes)

    def reachability_graph(
        self,
        roots: Iterable[Configuration],
        max_nodes: Optional[int] = None,
        prune: Optional[Callable[[Configuration], bool]] = None,
    ) -> ReachabilityGraph:
        """Build the explicit reachability graph from ``roots`` (breadth-first)."""
        graph = ReachabilityGraph()
        frontier: deque = deque()
        for root in roots:
            if graph.add_node(root):
                graph.roots.append(root)
                frontier.append(root)
        while frontier:
            current = frontier.popleft()
            if prune is not None and prune(current):
                continue
            for transition, target in self.successors(current):
                is_new = target not in graph.nodes
                graph.add_edge(current, transition, target)
                if is_new:
                    if max_nodes is not None and len(graph) > max_nodes:
                        raise ExplorationLimitError(
                            f"exploration exceeded {max_nodes} configurations"
                        )
                    frontier.append(target)
        return graph

    def is_reachable(
        self,
        source: Configuration,
        target: Configuration,
        max_nodes: Optional[int] = None,
    ) -> bool:
        """Decide ``source --T*--> target`` by explicit forward exploration.

        Only terminates in general for conservative nets or when ``max_nodes``
        is given; in the latter case a negative answer within the budget is
        still sound for conservative nets but may be incomplete otherwise.
        """
        witness = self.find_path(source, target, max_nodes=max_nodes)
        return witness is not None

    def find_path(
        self,
        source: Configuration,
        target: Configuration,
        max_nodes: Optional[int] = None,
    ) -> Optional[List[Transition]]:
        """Return a shortest witness word ``sigma`` with ``source --sigma--> target``.

        Returns ``None`` if the target is not found within the exploration
        budget.
        """
        if source == target:
            return []
        parents: Dict[Configuration, Tuple[Configuration, Transition]] = {}
        visited: Set[Configuration] = {source}
        frontier: deque = deque([source])
        while frontier:
            current = frontier.popleft()
            for transition, successor in self.successors(current):
                if successor in visited:
                    continue
                visited.add(successor)
                parents[successor] = (current, transition)
                if successor == target:
                    return _rebuild_path(parents, source, target)
                if max_nodes is not None and len(visited) > max_nodes:
                    return None
                frontier.append(successor)
        return None

    def find_covering_path(
        self,
        source: Configuration,
        target: Configuration,
        max_nodes: Optional[int] = None,
    ) -> Optional[List[Transition]]:
        """Return a word reaching some ``beta >= target`` from ``source`` (coverability witness)."""
        if source.covers(target):
            return []
        parents: Dict[Configuration, Tuple[Configuration, Transition]] = {}
        visited: Set[Configuration] = {source}
        frontier: deque = deque([source])
        while frontier:
            current = frontier.popleft()
            for transition, successor in self.successors(current):
                if successor in visited:
                    continue
                visited.add(successor)
                parents[successor] = (current, transition)
                if successor.covers(target):
                    return _rebuild_path(parents, source, successor)
                if max_nodes is not None and len(visited) > max_nodes:
                    return None
                frontier.append(successor)
        return None

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable description of the net."""
        lines = [repr(self)]
        for transition in self._transitions:
            label = transition.name or ""
            lines.append(f"  {transition.pre.pretty()} -> {transition.post.pretty()}  {label}".rstrip())
        return "\n".join(lines)


def _rebuild_path(
    parents: Dict[Configuration, Tuple[Configuration, Transition]],
    source: Configuration,
    target: Configuration,
) -> List[Transition]:
    path: List[Transition] = []
    current = target
    while current != source:
        previous, transition = parents[current]
        path.append(transition)
        current = previous
    path.reverse()
    return path
