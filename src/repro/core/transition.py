"""Transitions of Petri nets and population protocols.

A *P-transition* (paper, Section 3) is a pair ``t = (alpha_t, beta_t)`` of
``P``-configurations.  Firing ``t`` in a configuration that contains
``alpha_t`` removes ``alpha_t`` and adds ``beta_t``:

    ``alpha --t--> beta``   iff   ``alpha = alpha_t + rho`` and
                                  ``beta  = beta_t  + rho`` for some ``rho``.

The *interaction-width* ``|t|`` is ``max(|alpha_t|, |beta_t|)`` — the number
of agents that must meet in a single interaction step.  Classical population
protocols have width 2 (pairwise interactions); the paper's parameterized
bounds are expressed in terms of this width.

The *displacement* ``Delta(t)`` (Section 7) is the integer vector
``beta_t - alpha_t``, used throughout the control-state and cycle analysis.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from .configuration import Configuration, State

__all__ = ["Transition", "pairwise", "displacement_of_word", "word_width"]

ConfigurationLike = Union[Configuration, Mapping[State, int]]


def _as_configuration(value: ConfigurationLike) -> Configuration:
    if isinstance(value, Configuration):
        return value
    return Configuration(value)


class Transition:
    """A Petri-net transition ``t = (pre, post)`` over configurations.

    Parameters
    ----------
    pre:
        The configuration ``alpha_t`` consumed by the transition.
    post:
        The configuration ``beta_t`` produced by the transition.
    name:
        Optional label used in traces and pretty-printing.
    """

    __slots__ = ("pre", "post", "name", "_hash")

    def __init__(
        self,
        pre: ConfigurationLike,
        post: ConfigurationLike,
        name: Optional[str] = None,
    ) -> None:
        self.pre = _as_configuration(pre)
        self.post = _as_configuration(post)
        self.name = name
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Measures used by the paper
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """``|t|``: the interaction-width ``max(|pre|, |post|)``."""
        return max(self.pre.size, self.post.size)

    @property
    def max_value(self) -> int:
        """``||t||_inf``: the largest single-state multiplicity in pre or post."""
        return max(self.pre.max_value, self.post.max_value)

    @property
    def states(self) -> frozenset:
        """All states mentioned by the transition."""
        return self.pre.support | self.post.support

    def is_conservative(self) -> bool:
        """True if the transition preserves the number of agents (``|pre| == |post|``)."""
        return self.pre.size == self.post.size

    def displacement(self) -> Dict[State, int]:
        """``Delta(t)``: the integer vector ``post - pre`` as a plain dict.

        Zero entries are omitted, mirroring the sparse convention of
        :class:`~repro.core.configuration.Configuration`.
        """
        delta: Dict[State, int] = {}
        for state in self.states:
            diff = self.post[state] - self.pre[state]
            if diff != 0:
                delta[state] = diff
        return delta

    # ------------------------------------------------------------------
    # Firing semantics
    # ------------------------------------------------------------------
    def is_enabled(self, configuration: Configuration) -> bool:
        """Return True if the transition can fire from ``configuration``."""
        return self.pre <= configuration

    def fire(self, configuration: Configuration) -> Configuration:
        """Fire the transition from ``configuration``.

        Raises
        ------
        ValueError
            If the transition is not enabled.
        """
        if not self.is_enabled(configuration):
            raise ValueError(
                f"transition {self} is not enabled in {configuration.pretty()}"
            )
        return (configuration - self.pre) + self.post

    def fire_if_enabled(self, configuration: Configuration) -> Optional[Configuration]:
        """Fire the transition if enabled, otherwise return None."""
        if not self.is_enabled(configuration):
            return None
        return (configuration - self.pre) + self.post

    def reverse(self) -> "Transition":
        """The reverse transition ``(post, pre)``."""
        name = None if self.name is None else f"~{self.name}"
        return Transition(self.post, self.pre, name=name)

    # ------------------------------------------------------------------
    # Restriction (paper: ``t|_Q``)
    # ------------------------------------------------------------------
    def restrict(self, states: Iterable[State]) -> "Transition":
        """``t|_Q``: the transition obtained by projecting pre and post on ``Q``."""
        wanted = set(states)
        name = None if self.name is None else f"{self.name}|Q"
        return Transition(self.pre.restrict(wanted), self.post.restrict(wanted), name=name)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def as_pair(self) -> Tuple[Configuration, Configuration]:
        """Return the underlying pair ``(pre, post)``."""
        return (self.pre, self.post)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transition):
            return NotImplemented
        return self.pre == other.pre and self.post == other.post

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self.pre, self.post))
        return self._hash

    def __repr__(self) -> str:
        label = f" [{self.name}]" if self.name else ""
        return f"Transition({self.pre.pretty()} -> {self.post.pretty()}{label})"


def pairwise(
    lhs: Tuple[State, State],
    rhs: Tuple[State, State],
    name: Optional[str] = None,
) -> Transition:
    """Build the classical width-2 population-protocol transition ``(a, b) -> (c, d)``.

    This is the usual notation for interaction rules of population protocols:
    two agents in states ``a`` and ``b`` meet and move to states ``c`` and ``d``.
    """
    a, b = lhs
    c, d = rhs
    pre = Configuration.unit(a) + Configuration.unit(b)
    post = Configuration.unit(c) + Configuration.unit(d)
    return Transition(pre, post, name=name)


def displacement_of_word(word: Iterable[Transition]) -> Dict[State, int]:
    """``Delta(sigma)``: the summed displacement of a word of transitions."""
    total: Dict[State, int] = {}
    for transition in word:
        for state, diff in transition.displacement().items():
            new = total.get(state, 0) + diff
            if new == 0:
                total.pop(state, None)
            else:
                total[state] = new
    return total


def word_width(word: Iterable[Transition]) -> int:
    """The largest interaction-width occurring in a word of transitions."""
    width = 0
    for transition in word:
        if transition.width > width:
            width = transition.width
    return width
