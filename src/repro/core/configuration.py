"""Configurations of population protocols and Petri nets.

A *configuration* over a finite set of states ``P`` is a mapping ``P -> N``
(paper, Section 2).  It records how many agents (or tokens) occupy each state.
Configurations are the fundamental data structure of this library: Petri net
markings, protocol populations, displacements-restricted-to-nonnegatives and
leader configurations are all configurations.

The implementation is a sparse, immutable, hashable multiset.  States may be
any hashable value (strings in practice).  Zero entries are never stored, so
two configurations that agree on their supports compare and hash equal even if
they were built over different universes of states.

Notation mapping to the paper:

===========================  =====================================
Paper                        This module
===========================  =====================================
``|rho|``                    :meth:`Configuration.size`
``||rho||_inf``              :meth:`Configuration.max_value`
``rho|_Q``                   :meth:`Configuration.restrict`
``p`` (unit configuration)   :func:`unit`
``alpha + beta``             ``alpha + beta``
``n . rho``                  ``n * rho`` / ``rho * n``
``alpha <= beta``            ``alpha <= beta`` (component-wise order)
===========================  =====================================
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

State = Hashable

__all__ = [
    "State",
    "Configuration",
    "unit",
    "zero",
    "from_counts",
    "from_sequence",
]


class Configuration:
    """An immutable multiset of states: a mapping ``P -> N``.

    Only strictly positive counts are stored.  Instances are hashable and can
    be used as keys of dictionaries and members of sets, which the
    reachability-exploration code relies on heavily.

    Parameters
    ----------
    counts:
        A mapping from states to non-negative integers.  Zero entries are
        dropped; negative entries raise :class:`ValueError`.
    """

    __slots__ = ("_counts", "_hash", "_size")

    def __init__(self, counts: Optional[Mapping[State, int]] = None) -> None:
        clean: Dict[State, int] = {}
        if counts:
            for state, count in counts.items():
                if count < 0:
                    raise ValueError(
                        f"configuration counts must be non-negative, got {state!r}: {count}"
                    )
                if count > 0:
                    clean[state] = int(count)
        self._counts: Dict[State, int] = clean
        self._hash: Optional[int] = None
        self._size: int = sum(clean.values())

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _from_clean(counts: Dict[State, int], size: int) -> "Configuration":
        """Wrap an already-validated counts dict without copying it.

        Internal fast path for bulk result conversion (the dense engines
        decode thousands of final configurations per ensemble): ``counts``
        must contain strictly positive ``int`` values only and ``size`` must
        be their sum; the caller hands over ownership of the dict.
        """
        configuration = Configuration.__new__(Configuration)
        configuration._counts = counts
        configuration._hash = None
        configuration._size = size
        return configuration

    @staticmethod
    def zero() -> "Configuration":
        """The empty configuration (no agents)."""
        return _ZERO

    @staticmethod
    def unit(state: State) -> "Configuration":
        """The configuration mapping ``state`` to 1 and every other state to 0."""
        return Configuration({state: 1})

    @staticmethod
    def from_sequence(states: Iterable[State]) -> "Configuration":
        """Build a configuration by counting occurrences in ``states``."""
        counts: Dict[State, int] = {}
        for state in states:
            counts[state] = counts.get(state, 0) + 1
        return Configuration(counts)

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, state: State) -> int:
        return self._counts.get(state, 0)

    def get(self, state: State, default: int = 0) -> int:
        """Return the count of ``state`` (``default`` if absent)."""
        return self._counts.get(state, default)

    def __contains__(self, state: State) -> bool:
        return state in self._counts

    def __iter__(self) -> Iterator[State]:
        return iter(self._counts)

    def __len__(self) -> int:
        """Number of distinct states with a positive count (the support size)."""
        return len(self._counts)

    def items(self) -> Iterable[Tuple[State, int]]:
        """Iterate over ``(state, count)`` pairs with positive counts."""
        return self._counts.items()

    def keys(self) -> Iterable[State]:
        """Iterate over states with positive counts (the support)."""
        return self._counts.keys()

    def values(self) -> Iterable[int]:
        """Iterate over the positive counts."""
        return self._counts.values()

    @property
    def support(self) -> frozenset:
        """The set of states with a strictly positive count."""
        return frozenset(self._counts)

    def to_dict(self) -> Dict[State, int]:
        """Return a fresh plain ``dict`` copy of the positive counts."""
        return dict(self._counts)

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """``|rho|``: the total number of agents, i.e. the sum of all counts."""
        return self._size

    @property
    def max_value(self) -> int:
        """``||rho||_inf``: the largest count (0 for the zero configuration)."""
        if not self._counts:
            return 0
        return max(self._counts.values())

    def is_zero(self) -> bool:
        """Return True if this is the zero configuration."""
        return not self._counts

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "Configuration") -> "Configuration":
        if not isinstance(other, Configuration):
            return NotImplemented
        counts = dict(self._counts)
        for state, count in other._counts.items():
            counts[state] = counts.get(state, 0) + count
        return Configuration(counts)

    def __sub__(self, other: "Configuration") -> "Configuration":
        """Component-wise difference; raises if the result would be negative."""
        if not isinstance(other, Configuration):
            return NotImplemented
        counts = dict(self._counts)
        for state, count in other._counts.items():
            new = counts.get(state, 0) - count
            if new < 0:
                raise ValueError(
                    f"cannot subtract: state {state!r} would become negative ({new})"
                )
            if new == 0:
                counts.pop(state, None)
            else:
                counts[state] = new
        return Configuration(counts)

    def saturating_sub(self, other: "Configuration") -> "Configuration":
        """Component-wise difference truncated at zero (never raises)."""
        counts = {}
        for state, count in self._counts.items():
            new = count - other[state]
            if new > 0:
                counts[state] = new
        return Configuration(counts)

    def __mul__(self, scalar: int) -> "Configuration":
        if not isinstance(scalar, int):
            return NotImplemented
        if scalar < 0:
            raise ValueError("cannot multiply a configuration by a negative scalar")
        if scalar == 0:
            return _ZERO
        return Configuration({state: count * scalar for state, count in self._counts.items()})

    def __rmul__(self, scalar: int) -> "Configuration":
        return self.__mul__(scalar)

    # ------------------------------------------------------------------
    # Order
    # ------------------------------------------------------------------
    def __le__(self, other: "Configuration") -> bool:
        """Component-wise order: ``alpha <= beta`` iff ``beta = alpha + rho`` for some rho."""
        if not isinstance(other, Configuration):
            return NotImplemented
        return all(count <= other[state] for state, count in self._counts.items())

    def __lt__(self, other: "Configuration") -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self <= other and self != other

    def __ge__(self, other: "Configuration") -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return other <= self

    def __gt__(self, other: "Configuration") -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return other < self

    def covers(self, other: "Configuration") -> bool:
        """Return True if ``self >= other`` component-wise (coverability order)."""
        return other <= self

    # ------------------------------------------------------------------
    # Restriction (paper: ``rho|_Q``)
    # ------------------------------------------------------------------
    def restrict(self, states: Iterable[State]) -> "Configuration":
        """``rho|_Q``: keep only the counts of states in ``states``.

        Per the paper, ``Q`` need not be a subset of the support; missing
        states simply contribute zero.
        """
        wanted = set(states)
        return Configuration(
            {state: count for state, count in self._counts.items() if state in wanted}
        )

    def erase(self, states: Iterable[State]) -> "Configuration":
        """Drop the counts of every state in ``states`` (complement of restrict)."""
        unwanted = set(states)
        return Configuration(
            {state: count for state, count in self._counts.items() if state not in unwanted}
        )

    def agrees_on(self, other: "Configuration", states: Iterable[State]) -> bool:
        """Return True if ``self`` and ``other`` have the same counts on ``states``."""
        return all(self[state] == other[state] for state in states)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def set(self, state: State, count: int) -> "Configuration":
        """Return a copy with the count of ``state`` replaced by ``count``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        counts = dict(self._counts)
        if count == 0:
            counts.pop(state, None)
        else:
            counts[state] = count
        return Configuration(counts)

    def add(self, state: State, count: int = 1) -> "Configuration":
        """Return a copy with ``count`` more agents in ``state``."""
        return self.set(state, self[state] + count)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self._counts == other._counts

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._counts.items()))
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __repr__(self) -> str:
        if not self._counts:
            return "Configuration({})"
        try:
            entries = sorted(self._counts.items(), key=lambda item: str(item[0]))
        except TypeError:
            entries = list(self._counts.items())
        inner = ", ".join(f"{state!r}: {count}" for state, count in entries)
        return f"Configuration({{{inner}}})"

    def pretty(self) -> str:
        """Human-readable rendering such as ``2.i + 3.p`` (paper notation)."""
        if not self._counts:
            return "0"
        try:
            entries = sorted(self._counts.items(), key=lambda item: str(item[0]))
        except TypeError:
            entries = list(self._counts.items())
        parts = []
        for state, count in entries:
            if count == 1:
                parts.append(f"{state}")
            else:
                parts.append(f"{count}.{state}")
        return " + ".join(parts)


_ZERO = Configuration({})


def unit(state: State) -> Configuration:
    """The configuration with a single agent in ``state`` (paper: ``p``)."""
    return Configuration.unit(state)


def zero() -> Configuration:
    """The zero configuration."""
    return _ZERO


def from_counts(**counts: int) -> Configuration:
    """Convenience constructor from keyword arguments: ``from_counts(i=3, p=1)``."""
    return Configuration(counts)


def from_sequence(states: Iterable[State]) -> Configuration:
    """Build a configuration by counting occurrences in an iterable of states."""
    return Configuration.from_sequence(states)
