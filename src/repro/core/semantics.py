"""Output-stable configurations and stable computation (paper, Section 2).

For a protocol with output function ``gamma``, the paper defines the sets of
*output-stable* configurations:

* ``S_0`` — configurations from which every reachable configuration has
  ``gamma(beta) subseteq {0}`` (the zero configuration counts as output 0),
* ``S_1`` — configurations from which every reachable configuration has
  ``gamma(beta) == {1}`` (so in particular the zero configuration is never
  1-output stable).

A protocol *stably computes* a predicate ``phi`` if for every input ``rho`` and
every configuration ``alpha`` reachable from the initial configuration
``rho_L + rho|_P``, some configuration of ``S_{phi(rho)}`` is reachable from
``alpha``.

This module computes these notions **exactly** on the finite reachability
graphs produced by :meth:`repro.core.petrinet.PetriNet.reachability_graph`
(conservative protocols, or bounded exploration for non-conservative ones),
which is the workhorse of the verification layer
(:mod:`repro.analysis.verification`).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from .configuration import Configuration
from .petrinet import PetriNet, ReachabilityGraph
from .protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol

__all__ = [
    "forward_closure",
    "is_output_stable",
    "output_stable_nodes",
    "always_eventually_stable",
    "stable_consensus_value",
]


def forward_closure(
    net: PetriNet,
    roots: Iterable[Configuration],
    max_nodes: Optional[int] = None,
) -> ReachabilityGraph:
    """The reachability graph of ``net`` from ``roots`` (a thin convenience wrapper)."""
    return net.reachability_graph(roots, max_nodes=max_nodes)


def is_output_stable(
    protocol: Protocol,
    configuration: Configuration,
    value: int,
    max_nodes: Optional[int] = None,
) -> bool:
    """Decide whether ``configuration`` belongs to ``S_value``.

    The protocol's preorder must be a Petri-net reachability relation (the
    forward closure is explored explicitly).  For conservative protocols the
    exploration always terminates; otherwise pass ``max_nodes``.
    """
    net = protocol.petri_net
    if net is None:
        raise ValueError("output stability requires a Petri-net based protocol")
    graph = net.reachability_graph([configuration], max_nodes=max_nodes)
    return all(protocol.has_consensus(node, value) for node in graph.nodes)


def output_stable_nodes(
    graph: ReachabilityGraph, protocol: Protocol, value: int
) -> Set[Configuration]:
    """The nodes of a forward-closed graph that are ``value``-output stable.

    ``graph`` must be forward-closed (every successor of a node is a node),
    which holds for graphs returned by
    :meth:`~repro.core.petrinet.PetriNet.reachability_graph` without pruning.

    A node is ``value``-output stable iff every node reachable from it (within
    the graph) has consensus ``value``.  This is computed by a reverse
    propagation of "bad" nodes: a node is *not* stable iff it reaches a node
    without consensus ``value``.
    """
    bad_seeds = {node for node in graph.nodes if not protocol.has_consensus(node, value)}
    unstable = _backward_reachable(graph, bad_seeds)
    return set(graph.nodes) - unstable


def _backward_reachable(
    graph: ReachabilityGraph, targets: Set[Configuration]
) -> Set[Configuration]:
    """All graph nodes that can reach a node of ``targets`` (including ``targets``)."""
    predecessors: Dict[Configuration, List[Configuration]] = {node: [] for node in graph.nodes}
    for source in graph.nodes:
        for _, target in graph.successors(source):
            predecessors[target].append(source)
    reached = set(targets)
    frontier = deque(targets)
    while frontier:
        current = frontier.popleft()
        for predecessor in predecessors.get(current, ()):
            if predecessor not in reached:
                reached.add(predecessor)
                frontier.append(predecessor)
    return reached


def always_eventually_stable(
    graph: ReachabilityGraph,
    protocol: Protocol,
    root: Configuration,
    value: int,
) -> bool:
    """Check the stable-computation condition from ``root`` for output ``value``.

    Returns True iff **every** node reachable from ``root`` (within the
    forward-closed ``graph``) can still reach a ``value``-output-stable node.
    This is exactly the paper's requirement for input configurations whose
    predicate value is ``value``.
    """
    stable = output_stable_nodes(graph, protocol, value)
    can_reach_stable = _backward_reachable(graph, stable)
    reachable_from_root = _forward_reachable(graph, root)
    return reachable_from_root <= can_reach_stable


def _forward_reachable(graph: ReachabilityGraph, root: Configuration) -> Set[Configuration]:
    """All graph nodes reachable from ``root`` within the graph."""
    if root not in graph.nodes:
        return set()
    reached = {root}
    frontier = deque([root])
    while frontier:
        current = frontier.popleft()
        for _, target in graph.successors(current):
            if target not in reached:
                reached.add(target)
                frontier.append(target)
    return reached


def stable_consensus_value(
    protocol: Protocol,
    inputs: Configuration,
    max_nodes: Optional[int] = None,
) -> Optional[int]:
    """The value stably computed by the protocol on a given input, if any.

    Explores the reachability graph from ``rho_L + inputs|_P`` and returns

    * 0 if the stable-computation condition holds for output 0,
    * 1 if it holds for output 1,
    * None if it holds for neither (the protocol is not well-specified on this
      input) — note it cannot hold for both on the same input because a
      configuration cannot be simultaneously 0- and 1-output stable unless the
      graph is empty.
    """
    net = protocol.petri_net
    if net is None:
        raise ValueError("stable_consensus_value requires a Petri-net based protocol")
    root = protocol.initial_configuration(inputs)
    graph = net.reachability_graph([root], max_nodes=max_nodes)
    for value in (OUTPUT_ONE, OUTPUT_ZERO):
        if always_eventually_stable(graph, protocol, root, value):
            return value
    return None
