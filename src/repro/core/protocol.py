"""Population protocols with leaders (paper, Section 2).

A *protocol* is a tuple ``(P, -->*, rho_L, I, gamma)`` where

* ``P`` is a finite set of states,
* ``-->*`` is an additive preorder on ``P``-configurations,
* ``rho_L`` is a configuration called the *configuration of leaders*,
* ``I subseteq P`` is the set of initial states,
* ``gamma : P -> {0, *, 1}`` is the output function.

The *initial configurations* are ``rho_L + rho|_P`` for ``rho in N^I``.  A
protocol *stably computes* a predicate ``phi`` if from every configuration
reachable from an initial configuration ``rho_L + rho|_P``, a
``phi(rho)``-output-stable configuration remains reachable (see
:mod:`repro.core.semantics` for output-stable sets).

This module defines the :class:`Protocol` dataclass-like container together
with the output alphabet.  The concrete preorder is usually a
:class:`~repro.core.preorder.PetriNetPreorder`; the convenience constructor
:meth:`Protocol.from_petri_net` builds a protocol directly from a Petri net.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Union

from .configuration import Configuration, State
from .petrinet import PetriNet
from .preorder import AdditivePreorder, PetriNetPreorder

__all__ = [
    "OUTPUT_ZERO",
    "OUTPUT_ONE",
    "OUTPUT_UNDEFINED",
    "Output",
    "Protocol",
]

# Output alphabet {0, *, 1} of the paper.
OUTPUT_ZERO = 0
OUTPUT_ONE = 1
OUTPUT_UNDEFINED = "*"

Output = Union[int, str]

_VALID_OUTPUTS = {OUTPUT_ZERO, OUTPUT_ONE, OUTPUT_UNDEFINED}


class Protocol:
    """A population protocol with leaders ``(P, -->*, rho_L, I, gamma)``.

    Parameters
    ----------
    states:
        The finite set ``P``.
    preorder:
        The additive preorder ``-->*`` (usually a Petri-net reachability
        relation).
    leaders:
        The leader configuration ``rho_L``; its support must be included in
        ``P``.
    initial_states:
        The set ``I`` of initial states.  Per the paper ``I`` need not be a
        subset of ``P`` as a type, but initial agents are injected via
        ``rho|_P`` so only states of ``P`` matter.
    output:
        The output function ``gamma`` as a mapping ``P -> {0, '*', 1}``.
    name:
        Optional label for reporting.
    """

    def __init__(
        self,
        states: Iterable[State],
        preorder: AdditivePreorder,
        leaders: Configuration,
        initial_states: Iterable[State],
        output: Mapping[State, Output],
        name: Optional[str] = None,
    ) -> None:
        self.states: FrozenSet[State] = frozenset(states)
        if not self.states:
            raise ValueError("a protocol needs at least one state")
        self.preorder = preorder
        self.leaders = leaders
        self.initial_states: FrozenSet[State] = frozenset(initial_states)
        self.output: Dict[State, Output] = dict(output)
        self.name = name

        unknown_leaders = set(leaders.support) - set(self.states)
        if unknown_leaders:
            raise ValueError(f"leader states not in P: {sorted(map(str, unknown_leaders))}")
        missing_outputs = set(self.states) - set(self.output)
        if missing_outputs:
            raise ValueError(
                f"output function is missing states: {sorted(map(str, missing_outputs))}"
            )
        bad_outputs = {
            state: value for state, value in self.output.items() if value not in _VALID_OUTPUTS
        }
        if bad_outputs:
            raise ValueError(f"invalid output values: {bad_outputs}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_petri_net(
        cls,
        net: PetriNet,
        leaders: Configuration,
        initial_states: Iterable[State],
        output: Mapping[State, Output],
        name: Optional[str] = None,
        extra_states: Iterable[State] = (),
    ) -> "Protocol":
        """Build a protocol whose preorder is the reachability relation of ``net``."""
        states = set(net.states) | set(extra_states) | set(leaders.support) | set(output)
        return cls(
            states=states,
            preorder=PetriNetPreorder(net),
            leaders=leaders,
            initial_states=initial_states,
            output=output,
            name=name,
        )

    # ------------------------------------------------------------------
    # Measures used by the bounds (Theorem 4.3)
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """``|P|``: the number of states of the protocol."""
        return len(self.states)

    @property
    def num_leaders(self) -> int:
        """``|rho_L|``: the number of leader agents."""
        return self.leaders.size

    @property
    def width(self) -> Optional[int]:
        """The interaction-width of the protocol's preorder (None = unbounded)."""
        return self.preorder.width

    def is_leaderless(self) -> bool:
        """True if the protocol has no leaders."""
        return self.leaders.is_zero()

    @property
    def petri_net(self) -> Optional[PetriNet]:
        """The underlying Petri net when the preorder is a Petri-net reachability relation."""
        if isinstance(self.preorder, PetriNetPreorder):
            return self.preorder.net
        return None

    # ------------------------------------------------------------------
    # Output function extended to configurations (paper, Section 2)
    # ------------------------------------------------------------------
    @property
    def output_table(self) -> Mapping[State, Output]:
        """A read-only view of the output function ``gamma``.

        Consumers that precompile the protocol (the simulation engine) read
        the whole table once through this accessor instead of poking at the
        internal dictionary.
        """
        return MappingProxyType(self.output)

    def configuration_output(self, configuration: Configuration) -> Set[Output]:
        """``gamma(rho)``: the set of outputs of states populated in ``rho``."""
        return {self.output[state] for state in configuration.support if state in self.output}

    def has_consensus(self, configuration: Configuration, value: int) -> bool:
        """True if every populated state outputs ``value``.

        The zero configuration has consensus 0 by the paper's convention for
        0-output stable configurations, and never has consensus 1.
        """
        outputs = self.configuration_output(configuration)
        if value == OUTPUT_ONE:
            return outputs == {OUTPUT_ONE}
        if value == OUTPUT_ZERO:
            return outputs <= {OUTPUT_ZERO}
        raise ValueError("consensus value must be 0 or 1")

    # ------------------------------------------------------------------
    # Initial configurations
    # ------------------------------------------------------------------
    def initial_configuration(self, inputs: Union[Configuration, Mapping[State, int]]) -> Configuration:
        """``rho_L + rho|_P`` for an input ``rho in N^I``.

        The input may mention states outside ``P``; per the paper those are
        dropped by the restriction to ``P``.
        """
        if not isinstance(inputs, Configuration):
            inputs = Configuration(inputs)
        unknown = set(inputs.support) - set(self.initial_states)
        if unknown:
            raise ValueError(
                f"input configuration uses non-initial states: {sorted(map(str, unknown))}"
            )
        return self.leaders + inputs.restrict(self.states)

    def counting_input(self, count: int) -> Configuration:
        """Convenience: the input ``count . i`` when ``I = {i}`` is a singleton."""
        if len(self.initial_states) != 1:
            raise ValueError("counting_input requires a single initial state")
        (state,) = tuple(self.initial_states)
        return Configuration({state: count})

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A multi-line description of the protocol (states, outputs, leaders)."""
        width = self.width
        width_text = "omega" if width is None else str(width)
        lines = [
            f"Protocol {self.name or '<anonymous>'}:",
            f"  states ({self.num_states}): {sorted(map(str, self.states))}",
            f"  initial states: {sorted(map(str, self.initial_states))}",
            f"  leaders ({self.num_leaders}): {self.leaders.pretty()}",
            f"  interaction-width: {width_text}",
            "  outputs:",
        ]
        for state in sorted(self.states, key=str):
            lines.append(f"    gamma({state}) = {self.output[state]}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        label = self.name or "Protocol"
        return (
            f"{label}(|P|={self.num_states}, leaders={self.num_leaders}, "
            f"width={self.width})"
        )
