"""Additive preorders and their relation to Petri nets (paper, Section 3).

A binary relation ``R`` on ``P``-configurations is

* *additive*  if ``(alpha, beta) in R`` implies ``(alpha + rho, beta + rho) in R``,
* a *preorder* if it is reflexive and transitive,
* *conservative* if ``|alpha| = |beta|`` whenever ``(alpha, beta) in R``.

The paper defines protocols directly on additive preorders and then observes
(Section 3) that additive preorders of **finite interaction-width** are exactly
the reachability relations of Petri nets.  This module mirrors that picture:

* :class:`AdditivePreorder` is the abstract interface a protocol needs —
  essentially a ``relates(alpha, beta)`` oracle plus a way of enumerating
  successors for exploration,
* :class:`PetriNetPreorder` wraps a :class:`~repro.core.petrinet.PetriNet` and
  exposes its reachability relation as an additive preorder of width
  ``max_t |t|``,
* :class:`RelationPreorder` wraps an arbitrary Python predicate for the
  unbounded-width examples (e.g. Example 4.1 of the paper, whose width is
  exactly the threshold ``n``).
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, List, Optional, Set, Tuple

from .configuration import Configuration
from .petrinet import PetriNet
from .transition import Transition

__all__ = ["AdditivePreorder", "PetriNetPreorder", "RelationPreorder"]


class AdditivePreorder(abc.ABC):
    """Abstract additive preorder ``-->*`` on configurations.

    Concrete subclasses must provide :meth:`successors` (one-step exploration)
    or override :meth:`relates` directly when one-step exploration does not
    make sense (unbounded-width relations).
    """

    @abc.abstractmethod
    def successors(self, configuration: Configuration) -> Iterable[Configuration]:
        """Configurations reachable in "one step" (used for exhaustive exploration)."""

    @abc.abstractmethod
    def relates(self, source: Configuration, target: Configuration) -> bool:
        """Decide whether ``source -->* target``."""

    @property
    @abc.abstractmethod
    def width(self) -> Optional[int]:
        """The interaction-width, or ``None`` when it is not finite (``omega``)."""

    def is_conservative_on(self, samples: Iterable[Tuple[Configuration, Configuration]]) -> bool:
        """Check conservativity on a finite sample of related pairs."""
        return all(source.size == target.size for source, target in samples)

    def reachable_from(
        self, configuration: Configuration, max_nodes: Optional[int] = None
    ) -> Set[Configuration]:
        """Explore the configurations reachable from ``configuration``."""
        visited: Set[Configuration] = {configuration}
        frontier: List[Configuration] = [configuration]
        while frontier:
            current = frontier.pop()
            for successor in self.successors(current):
                if successor not in visited:
                    visited.add(successor)
                    if max_nodes is not None and len(visited) > max_nodes:
                        raise RuntimeError(
                            f"preorder exploration exceeded {max_nodes} configurations"
                        )
                    frontier.append(successor)
        return visited


class PetriNetPreorder(AdditivePreorder):
    """The reachability relation ``--T*-->`` of a Petri net, as an additive preorder."""

    def __init__(self, net: PetriNet, max_nodes: Optional[int] = None) -> None:
        self.net = net
        self.max_nodes = max_nodes

    @property
    def width(self) -> Optional[int]:
        """Width of the relation: the largest interaction-width of a transition."""
        return self.net.width

    def successors(self, configuration: Configuration) -> Iterable[Configuration]:
        return self.net.successor_set(configuration)

    def relates(self, source: Configuration, target: Configuration) -> bool:
        return self.net.is_reachable(source, target, max_nodes=self.max_nodes)

    def witness(self, source: Configuration, target: Configuration) -> Optional[List[Transition]]:
        """A witness word for ``source -->* target`` if one is found."""
        return self.net.find_path(source, target, max_nodes=self.max_nodes)

    def __repr__(self) -> str:
        return f"PetriNetPreorder({self.net!r})"


class RelationPreorder(AdditivePreorder):
    """An additive preorder given directly by a Python decision procedure.

    Used for relations that have no finite interaction-width or whose width is
    a parameter (Example 4.1 of the paper).  The ``successor_fn`` is optional;
    when omitted, :meth:`successors` enumerates nothing and exhaustive
    exploration is not available (``relates`` still is).
    """

    def __init__(
        self,
        relates_fn: Callable[[Configuration, Configuration], bool],
        successor_fn: Optional[Callable[[Configuration], Iterable[Configuration]]] = None,
        width: Optional[int] = None,
        name: Optional[str] = None,
    ) -> None:
        self._relates_fn = relates_fn
        self._successor_fn = successor_fn
        self._width = width
        self.name = name

    @property
    def width(self) -> Optional[int]:
        return self._width

    def successors(self, configuration: Configuration) -> Iterable[Configuration]:
        if self._successor_fn is None:
            return ()
        return self._successor_fn(configuration)

    def relates(self, source: Configuration, target: Configuration) -> bool:
        return self._relates_fn(source, target)

    def __repr__(self) -> str:
        label = self.name or "RelationPreorder"
        width = "omega" if self._width is None else self._width
        return f"{label}(width={width})"


def check_additivity(
    preorder: AdditivePreorder,
    pairs: Iterable[Tuple[Configuration, Configuration]],
    paddings: Iterable[Configuration],
) -> bool:
    """Spot-check additivity: for related pairs, padded pairs must stay related.

    This is a testing utility: additivity cannot be verified exhaustively, but
    the property-based tests use this helper on sampled pairs and paddings.
    """
    for source, target in pairs:
        if not preorder.relates(source, target):
            continue
        for padding in paddings:
            if not preorder.relates(source + padding, target + padding):
                return False
    return True
