"""Integer linear algebra substrate (Section 7 dependencies).

Sparse integer vectors, Pottier's algorithm for minimal solutions of
homogeneous linear Diophantine systems, and the sign-split system used in the
proof of Lemma 7.3 of the paper.
"""

from .diophantine import (
    HomogeneousSystem,
    decompose_solution,
    hilbert_basis,
    pottier_norm_bound,
)
from .linear_systems import SignSystem, SignSystemSolution
from .vectors import IntVector

__all__ = [
    "IntVector",
    "HomogeneousSystem",
    "hilbert_basis",
    "decompose_solution",
    "pottier_norm_bound",
    "SignSystem",
    "SignSystemSolution",
]
