"""The sign-split linear system used in the proof of Lemma 7.3.

Given a multicycle ``Theta`` of a Petri net with control-states, the paper
introduces (equation (1) of Section 7) the homogeneous system over free
variables ``(alpha, beta) in N^P x N^A``:

    for every place ``p``:   ``s(p) * alpha(p) = sum_{a in A} beta(a) * a(p)``

where ``A`` is the set of displacements of simple cycles and ``s`` is the sign
function of ``Delta(Theta)``.  The pair ``(f, g)`` — absolute displacement and
simple-cycle multiplicities of ``Theta`` — is a solution, and Pottier's bound
gives small minimal solutions that are recombined into the small multicycle
``Theta'`` of Lemma 7.3.

:class:`SignSystem` packages this construction: it builds the homogeneous
system from a set of actions and a sign function, computes its Hilbert basis,
and splits/decomposes solutions exactly the way the proof does.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from .diophantine import HomogeneousSystem, decompose_solution, hilbert_basis
from .vectors import IntVector

Place = Hashable
ActionKey = Hashable

__all__ = ["SignSystem", "SignSystemSolution"]

# Variable tags: alpha-variables are ("alpha", place), beta-variables are ("beta", key).
_ALPHA = "alpha"
_BETA = "beta"


class SignSystemSolution:
    """A solution ``(alpha, beta)`` of a :class:`SignSystem`.

    ``alpha`` maps places to N (the absolute displacement part), ``beta`` maps
    action keys to N (the multiplicity of each simple-cycle displacement).
    """

    def __init__(self, alpha: IntVector, beta: IntVector):
        self.alpha = alpha
        self.beta = beta

    @property
    def norm1(self) -> int:
        """``||alpha||_1 + ||beta||_1`` — the quantity bounded by Pottier's bound."""
        return self.alpha.norm1 + self.beta.norm1

    def __add__(self, other: "SignSystemSolution") -> "SignSystemSolution":
        return SignSystemSolution(self.alpha + other.alpha, self.beta + other.beta)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignSystemSolution):
            return NotImplemented
        return self.alpha == other.alpha and self.beta == other.beta

    def __hash__(self) -> int:
        return hash((self.alpha, self.beta))

    def __repr__(self) -> str:
        return f"SignSystemSolution(alpha={self.alpha!r}, beta={self.beta!r})"


class SignSystem:
    """The homogeneous system (1) of Section 7.

    Parameters
    ----------
    places:
        The places ``P`` of the Petri net.
    actions:
        A mapping from action keys (typically the displacement of each simple
        cycle, or an identifier of it) to the action itself, an
        :class:`~repro.algebra.vectors.IntVector` over ``places``.
    signs:
        The sign function ``s : P -> {+1, -1}``.  Following the paper,
        ``s(p) = +1`` when ``Delta(Theta)(p) >= 0`` and ``-1`` otherwise.
    """

    def __init__(
        self,
        places: Iterable[Place],
        actions: Mapping[ActionKey, IntVector],
        signs: Mapping[Place, int],
    ):
        self.places: Tuple[Place, ...] = tuple(places)
        self.actions: Dict[ActionKey, IntVector] = dict(actions)
        self.signs: Dict[Place, int] = {}
        for place in self.places:
            sign = signs.get(place, 1)
            if sign not in (1, -1):
                raise ValueError(f"sign of place {place!r} must be +1 or -1, got {sign}")
            self.signs[place] = sign
        self._system = self._build_system()
        self._basis: Optional[List[IntVector]] = None

    # ------------------------------------------------------------------
    # System construction
    # ------------------------------------------------------------------
    def _build_system(self) -> HomogeneousSystem:
        """Build the homogeneous system ``s(p) alpha(p) - sum_a beta(a) a(p) = 0``."""
        columns: Dict[Tuple[str, Hashable], IntVector] = {}
        for place in self.places:
            columns[(_ALPHA, place)] = IntVector.unit(place, self.signs[place])
        for key, action in self.actions.items():
            columns[(_BETA, key)] = -action.restrict(self.places)
        return HomogeneousSystem(columns)

    @property
    def homogeneous_system(self) -> HomogeneousSystem:
        """The underlying homogeneous system over the combined variables."""
        return self._system

    # ------------------------------------------------------------------
    # Solutions
    # ------------------------------------------------------------------
    def make_solution(
        self, alpha: Mapping[Place, int], beta: Mapping[ActionKey, int]
    ) -> SignSystemSolution:
        """Package ``(alpha, beta)`` mappings into a solution object (no check)."""
        return SignSystemSolution(IntVector(dict(alpha)), IntVector(dict(beta)))

    def is_solution(self, solution: SignSystemSolution) -> bool:
        """Check that ``(alpha, beta)`` satisfies every equation of the system."""
        return self._system.is_solution(self._combine(solution))

    def _combine(self, solution: SignSystemSolution) -> IntVector:
        entries: Dict[Tuple[str, Hashable], int] = {}
        for place, value in solution.alpha.items():
            entries[(_ALPHA, place)] = value
        for key, value in solution.beta.items():
            entries[(_BETA, key)] = value
        return IntVector(entries)

    def _split(self, combined: IntVector) -> SignSystemSolution:
        alpha: Dict[Place, int] = {}
        beta: Dict[ActionKey, int] = {}
        for (tag, name), value in combined.items():
            if tag == _ALPHA:
                alpha[name] = value
            else:
                beta[name] = value
        return SignSystemSolution(IntVector(alpha), IntVector(beta))

    def solution_from_multicycle(
        self, displacement: IntVector, multiplicities: Mapping[ActionKey, int]
    ) -> SignSystemSolution:
        """The canonical solution ``(f, g)`` associated with a multicycle.

        ``f(p) = |Delta(Theta)(p)|`` and ``g(a)`` is the number of simple cycles
        of displacement ``a`` occurring in ``Theta``.
        """
        alpha = IntVector({place: abs(displacement[place]) for place in self.places})
        beta = IntVector(dict(multiplicities))
        return SignSystemSolution(alpha, beta)

    # ------------------------------------------------------------------
    # Hilbert basis and decomposition (the heart of Lemma 7.3)
    # ------------------------------------------------------------------
    def minimal_solutions(self) -> List[SignSystemSolution]:
        """The Hilbert basis of the system, split into ``(alpha, beta)`` pairs."""
        if self._basis is None:
            self._basis = hilbert_basis(self._system)
        return [self._split(element) for element in self._basis]

    def decompose(self, solution: SignSystemSolution) -> List[SignSystemSolution]:
        """Decompose a solution as a sum of minimal solutions (Lemma 7.3 step)."""
        if self._basis is None:
            self._basis = hilbert_basis(self._system)
        parts = decompose_solution(self._system, self._combine(solution), self._basis)
        return [self._split(part) for part in parts]

    def pottier_bound(self) -> int:
        """The paper's bound ``(2 + sum_a ||a||_inf)^d`` on minimal solution norms.

        Note the paper measures only the beta columns (the actions); the alpha
        columns are unit vectors and are absorbed into the ``2 +`` constant.
        """
        total = sum(action.norm_inf for action in self.actions.values())
        return (2 + total) ** max(len(self.places), 1)

    def __repr__(self) -> str:
        return (
            f"SignSystem(places={len(self.places)}, actions={len(self.actions)})"
        )
