"""Minimal solutions of homogeneous linear Diophantine systems (Pottier, RTA'91).

Lemma 7.3 of the paper relies on the following classical fact [12]: the set of
solutions ``x in N^n`` of a homogeneous system ``A x = 0`` is generated (as a
sum) by its finitely many *minimal* solutions (the Hilbert basis), and every
minimal solution has 1-norm bounded by ``(2 + sum of column infinity-norms)^d``
where ``d`` is the number of equations.

This module implements:

* :func:`hilbert_basis` — the Contejean–Devie completion algorithm computing
  the minimal solutions of ``sum_i x_i * a_i = 0`` with ``x in N^n``, where the
  ``a_i`` are integer column vectors,
* :func:`decompose_solution` — a greedy decomposition of an arbitrary solution
  as a non-negative integer combination of minimal solutions (this is the
  "``(f, g) = sum of H``" step in the proof of Lemma 7.3),
* :func:`pottier_norm_bound` — the explicit norm bound from [12] used by the
  paper.

Columns are :class:`~repro.algebra.vectors.IntVector` values over an arbitrary
coordinate set (the equations), and solutions are ``IntVector`` values over the
variable names.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from .vectors import IntVector

Variable = Hashable

__all__ = [
    "HomogeneousSystem",
    "hilbert_basis",
    "decompose_solution",
    "pottier_norm_bound",
]


class HomogeneousSystem:
    """A homogeneous linear Diophantine system ``sum_v x_v * column_v = 0``.

    Parameters
    ----------
    columns:
        A mapping from variable names to integer column vectors (one column
        per variable).  The coordinates of the column vectors are the
        equations of the system.
    """

    def __init__(self, columns: Mapping[Variable, IntVector]):
        if not columns:
            raise ValueError("a homogeneous system needs at least one variable")
        self.columns: Dict[Variable, IntVector] = dict(columns)
        self.variables: Tuple[Variable, ...] = tuple(self.columns)
        equations = set()
        for column in self.columns.values():
            equations |= set(column.support)
        self.equations: frozenset = frozenset(equations)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def value(self, assignment: IntVector) -> IntVector:
        """The left-hand side ``sum_v assignment[v] * column_v``."""
        total = IntVector.zero()
        for variable, coefficient in assignment.items():
            if coefficient:
                total = total + coefficient * self.columns[variable]
        return total

    def is_solution(self, assignment: IntVector) -> bool:
        """True if ``assignment`` is a non-negative solution of the system."""
        return assignment.is_nonnegative() and self.value(assignment).is_zero()

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def pottier_bound(self) -> int:
        """The Pottier bound ``(2 + sum_v ||column_v||_inf)^d`` on minimal-solution 1-norms."""
        return pottier_norm_bound(self.columns.values(), len(self.equations))

    def __repr__(self) -> str:
        return (
            f"HomogeneousSystem(variables={len(self.variables)}, "
            f"equations={len(self.equations)})"
        )


def pottier_norm_bound(columns: Iterable[IntVector], num_equations: int) -> int:
    """The bound of Pottier [12] used in the proof of Lemma 7.3.

    Every minimal non-negative solution ``x`` of the system whose columns are
    ``columns`` satisfies ``||x||_1 <= (2 + sum ||column||_inf)^d`` where ``d``
    is the number of equations.
    """
    total = sum(column.norm_inf for column in columns)
    return (2 + total) ** max(num_equations, 1)


def hilbert_basis(
    system: HomogeneousSystem,
    max_solutions: Optional[int] = None,
) -> List[IntVector]:
    """Minimal non-negative solutions of a homogeneous system (Contejean–Devie).

    The algorithm maintains a frontier of candidate assignments starting from
    the unit vectors.  A candidate that evaluates to zero is a solution and is
    recorded (it is minimal because candidates that dominate a recorded
    solution are pruned).  Otherwise the candidate is extended by one unit in
    every direction whose column has negative dot product with the current
    value — the classical geometric criterion that guarantees termination.

    Parameters
    ----------
    system:
        The homogeneous system.
    max_solutions:
        Optional safety valve; raise RuntimeError if more minimal solutions
        than this are produced.

    Returns
    -------
    list of IntVector
        The Hilbert basis: all minimal non-zero solutions.
    """
    basis: List[IntVector] = []
    # Frontier entries are (assignment, value) pairs to avoid recomputation.
    frontier: List[Tuple[IntVector, IntVector]] = []
    seen: set = set()
    for variable in system.variables:
        assignment = IntVector.unit(variable)
        frontier.append((assignment, system.columns[variable]))
        seen.add(assignment)

    while frontier:
        next_frontier: List[Tuple[IntVector, IntVector]] = []
        for assignment, value in frontier:
            if _dominates_any(assignment, basis):
                continue
            if value.is_zero():
                basis.append(assignment)
                if max_solutions is not None and len(basis) > max_solutions:
                    raise RuntimeError(
                        f"hilbert_basis exceeded {max_solutions} minimal solutions"
                    )
                continue
            for variable in system.variables:
                column = system.columns[variable]
                if value.dot(column) < 0:
                    extended = assignment + IntVector.unit(variable)
                    if extended in seen:
                        continue
                    if _dominates_any(extended, basis):
                        continue
                    seen.add(extended)
                    next_frontier.append((extended, value + column))
        frontier = next_frontier

    # Remove any non-minimal stragglers (solutions found before a smaller one).
    minimal: List[IntVector] = []
    for candidate in sorted(basis, key=lambda vector: vector.norm1):
        if not _dominates_any(candidate, minimal):
            minimal.append(candidate)
    return minimal


def _dominates_any(candidate: IntVector, basis: Sequence[IntVector]) -> bool:
    """True if ``candidate >= b`` componentwise for some basis element ``b``."""
    return any(element <= candidate for element in basis)


def decompose_solution(
    system: HomogeneousSystem,
    solution: IntVector,
    basis: Optional[Sequence[IntVector]] = None,
) -> List[IntVector]:
    """Write a solution as a sum of minimal solutions (with multiplicity).

    This is the decomposition used in the proof of Lemma 7.3: any non-negative
    solution of a homogeneous system is a finite sum of elements of the
    Hilbert basis.  The decomposition is greedy — repeatedly subtract any
    basis element dominated by the remainder — which is correct because the
    remainder stays a solution and every non-zero solution dominates a minimal
    one.

    Parameters
    ----------
    system:
        The homogeneous system.
    solution:
        A non-negative solution of the system.
    basis:
        The Hilbert basis (computed with :func:`hilbert_basis` if omitted).

    Returns
    -------
    list of IntVector
        Basis elements (repeated according to multiplicity) summing to
        ``solution``.

    Raises
    ------
    ValueError
        If ``solution`` is not a solution of the system.
    """
    if not system.is_solution(solution):
        raise ValueError("decompose_solution requires a non-negative solution of the system")
    if basis is None:
        basis = hilbert_basis(system)
    parts: List[IntVector] = []
    remainder = solution
    while not remainder.is_zero():
        for element in basis:
            if element <= remainder:
                parts.append(element)
                remainder = remainder - element
                break
        else:
            raise RuntimeError(
                "greedy decomposition failed: the basis does not generate the solution"
            )
    return parts
