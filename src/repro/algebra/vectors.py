"""Sparse integer vectors over named coordinates.

The control-state analysis of Section 7 manipulates *actions*: mappings
``P -> Z`` (displacements of transitions, edges, paths and multicycles).  This
module provides an immutable sparse integer-vector type with the norms used by
the paper (``||a||_1``, ``||a||_inf``), restriction ``a|_Q``, and the usual
componentwise algebra.

Unlike :class:`repro.core.configuration.Configuration`, entries may be
negative; a configuration can be converted to a vector and a non-negative
vector back to a configuration.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from ..core.configuration import Configuration

Coordinate = Hashable

__all__ = ["IntVector", "Coordinate"]


class IntVector:
    """An immutable sparse mapping ``coordinates -> Z`` (zero entries dropped)."""

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Optional[Mapping[Coordinate, int]] = None):
        clean: Dict[Coordinate, int] = {}
        if entries:
            for coordinate, value in entries.items():
                if value != 0:
                    clean[coordinate] = int(value)
        self._entries = clean
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def zero() -> "IntVector":
        """The zero vector."""
        return _ZERO

    @staticmethod
    def unit(coordinate: Coordinate, value: int = 1) -> "IntVector":
        """The vector with a single non-zero entry."""
        return IntVector({coordinate: value})

    @staticmethod
    def from_configuration(configuration: Configuration) -> "IntVector":
        """View a configuration as a non-negative integer vector."""
        return IntVector(configuration.to_dict())

    def to_configuration(self) -> Configuration:
        """Convert to a configuration; raises if any entry is negative."""
        return Configuration(self._entries)

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------
    def __getitem__(self, coordinate: Coordinate) -> int:
        return self._entries.get(coordinate, 0)

    def __iter__(self) -> Iterator[Coordinate]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterable[Tuple[Coordinate, int]]:
        """Iterate over ``(coordinate, value)`` pairs with non-zero value."""
        return self._entries.items()

    @property
    def support(self) -> frozenset:
        """The coordinates with a non-zero entry."""
        return frozenset(self._entries)

    def to_dict(self) -> Dict[Coordinate, int]:
        """A fresh plain dict copy of the non-zero entries."""
        return dict(self._entries)

    def is_zero(self) -> bool:
        """True if every entry is zero."""
        return not self._entries

    def is_nonnegative(self) -> bool:
        """True if every entry is >= 0."""
        return all(value >= 0 for value in self._entries.values())

    def is_nonpositive(self) -> bool:
        """True if every entry is <= 0."""
        return all(value <= 0 for value in self._entries.values())

    # ------------------------------------------------------------------
    # Norms (paper notation: ||a||_1, ||a||_inf)
    # ------------------------------------------------------------------
    @property
    def norm1(self) -> int:
        """``||a||_1``: the sum of absolute values of the entries."""
        return sum(abs(value) for value in self._entries.values())

    @property
    def norm_inf(self) -> int:
        """``||a||_inf``: the largest absolute value of an entry."""
        if not self._entries:
            return 0
        return max(abs(value) for value in self._entries.values())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "IntVector") -> "IntVector":
        if not isinstance(other, IntVector):
            return NotImplemented
        entries = dict(self._entries)
        for coordinate, value in other._entries.items():
            entries[coordinate] = entries.get(coordinate, 0) + value
        return IntVector(entries)

    def __sub__(self, other: "IntVector") -> "IntVector":
        if not isinstance(other, IntVector):
            return NotImplemented
        entries = dict(self._entries)
        for coordinate, value in other._entries.items():
            entries[coordinate] = entries.get(coordinate, 0) - value
        return IntVector(entries)

    def __neg__(self) -> "IntVector":
        return IntVector({coordinate: -value for coordinate, value in self._entries.items()})

    def __mul__(self, scalar: int) -> "IntVector":
        if not isinstance(scalar, int):
            return NotImplemented
        if scalar == 0:
            return _ZERO
        return IntVector({coordinate: scalar * value for coordinate, value in self._entries.items()})

    def __rmul__(self, scalar: int) -> "IntVector":
        return self.__mul__(scalar)

    def dot(self, other: "IntVector") -> int:
        """The integer dot product of two vectors."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return sum(value * large[coordinate] for coordinate, value in small.items())

    # ------------------------------------------------------------------
    # Order and restriction
    # ------------------------------------------------------------------
    def __le__(self, other: "IntVector") -> bool:
        if not isinstance(other, IntVector):
            return NotImplemented
        coordinates = self.support | other.support
        return all(self[coordinate] <= other[coordinate] for coordinate in coordinates)

    def __ge__(self, other: "IntVector") -> bool:
        if not isinstance(other, IntVector):
            return NotImplemented
        return other <= self

    def restrict(self, coordinates: Iterable[Coordinate]) -> "IntVector":
        """``a|_Q``: keep only the entries whose coordinate is in ``coordinates``."""
        wanted = set(coordinates)
        return IntVector(
            {coordinate: value for coordinate, value in self._entries.items() if coordinate in wanted}
        )

    def sign(self) -> "IntVector":
        """The componentwise sign vector (entries in {-1, 0, +1})."""
        return IntVector(
            {coordinate: (1 if value > 0 else -1) for coordinate, value in self._entries.items()}
        )

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntVector):
            return NotImplemented
        return self._entries == other._entries

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._entries.items()))
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __repr__(self) -> str:
        if not self._entries:
            return "IntVector({})"
        try:
            entries = sorted(self._entries.items(), key=lambda item: str(item[0]))
        except TypeError:
            entries = list(self._entries.items())
        inner = ", ".join(f"{coordinate!r}: {value}" for coordinate, value in entries)
        return f"IntVector({{{inner}}})"


_ZERO = IntVector({})
