"""The classical flock-of-birds protocol for the counting predicate ``x >= n``.

This is the textbook threshold protocol (Angluin et al. 2006): every agent
stores a value in ``{0, 1, ..., n}``; when two agents meet they consolidate
their values (capped at ``n``); an agent that has witnessed ``n`` switches to
the accepting value ``n`` and converts everyone it meets.

It uses ``n + 1`` states, interaction-width 2 and no leaders, and serves as
the *linear* baseline of benchmark E1: the paper (and Blondin–Esparza–Jaax)
are about how far below ``n + 1`` the state count can be pushed.
"""

from __future__ import annotations

from typing import Optional

from ..core.predicates import CountingPredicate
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from .builders import ProtocolBuilder

__all__ = ["flock_of_birds_protocol", "flock_of_birds_predicate", "INITIAL_STATE"]

#: The initial state of the flock-of-birds protocols (an agent carrying value 1).
INITIAL_STATE = 1


def flock_of_birds_predicate(threshold: int) -> CountingPredicate:
    """The counting predicate ``(1 >= n)`` the protocol stably computes.

    The initial state is the integer ``1`` (an agent carrying value 1), so the
    predicate asks whether at least ``threshold`` agents start in state 1.
    """
    return CountingPredicate(INITIAL_STATE, threshold)


def flock_of_birds_protocol(threshold: int, name: Optional[str] = None) -> Protocol:
    """The classical ``n + 1``-state protocol for ``x >= threshold``.

    States are the integers ``0..threshold`` (an agent in state ``v`` carries
    value ``v``); rules:

    * ``(a, b) -> (a + b, 0)``       when ``0 < a, b`` and ``a + b < threshold``,
    * ``(a, b) -> (threshold, threshold)`` when ``a + b >= threshold``,
    * ``(threshold, b) -> (threshold, threshold)`` — output propagation.

    Output 1 exactly for the state ``threshold``.
    """
    if threshold < 1:
        raise ValueError("the threshold must be at least 1")
    builder = ProtocolBuilder(name=name or f"flock-of-birds(n={threshold})")
    states = list(range(threshold + 1))
    builder.add_states(states)
    builder.set_initial_states([INITIAL_STATE])

    for a in range(1, threshold + 1):
        for b in range(1, a + 1):
            total = a + b
            if total < threshold:
                builder.add_rule((a, b), (total, 0), name=f"merge_{a}_{b}")
            else:
                builder.add_rule((a, b), (threshold, threshold), name=f"accept_{a}_{b}")
    # Propagation of the accepting value to value-0 agents.
    builder.add_rule((threshold, 0), (threshold, threshold), name="propagate_0")

    for state in states:
        builder.set_output(state, OUTPUT_ONE if state == threshold else OUTPUT_ZERO)
    return builder.build()
