"""Example 4.1 of the paper: a 2-state protocol with interaction-width ``n``.

The example shows that counting the states of a protocol *without* bounding
its interaction-width is meaningless: the predicate ``x >= n`` is stably
computable by a leaderless conservative protocol with **two** states, at the
price of an interaction-width equal to ``n``.

States are ``{i, p}``, the initial state is ``i`` and ``gamma(i) = 0``,
``gamma(p) = 1``.  The additive preorder is the reachability relation of the
Petri net ``{(rho + i, rho + p) : rho in N^P, |rho| = n - 1}``: a group of
``n`` agents (any mix of ``i`` and ``p``) can convert one of its ``i`` members
to ``p``.  This net has exactly ``n`` transitions, each of interaction-width
``n``, so the protocol is available both as an explicit Petri-net protocol
(:func:`example_4_1_protocol`) and as the abstract relation of the paper
(:func:`example_4_1_preorder`).
"""

from __future__ import annotations

from typing import Optional

from ..core.configuration import Configuration
from ..core.petrinet import PetriNet
from ..core.predicates import CountingPredicate
from ..core.preorder import RelationPreorder
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from ..core.transition import Transition

__all__ = [
    "STATE_I",
    "STATE_P",
    "example_4_1_petri_net",
    "example_4_1_protocol",
    "example_4_1_preorder",
    "example_4_1_predicate",
]

STATE_I = "i"
STATE_P = "p"


def example_4_1_predicate(threshold: int) -> CountingPredicate:
    """The counting predicate ``(i >= n)`` of the example."""
    return CountingPredicate(STATE_I, threshold)


def example_4_1_petri_net(threshold: int) -> PetriNet:
    """The Petri net ``{(rho + i, rho + p) : |rho| = n - 1}`` over ``{i, p}``.

    There are exactly ``n`` transitions (one per split of the ``n - 1``
    context agents between ``i`` and ``p``), each of width ``n``.
    """
    if threshold < 1:
        raise ValueError("the threshold must be at least 1")
    transitions = []
    for in_i in range(threshold):
        in_p = threshold - 1 - in_i
        context = Configuration({STATE_I: in_i, STATE_P: in_p})
        pre = context + Configuration.unit(STATE_I)
        post = context + Configuration.unit(STATE_P)
        transitions.append(Transition(pre, post, name=f"convert[{in_i}i,{in_p}p]"))
    return PetriNet(transitions, states=[STATE_I, STATE_P], name=f"example-4.1(n={threshold})")


def example_4_1_protocol(threshold: int, name: Optional[str] = None) -> Protocol:
    """The 2-state, width-``n``, leaderless protocol of Example 4.1."""
    net = example_4_1_petri_net(threshold)
    return Protocol.from_petri_net(
        net,
        leaders=Configuration.zero(),
        initial_states=[STATE_I],
        output={STATE_I: OUTPUT_ZERO, STATE_P: OUTPUT_ONE},
        name=name or f"example-4.1(n={threshold})",
    )


def example_4_1_preorder(threshold: int) -> RelationPreorder:
    """The abstract additive preorder of Example 4.1, as defined in the paper.

    ``alpha -->* beta`` iff there exists ``m in N`` with
    ``beta + m.i = alpha + m.p`` and (``m = 0`` or ``|alpha| >= n``).
    """

    def relates(alpha: Configuration, beta: Configuration) -> bool:
        # beta + m.i = alpha + m.p forces m = alpha(i) - beta(i) = beta(p) - alpha(p).
        m = alpha[STATE_I] - beta[STATE_I]
        if m != beta[STATE_P] - alpha[STATE_P]:
            return False
        if m < 0:
            return False
        if alpha.erase([STATE_I, STATE_P]) != beta.erase([STATE_I, STATE_P]):
            return False
        return m == 0 or alpha.size >= threshold

    return RelationPreorder(
        relates,
        width=threshold,
        name=f"example-4.1-preorder(n={threshold})",
    )
