"""Helpers for building protocols from interaction tables.

The constructions of this subpackage all describe protocols by a list of
pairwise interaction rules (and occasionally wider transitions).  The
:class:`ProtocolBuilder` collects states, rules, leaders and outputs and
produces a :class:`~repro.core.protocol.Protocol` backed by a Petri net, with
validation along the way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.configuration import Configuration, State
from ..core.petrinet import PetriNet
from ..core.protocol import OUTPUT_ONE, OUTPUT_UNDEFINED, OUTPUT_ZERO, Output, Protocol
from ..core.transition import Transition, pairwise

__all__ = ["ProtocolBuilder"]


class ProtocolBuilder:
    """Incrementally assemble a Petri-net based protocol.

    Example
    -------
    >>> builder = ProtocolBuilder(name="example")
    >>> builder.add_rule(("i", "i"), ("p", "p"))
    >>> builder.set_initial_states(["i"])
    >>> builder.set_output("i", 0)
    >>> builder.set_output("p", 1)
    >>> protocol = builder.build()
    """

    def __init__(self, name: Optional[str] = None):
        self.name = name
        self._transitions: List[Transition] = []
        self._states: set = set()
        self._initial_states: set = set()
        self._leaders: Configuration = Configuration.zero()
        self._outputs: Dict[State, Output] = {}

    # ------------------------------------------------------------------
    # States and rules
    # ------------------------------------------------------------------
    def add_state(self, state: State, output: Optional[Output] = None) -> "ProtocolBuilder":
        """Declare a state (optionally with its output value)."""
        self._states.add(state)
        if output is not None:
            self._outputs[state] = output
        return self

    def add_states(self, states: Iterable[State]) -> "ProtocolBuilder":
        """Declare several states at once."""
        for state in states:
            self._states.add(state)
        return self

    def add_rule(
        self,
        lhs: Tuple[State, State],
        rhs: Tuple[State, State],
        name: Optional[str] = None,
    ) -> "ProtocolBuilder":
        """Add a classical pairwise interaction rule ``(a, b) -> (c, d)``."""
        transition = pairwise(lhs, rhs, name=name)
        self._transitions.append(transition)
        self._states |= set(lhs) | set(rhs)
        return self

    def add_transition(
        self,
        pre: Mapping[State, int],
        post: Mapping[State, int],
        name: Optional[str] = None,
    ) -> "ProtocolBuilder":
        """Add a general (possibly non-conservative, wider) transition."""
        transition = Transition(Configuration(pre), Configuration(post), name=name)
        self._transitions.append(transition)
        self._states |= set(transition.states)
        return self

    # ------------------------------------------------------------------
    # Leaders, initial states, outputs
    # ------------------------------------------------------------------
    def set_leaders(self, leaders: Mapping[State, int]) -> "ProtocolBuilder":
        """Set the leader configuration ``rho_L``."""
        self._leaders = Configuration(leaders)
        self._states |= set(self._leaders.support)
        return self

    def set_initial_states(self, states: Iterable[State]) -> "ProtocolBuilder":
        """Set the initial states ``I``."""
        self._initial_states = set(states)
        self._states |= self._initial_states
        return self

    def set_output(self, state: State, output: Output) -> "ProtocolBuilder":
        """Set ``gamma(state)``."""
        self._states.add(state)
        self._outputs[state] = output
        return self

    def set_outputs(self, outputs: Mapping[State, Output]) -> "ProtocolBuilder":
        """Set the output of several states at once."""
        for state, output in outputs.items():
            self.set_output(state, output)
        return self

    def set_default_output(self, output: Output) -> "ProtocolBuilder":
        """Give every state without an explicit output the given value."""
        for state in self._states:
            self._outputs.setdefault(state, output)
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> Protocol:
        """Validate and build the protocol."""
        if not self._initial_states:
            raise ValueError("the protocol needs at least one initial state")
        missing = self._states - set(self._outputs)
        if missing:
            raise ValueError(
                f"missing outputs for states: {sorted(map(str, missing))}; "
                "use set_output or set_default_output"
            )
        net = PetriNet(self._transitions, states=self._states, name=self.name)
        return Protocol.from_petri_net(
            net,
            leaders=self._leaders,
            initial_states=self._initial_states,
            output=self._outputs,
            name=self.name,
        )
