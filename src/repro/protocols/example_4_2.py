"""Example 4.2 of the paper: 6 states, width 2, and ``n`` leaders.

The example shows that counting the states of a protocol *without* bounding
the number of leaders is also meaningless: with ``n`` leader agents (all
starting in the complemented state ``i-bar``), the predicate ``x >= n`` is
stably computable with six states and pairwise interactions.

States: ``{i, i-bar, p, p-bar, q, q-bar}``; initial state ``i``; leaders
``n . i-bar``; outputs ``gamma(i) = gamma(p) = gamma(q) = 1`` and
``gamma(i-bar) = gamma(p-bar) = gamma(q-bar) = 0``.  Transitions (paper
notation, ``t`` cancels an input against a leader and seeds the witnesses
``p`` and ``q``; the other rules flip the "bar status" of the witnesses):

* ``t      = (i + i-bar,  p + q)``
* ``t_p    = (p-bar + i,  p + i)``        ``t_p-bar = (p + i-bar,  p-bar + i-bar)``
* ``t_q    = (q-bar + i,  q + i)``        ``t_q-bar = (q + i-bar,  q-bar + i-bar)``
* ``t-bar_q = (p + q-bar,  p + q)``       ``t-bar_p = (q + p-bar,  q + p)``
"""

from __future__ import annotations

from typing import Optional

from ..core.configuration import Configuration
from ..core.petrinet import PetriNet
from ..core.predicates import CountingPredicate
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from ..core.transition import pairwise

__all__ = [
    "STATE_I",
    "STATE_I_BAR",
    "STATE_P",
    "STATE_P_BAR",
    "STATE_Q",
    "STATE_Q_BAR",
    "example_4_2_petri_net",
    "example_4_2_protocol",
    "example_4_2_predicate",
]

STATE_I = "i"
STATE_I_BAR = "i_bar"
STATE_P = "p"
STATE_P_BAR = "p_bar"
STATE_Q = "q"
STATE_Q_BAR = "q_bar"

_ALL_STATES = (STATE_I, STATE_I_BAR, STATE_P, STATE_P_BAR, STATE_Q, STATE_Q_BAR)


def example_4_2_predicate(threshold: int) -> CountingPredicate:
    """The counting predicate ``(i >= n)`` of the example."""
    return CountingPredicate(STATE_I, threshold)


def example_4_2_petri_net() -> PetriNet:
    """The seven pairwise transitions of Example 4.2 (independent of ``n``)."""
    transitions = [
        pairwise((STATE_I, STATE_I_BAR), (STATE_P, STATE_Q), name="t"),
        pairwise((STATE_P_BAR, STATE_I), (STATE_P, STATE_I), name="t_p"),
        pairwise((STATE_P, STATE_I_BAR), (STATE_P_BAR, STATE_I_BAR), name="t_p_bar"),
        pairwise((STATE_Q_BAR, STATE_I), (STATE_Q, STATE_I), name="t_q"),
        pairwise((STATE_Q, STATE_I_BAR), (STATE_Q_BAR, STATE_I_BAR), name="t_q_bar"),
        pairwise((STATE_P, STATE_Q_BAR), (STATE_P, STATE_Q), name="t_bar_q"),
        pairwise((STATE_Q, STATE_P_BAR), (STATE_Q, STATE_P), name="t_bar_p"),
    ]
    return PetriNet(transitions, states=_ALL_STATES, name="example-4.2")


def example_4_2_protocol(threshold: int, name: Optional[str] = None) -> Protocol:
    """The 6-state, width-2 protocol of Example 4.2 with ``threshold`` leaders."""
    if threshold < 1:
        raise ValueError("the threshold must be at least 1")
    net = example_4_2_petri_net()
    leaders = Configuration({STATE_I_BAR: threshold})
    outputs = {
        STATE_I: OUTPUT_ONE,
        STATE_P: OUTPUT_ONE,
        STATE_Q: OUTPUT_ONE,
        STATE_I_BAR: OUTPUT_ZERO,
        STATE_P_BAR: OUTPUT_ZERO,
        STATE_Q_BAR: OUTPUT_ZERO,
    }
    return Protocol.from_petri_net(
        net,
        leaders=leaders,
        initial_states=[STATE_I],
        output=outputs,
        name=name or f"example-4.2(n={threshold})",
    )
