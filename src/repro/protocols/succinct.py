"""Succinct protocols for counting predicates (the Blondin–Esparza–Jaax baselines).

The paper's lower bound is measured against the upper bounds of Blondin,
Esparza & Jaax (STACS 2018):

* **leaderless, O(log n) states** — reproduced here by
  :func:`succinct_leaderless_protocol`, a binary-representation protocol:
  agents carry values that are powers of two (consolidated by doubling), a
  "collector" chain absorbs the binary digits of ``n`` from the most
  significant one down, and an accepting state is produced exactly when value
  at least ``n`` has been assembled.  The construction below is a
  correct-by-construction variant of the BEJ protocol (documented substitution
  in DESIGN.md): it adds the reverse of every value-conserving rule, which
  keeps the state count at ``O(log n)`` while making the completeness argument
  (and the exhaustive verification in the test suite) straightforward.

* **with leaders, O(log log n) states for infinitely many n** — the BEJ
  construction relies on leader-driven multiplication gadgets; it is
  represented here by its *state-count model*
  (:func:`bej_with_leaders_state_count`, :func:`bej_family_threshold`) which is
  what the comparison experiments (E1, E3) consume, together with the paper's
  own Example 4.2 as the concrete with-leaders protocol.  See DESIGN.md
  ("Substitutions") for the rationale.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ..core.configuration import Configuration
from ..core.predicates import CountingPredicate
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from .builders import ProtocolBuilder

__all__ = [
    "ZERO_STATE",
    "ACCEPT_STATE",
    "value_state",
    "collector_state",
    "succinct_initial_state",
    "succinct_leaderless_protocol",
    "succinct_leaderless_predicate",
    "succinct_leaderless_state_count",
    "bej_family_threshold",
    "bej_with_leaders_state_count",
]

ZERO_STATE = "zero"
ACCEPT_STATE = "F"


def value_state(value: int) -> Tuple[str, int]:
    """The state of an agent carrying the power-of-two ``value``."""
    return ("v", value)


def collector_state(value: int) -> Tuple[str, int]:
    """The state of the collector holding the partial sum ``value`` of ``n``'s digits."""
    return ("c", value)


def succinct_initial_state() -> Tuple[str, int]:
    """The initial state: an agent carrying value 1."""
    return value_state(1)


def succinct_leaderless_predicate(threshold: int) -> CountingPredicate:
    """The counting predicate the succinct protocol stably computes."""
    return CountingPredicate(succinct_initial_state(), threshold)


def _collector_values(threshold: int) -> List[int]:
    """The proper partial sums of ``threshold``'s binary digits (top-down).

    Excludes the leading power of two (already a value state) and the final
    sum ``threshold`` itself (the accepting state).
    """
    k = threshold.bit_length() - 1
    values: List[int] = []
    current = 1 << k
    for j in range(k - 1, -1, -1):
        if (threshold >> j) & 1:
            current += 1 << j
            if current < threshold:
                values.append(current)
    return values


def succinct_leaderless_state_count(threshold: int) -> int:
    """The number of states of :func:`succinct_leaderless_protocol` (O(log n))."""
    if threshold == 1:
        return 2
    k = threshold.bit_length() - 1
    if threshold == (1 << k):
        # powers 1..2^{k-1}, the zero state and the accepting state.
        return k + 2
    # powers 1..2^k, the proper collectors, the zero state and the accepting state.
    return (k + 1) + len(_collector_values(threshold)) + 2


def succinct_leaderless_protocol(threshold: int, name: Optional[str] = None) -> Protocol:
    """A leaderless, width-2, ``O(log n)``-state protocol for ``x >= threshold``.

    Construction (value of a configuration = sum of the numeric values carried
    by its agents; every rule except acceptance and output propagation
    conserves it):

    * doubling and its reverse:  ``(2^j, 2^j) <-> (2^{j+1}, zero)`` for
      ``j < k`` where ``k = floor(log2 threshold)``,
    * digit absorption and its reverse along the binary representation of
      ``threshold`` (a collector that has assembled the leading digits absorbs
      the next one),
    * acceptance: the last absorption (total exactly ``threshold``) and the
      overflow rule ``(2^k, 2^k) -> (F, zero)`` (total ``2^{k+1} > threshold``),
    * output propagation ``(F, y) -> (F, F)``.

    The accepting state is produced only when the assembled value reaches
    ``threshold``; conversely, from any configuration of total value at least
    ``threshold``, the reversibility of the value-conserving rules lets the
    agents re-distribute their values and assemble ``threshold`` exactly.
    """
    if threshold < 1:
        raise ValueError("the threshold must be at least 1")
    name = name or f"succinct-leaderless(n={threshold})"
    builder = ProtocolBuilder(name=name)
    initial = succinct_initial_state()
    builder.set_initial_states([initial])

    if threshold == 1:
        # x >= 1: a single agent can accept on its own (width-1 transition).
        builder.add_transition({initial: 1}, {ACCEPT_STATE: 1}, name="accept_single")
        builder.add_rule((ACCEPT_STATE, initial), (ACCEPT_STATE, ACCEPT_STATE), name="prop_v1")
        builder.set_output(initial, OUTPUT_ZERO)
        builder.set_output(ACCEPT_STATE, OUTPUT_ONE)
        return builder.build()

    k = threshold.bit_length() - 1
    is_power_of_two = threshold == (1 << k)
    # For a power-of-two threshold, the top power *is* the threshold: doubling
    # two halves accepts directly, and no collector chain is needed.
    top_power_exponent = k - 1 if is_power_of_two else k
    powers = [1 << j for j in range(top_power_exponent + 1)]
    collectors = [] if is_power_of_two else _collector_values(threshold)

    # Doubling rules and their reverses.
    for j in range(top_power_exponent):
        small = value_state(1 << j)
        big = value_state(1 << (j + 1))
        builder.add_rule((small, small), (big, ZERO_STATE), name=f"double_{1 << j}")
        builder.add_rule((big, ZERO_STATE), (small, small), name=f"split_{1 << (j + 1)}")

    if is_power_of_two:
        # Two agents carrying threshold/2 assemble the threshold exactly.
        half = value_state(1 << (k - 1))
        builder.add_rule((half, half), (ACCEPT_STATE, ZERO_STATE), name="accept_double_top")
    else:
        # Digit-absorption chain along the binary representation of the threshold.
        current_value = 1 << k
        current_state = value_state(current_value)
        for j in range(k - 1, -1, -1):
            if not (threshold >> j) & 1:
                continue
            digit_state = value_state(1 << j)
            next_value = current_value + (1 << j)
            if next_value == threshold:
                builder.add_rule(
                    (current_state, digit_state), (ACCEPT_STATE, ZERO_STATE),
                    name=f"accept_absorb_{next_value}",
                )
            else:
                next_state = collector_state(next_value)
                builder.add_rule(
                    (current_state, digit_state), (next_state, ZERO_STATE),
                    name=f"absorb_{next_value}",
                )
                builder.add_rule(
                    (next_state, ZERO_STATE), (current_state, digit_state),
                    name=f"release_{next_value}",
                )
                current_state = next_state
                current_value = next_value

        # Overflow acceptance: two top tokens exceed the threshold.
        top = value_state(1 << k)
        builder.add_rule((top, top), (ACCEPT_STATE, ZERO_STATE), name="accept_overflow")

    # Output propagation.
    all_states = (
        [value_state(p) for p in powers]
        + [collector_state(c) for c in collectors]
        + [ZERO_STATE]
    )
    for state in all_states:
        builder.add_rule((ACCEPT_STATE, state), (ACCEPT_STATE, ACCEPT_STATE), name=f"prop_{state}")

    for state in all_states:
        builder.set_output(state, OUTPUT_ZERO)
    builder.set_output(ACCEPT_STATE, OUTPUT_ONE)
    return builder.build()


# ----------------------------------------------------------------------
# The with-leaders O(log log n) family (analytic model)
# ----------------------------------------------------------------------
def bej_family_threshold(level: int) -> int:
    """The ``level``-th member of the succinct family: ``n = 2^(2^level)``."""
    if level < 0:
        raise ValueError("the family level must be non-negative")
    return 2 ** (2 ** level)


def bej_with_leaders_state_count(threshold: int, constant: int = 4) -> int:
    """The state count of the BEJ with-leaders protocol for family thresholds.

    For ``n = 2^(2^m)`` the construction uses ``Theta(m) = Theta(log log n)``
    states; the default multiplicative constant 4 reflects the handful of
    bookkeeping states per squaring level.  This analytic model is the
    documented substitution for the full construction (see module docstring).
    """
    if threshold < 4:
        return constant
    return constant * max(int(math.ceil(math.log2(math.log2(threshold)))), 1)
