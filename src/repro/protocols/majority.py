"""The classical four-state exact-majority protocol.

Not part of the paper's bounds, but the standard second workload for the
simulator and the verifier: it exercises a two-variable Presburger predicate
(``x_A > x_B``) with the interaction pattern (cancellation + opinion
spreading) that most of the population-protocol literature benchmarks on.

States: active opinions ``A`` and ``B``, passive opinions ``a`` and ``b``.
Rules:

* ``(A, B) -> (a, b)`` — opposite actives cancel,
* ``(A, b) -> (A, a)`` and ``(B, a) -> (B, b)`` — actives convert passives,
* ``(a, b) -> (b, b)`` — passive tie-breaking toward ``B`` (makes the
  protocol well-specified on ties, where the predicate ``x_A > x_B`` is
  false).

Outputs: ``A, a -> 1`` and ``B, b -> 0``.
"""

from __future__ import annotations

from typing import Optional

from ..core.predicates import ThresholdPredicate
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from .builders import ProtocolBuilder

__all__ = [
    "STATE_A",
    "STATE_B",
    "STATE_A_PASSIVE",
    "STATE_B_PASSIVE",
    "majority_predicate",
    "majority_protocol",
]

STATE_A = "A"
STATE_B = "B"
STATE_A_PASSIVE = "a"
STATE_B_PASSIVE = "b"


def majority_predicate() -> ThresholdPredicate:
    """The predicate ``x_A - x_B >= 1`` (strict majority of ``A``)."""
    return ThresholdPredicate({STATE_A: 1, STATE_B: -1}, 1)


def majority_protocol(name: Optional[str] = None) -> Protocol:
    """The classical 4-state exact-majority protocol (leaderless, width 2)."""
    builder = ProtocolBuilder(name=name or "majority")
    builder.set_initial_states([STATE_A, STATE_B])
    builder.add_rule((STATE_A, STATE_B), (STATE_A_PASSIVE, STATE_B_PASSIVE), name="cancel")
    builder.add_rule((STATE_A, STATE_B_PASSIVE), (STATE_A, STATE_A_PASSIVE), name="convert_a")
    builder.add_rule((STATE_B, STATE_A_PASSIVE), (STATE_B, STATE_B_PASSIVE), name="convert_b")
    builder.add_rule(
        (STATE_A_PASSIVE, STATE_B_PASSIVE), (STATE_B_PASSIVE, STATE_B_PASSIVE), name="tie_break"
    )
    builder.set_outputs(
        {
            STATE_A: OUTPUT_ONE,
            STATE_A_PASSIVE: OUTPUT_ONE,
            STATE_B: OUTPUT_ZERO,
            STATE_B_PASSIVE: OUTPUT_ZERO,
        }
    )
    return builder.build()
