"""Modulo (remainder) protocols — a Presburger building block.

The counting predicates studied by the paper are one family of Presburger
atoms; the other standard family consists of the remainder predicates
``x = r (mod m)``.  The classical protocol for them keeps, in a distinguished
"accumulator" role, the running remainder of the number of input agents:
agents merge their residues pairwise, and the carrier of the merged residue
announces the current verdict.

These protocols round out the construction library (they are used by the
boolean-combination examples and give the simulator a second predicate family
to exercise), and they are exhaustively verified in the test suite.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.predicates import ModuloPredicate
from ..core.protocol import OUTPUT_ONE, OUTPUT_ZERO, Protocol
from .builders import ProtocolBuilder

__all__ = [
    "modulo_initial_state",
    "modulo_predicate",
    "modulo_protocol",
]


def modulo_initial_state() -> Tuple[str, int]:
    """The initial state: an agent contributing 1 to the running sum."""
    return ("r", 1, "active")


def modulo_predicate(modulus: int, remainder: int) -> ModuloPredicate:
    """The predicate ``x = remainder (mod modulus)`` over the initial state."""
    return ModuloPredicate({modulo_initial_state(): 1}, modulus, remainder)


def modulo_protocol(modulus: int, remainder: int, name: Optional[str] = None) -> Protocol:
    """The classical ``2m``-state protocol for ``x = remainder (mod m)``.

    States are pairs ``(value, role)`` where ``value in {0..m-1}`` and the role
    is ``active`` (still carrying a residue that must be accounted for) or
    ``passive`` (its residue has been handed over).  Rules:

    * ``(a, active) + (b, active) -> ((a + b) mod m, active) + ((a + b) mod m, passive)``
      — two actives merge; the passive copy remembers the current total so its
      output stays up to date,
    * ``(a, active) + (b, passive) -> (a, active) + (a, passive)``
      — an active agent refreshes the verdict of a passive one.

    An agent outputs 1 exactly when the value it carries equals ``remainder``.
    The number of input agents mod ``m`` is an invariant carried by the unique
    remaining active agent once all merges have happened (with at least one
    agent present); every passive agent eventually copies that value.
    """
    if modulus < 2:
        raise ValueError("the modulus must be at least 2")
    remainder %= modulus
    builder = ProtocolBuilder(name=name or f"modulo(x = {remainder} mod {modulus})")
    builder.set_initial_states([modulo_initial_state()])

    def active(value: int) -> Tuple[str, int, str]:
        return ("r", value % modulus, "active")

    def passive(value: int) -> Tuple[str, int, str]:
        return ("r", value % modulus, "passive")

    for a in range(modulus):
        for b in range(modulus):
            total = (a + b) % modulus
            builder.add_rule(
                (active(a), active(b)), (active(total), passive(total)),
                name=f"merge_{a}_{b}",
            )
            builder.add_rule(
                (active(a), passive(b)), (active(a), passive(a)),
                name=f"refresh_{a}_{b}",
            )

    for value in range(modulus):
        verdict = OUTPUT_ONE if value == remainder else OUTPUT_ZERO
        builder.set_output(active(value), verdict)
        builder.set_output(passive(value), verdict)
    return builder.build()
