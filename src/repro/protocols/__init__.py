"""Concrete protocol constructions.

The paper's worked examples (4.1 and 4.2), the classical flock-of-birds and
majority/modulo protocols, and the succinct Blondin–Esparza–Jaax baselines.
Every construction returns a :class:`~repro.core.protocol.Protocol` ready for
verification, simulation and the state-count benchmarks.
"""

from .builders import ProtocolBuilder
from .example_4_1 import (
    example_4_1_petri_net,
    example_4_1_predicate,
    example_4_1_preorder,
    example_4_1_protocol,
)
from .example_4_2 import (
    example_4_2_petri_net,
    example_4_2_predicate,
    example_4_2_protocol,
)
from .flock_of_birds import flock_of_birds_predicate, flock_of_birds_protocol
from .majority import majority_predicate, majority_protocol
from .modulo import modulo_initial_state, modulo_predicate, modulo_protocol
from .succinct import (
    bej_family_threshold,
    bej_with_leaders_state_count,
    succinct_initial_state,
    succinct_leaderless_predicate,
    succinct_leaderless_protocol,
    succinct_leaderless_state_count,
)

__all__ = [
    "ProtocolBuilder",
    "flock_of_birds_protocol",
    "flock_of_birds_predicate",
    "example_4_1_protocol",
    "example_4_1_petri_net",
    "example_4_1_preorder",
    "example_4_1_predicate",
    "example_4_2_protocol",
    "example_4_2_petri_net",
    "example_4_2_predicate",
    "succinct_leaderless_protocol",
    "succinct_leaderless_predicate",
    "succinct_leaderless_state_count",
    "succinct_initial_state",
    "bej_family_threshold",
    "bej_with_leaders_state_count",
    "modulo_protocol",
    "modulo_predicate",
    "modulo_initial_state",
    "majority_protocol",
    "majority_predicate",
]
