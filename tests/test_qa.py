"""Tests for the static QA toolchain (repro.qa).

Covers every lint rule with a seeded-violation fixture *and* a clean twin,
the codegen auditor on all four paper protocols (plus corrupted sources that
must fail), pickle-safety positives/negatives, the pragma and baseline
suppression round-trips, and the CLI exit-code contract the CI gates on.
"""

import json
import textwrap

import pytest

from repro.qa import codegen_audit, determinism, picklesafety
from repro.qa.cli import main as qa_main
from repro.qa.rules import (
    RULES,
    Finding,
    apply_baseline,
    apply_pragmas,
    load_baseline,
    parse_pragmas,
    severity_at_least,
    write_baseline,
)
from repro.simulation.vectorized import numpy_available
from repro.sweep.spec import available_sweep_protocols, build_protocol_and_inputs

PAPER_PROTOCOLS = ("majority", "modulo", "succinct", "flock")
AUDIT_POPULATIONS = (25, 100)


def lint(source, path="module.py"):
    return determinism.lint_source(textwrap.dedent(source), path)


def live_rules(findings):
    return [finding.rule for finding in findings if finding.suppressed is None]


# ----------------------------------------------------------------------
# Rule catalogue sanity
# ----------------------------------------------------------------------
class TestRuleCatalogue:
    def test_expected_rules_present(self):
        assert set(RULES) == {
            "DET101", "DET102", "DET103", "DET201", "DET202", "PKL001",
        }

    def test_severity_ordering(self):
        assert severity_at_least("error", "warning")
        assert severity_at_least("warning", "warning")
        assert not severity_at_least("info", "warning")


# ----------------------------------------------------------------------
# Determinism rules: each must fire on a violation and stay silent on a twin
# ----------------------------------------------------------------------
class TestDet101RandomModuleCalls:
    def test_fires_on_module_level_call(self):
        findings = lint(
            """
            import random

            def draw():
                return random.random()
            """
        )
        assert live_rules(findings) == ["DET101"]

    def test_silent_on_seeded_instance(self):
        findings = lint(
            """
            import random

            def draw(seed):
                rng = random.Random(seed)
                return rng.random()
            """
        )
        assert live_rules(findings) == []

    def test_fires_on_shuffle_and_choice(self):
        findings = lint(
            """
            import random

            def scramble(items):
                random.shuffle(items)
                return random.choice(items)
            """
        )
        assert live_rules(findings) == ["DET101", "DET101"]


class TestDet102WallClock:
    @pytest.mark.parametrize(
        "call",
        ["time.time()", "time.time_ns()", "os.urandom(8)", "uuid.uuid4()"],
    )
    def test_fires_on_entropy_sources(self, call):
        findings = lint(
            f"""
            import os, time, uuid

            def stamp():
                return {call}
            """
        )
        assert live_rules(findings) == ["DET102"]

    def test_fires_on_datetime_now(self):
        findings = lint(
            """
            import datetime

            def stamp():
                return datetime.datetime.now()
            """
        )
        assert live_rules(findings) == ["DET102"]

    def test_silent_on_perf_counter(self):
        findings = lint(
            """
            import time

            def measure():
                return time.perf_counter()
            """
        )
        assert live_rules(findings) == []


class TestDet103EnvReads:
    def test_fires_on_environ_and_getenv(self):
        findings = lint(
            """
            import os

            def workers():
                if "WORKERS" in os.environ:
                    return int(os.environ["WORKERS"])
                return os.getenv("FALLBACK")
            """
        )
        assert set(live_rules(findings)) == {"DET103"}
        assert len(live_rules(findings)) >= 2

    def test_silent_in_sanctioned_config_module(self):
        findings = lint(
            """
            import os

            def workers():
                return os.environ.get("WORKERS")
            """,
            path="src/repro/config.py",
        )
        assert live_rules(findings) == []


class TestDet201SetIterationIntoOrderedSink:
    def test_fires_on_append_from_set_literal(self):
        findings = lint(
            """
            def collect(a, b):
                out = []
                for item in {a, b}:
                    out.append(item)
                return out
            """
        )
        assert live_rules(findings) == ["DET201"]

    def test_fires_on_set_typed_local(self):
        findings = lint(
            """
            def collect(items):
                seen = set(items)
                out = []
                for item in seen:
                    out.append(item)
                return out
            """
        )
        assert live_rules(findings) == ["DET201"]

    def test_fires_on_subscript_store(self):
        findings = lint(
            """
            def index(items):
                table = {}
                position = 0
                for item in set(items):
                    table[item] = position
                    position += 1
                return table
            """
        )
        assert live_rules(findings) == ["DET201"]

    def test_silent_on_sorted_iteration(self):
        findings = lint(
            """
            def collect(items):
                out = []
                for item in sorted(set(items), key=str):
                    out.append(item)
                return out
            """
        )
        assert live_rules(findings) == []

    def test_silent_on_order_insensitive_body(self):
        findings = lint(
            """
            def total(items):
                acc = 0
                for item in set(items):
                    acc += item
                return acc
            """
        )
        assert live_rules(findings) == []


class TestDet202UnkeyedSortedOverSet:
    def test_fires_on_sorted_set(self):
        findings = lint(
            """
            def order(items):
                return sorted(set(items))
            """
        )
        assert live_rules(findings) == ["DET202"]

    def test_fires_on_min_over_set_difference(self):
        findings = lint(
            """
            def smallest(a, b):
                return min(set(a) - set(b))
            """
        )
        assert live_rules(findings) == ["DET202"]

    def test_silent_with_key(self):
        findings = lint(
            """
            def order(items):
                return sorted(set(items), key=str)
            """
        )
        assert live_rules(findings) == []

    def test_silent_on_list_argument(self):
        findings = lint(
            """
            def order(items):
                return sorted(list(items))
            """
        )
        assert live_rules(findings) == []


# ----------------------------------------------------------------------
# Pragmas and baseline
# ----------------------------------------------------------------------
class TestPragmas:
    def test_trailing_pragma_suppresses(self):
        findings = lint(
            """
            def order(items):
                return sorted(set(items))  # qa: allow[DET202] -- ints only
            """
        )
        assert live_rules(findings) == []
        assert [finding.suppressed for finding in findings] == ["pragma"]

    def test_standalone_pragma_covers_next_line(self):
        findings = lint(
            """
            def order(items):
                # qa: allow[DET202] -- ints only
                return sorted(set(items))
            """
        )
        assert live_rules(findings) == []

    def test_pragma_for_other_rule_does_not_suppress(self):
        findings = lint(
            """
            def order(items):
                return sorted(set(items))  # qa: allow[DET101]
            """
        )
        assert live_rules(findings) == ["DET202"]

    def test_wildcard_pragma(self):
        findings = lint(
            """
            def order(items):
                return sorted(set(items))  # qa: allow[*]
            """
        )
        assert live_rules(findings) == []

    def test_parse_pragmas_multiple_ids(self):
        pragmas = parse_pragmas("x = 1  # qa: allow[DET101, DET202]\n")
        assert pragmas[1] == frozenset({"DET101", "DET202"})


class TestBaseline:
    def _finding(self, line=3):
        return Finding(
            rule="DET202",
            path="pkg/mod.py",
            line=line,
            message="un-keyed sorted",
            source="return sorted(set(items))",
        )

    def test_round_trip(self, tmp_path):
        baseline_path = tmp_path / "qa_baseline.json"
        write_baseline(baseline_path, [self._finding()])
        fingerprints = load_baseline(baseline_path)
        suppressed = apply_baseline([self._finding()], fingerprints)
        assert [finding.suppressed for finding in suppressed] == ["baseline"]

    def test_line_moves_do_not_invalidate(self, tmp_path):
        baseline_path = tmp_path / "qa_baseline.json"
        write_baseline(baseline_path, [self._finding(line=3)])
        fingerprints = load_baseline(baseline_path)
        moved = apply_baseline([self._finding(line=42)], fingerprints)
        assert moved[0].suppressed == "baseline"

    def test_multiset_semantics(self, tmp_path):
        baseline_path = tmp_path / "qa_baseline.json"
        write_baseline(baseline_path, [self._finding()])
        fingerprints = load_baseline(baseline_path)
        duplicated = apply_baseline(
            [self._finding(line=3), self._finding(line=9)], fingerprints
        )
        assert sorted(
            finding.suppressed or "live" for finding in duplicated
        ) == ["baseline", "live"]

    def test_corrupt_baseline_raises(self, tmp_path):
        baseline_path = tmp_path / "qa_baseline.json"
        baseline_path.write_text("not json at all")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_baseline(baseline_path)

    def test_wrong_version_raises(self, tmp_path):
        baseline_path = tmp_path / "qa_baseline.json"
        baseline_path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="unsupported format"):
            load_baseline(baseline_path)


# ----------------------------------------------------------------------
# Pickle safety
# ----------------------------------------------------------------------
class TestPickleSafety:
    def test_fires_on_lambda_attribute(self):
        findings = picklesafety.check_source(
            textwrap.dedent(
                """
                class Holder:
                    def __init__(self):
                        self.fn = lambda x: x + 1
                """
            ),
            "module.py",
        )
        assert live_rules(findings) == ["PKL001"]

    def test_fires_on_exec_factory_result(self):
        findings = picklesafety.check_source(
            textwrap.dedent(
                """
                def _make(source):
                    namespace = {}
                    exec(source, namespace)
                    return namespace["fn"]

                class Holder:
                    def __init__(self, source):
                        self.fn = _make(source)
                """
            ),
            "module.py",
        )
        assert live_rules(findings) == ["PKL001"]

    def test_fires_on_cache_subscript_store(self):
        findings = picklesafety.check_source(
            textwrap.dedent(
                """
                class Holder:
                    def __init__(self):
                        self._cache = {}

                    def _make(self):
                        def stepper():
                            return 1
                        return stepper

                    def get(self, key):
                        self._cache[key] = self._make()
                """
            ),
            "module.py",
        )
        assert live_rules(findings) == ["PKL001"]

    def test_silent_with_getstate(self):
        findings = picklesafety.check_source(
            textwrap.dedent(
                """
                class Holder:
                    def __init__(self):
                        self.fn = lambda x: x + 1

                    def __getstate__(self):
                        state = self.__dict__.copy()
                        state["fn"] = None
                        return state
                """
            ),
            "module.py",
        )
        assert live_rules(findings) == []

    def test_silent_on_plain_attributes(self):
        findings = picklesafety.check_source(
            textwrap.dedent(
                """
                class Holder:
                    def __init__(self, items):
                        self.items = list(items)
                        self.table = {}
                """
            ),
            "module.py",
        )
        assert live_rules(findings) == []

    def test_subclass_inherits_getstate_across_files(self, tmp_path):
        (tmp_path / "base.py").write_text(
            textwrap.dedent(
                """
                class Base:
                    def __init__(self):
                        self.fn = lambda: 1

                    def __getstate__(self):
                        return {}
                """
            )
        )
        (tmp_path / "child.py").write_text(
            textwrap.dedent(
                """
                from base import Base

                class Child(Base):
                    def __init__(self):
                        super().__init__()
                        self.other = lambda: 2
                """
            )
        )
        findings = picklesafety.check_paths(tmp_path)
        assert live_rules(findings) == []

    def test_real_tree_is_clean(self, repo_src):
        findings = picklesafety.check_paths(repo_src)
        assert live_rules(findings) == []


@pytest.fixture(scope="session")
def repo_src():
    import pathlib

    import repro

    return pathlib.Path(repro.__file__).resolve().parent


# ----------------------------------------------------------------------
# Codegen audit
# ----------------------------------------------------------------------
def _compiled_for(name, population):
    protocol, _inputs = build_protocol_and_inputs(name, population)
    net = protocol.petri_net
    assert net is not None
    compiled = net.compiled(extra_states=protocol.states)
    classes = compiled.output_classes(protocol.output_table)
    return compiled, classes


class TestCodegenAudit:
    def test_paper_protocols_are_registered(self):
        assert set(PAPER_PROTOCOLS) <= set(available_sweep_protocols())

    @pytest.mark.parametrize("name", PAPER_PROTOCOLS)
    @pytest.mark.parametrize("population", AUDIT_POPULATIONS)
    def test_paper_protocols_pass(self, name, population):
        compiled, classes = _compiled_for(name, population)
        assert codegen_audit.audit_compiled_net(compiled, classes) == []

    def test_corrupted_source_fails(self):
        compiled, classes = _compiled_for("majority", 25)
        source = compiled.stepper_source("uniform", classes)
        corrupted = source.replace("step += 1", "step += leaked_global", 1)
        problems = codegen_audit.audit_stepper_source(
            corrupted, compiled, "uniform", classes
        )
        assert any("leaked_global" in problem for problem in problems)

    def test_attribute_access_in_loop_fails(self):
        compiled, classes = _compiled_for("majority", 25)
        source = compiled.stepper_source("uniform", classes)
        corrupted = source.replace(
            "        pick = randrange(total)",
            "        pick = rng.randrange(total)",
            1,
        )
        problems = codegen_audit.audit_stepper_source(
            corrupted, compiled, "uniform", classes
        )
        assert any("rng.randrange" in problem for problem in problems)

    def test_wrong_delta_fails(self):
        compiled, classes = _compiled_for("majority", 25)
        source = compiled.stepper_source("uniform", classes)
        # Flip the first firing displacement found in the dispatch.
        import re

        corrupted, replacements = re.subn(
            r"^(            c\d+) \+= (\d+)$",
            r"\1 += 7",
            source,
            count=1,
            flags=re.MULTILINE,
        )
        assert replacements == 1
        problems = codegen_audit.audit_stepper_source(
            corrupted, compiled, "uniform", classes
        )
        assert any("net says" in problem for problem in problems)

    def test_unparsable_source_fails(self):
        compiled, classes = _compiled_for("majority", 25)
        problems = codegen_audit.audit_stepper_source(
            "def broken(:", compiled, "uniform", classes
        )
        assert problems and "does not parse" in problems[0]

    def test_recording_strips_to_fast(self):
        compiled, classes = _compiled_for("succinct", 25)
        fast = compiled.stepper_source("uniform", classes, record=False)
        recording = compiled.stepper_source("uniform", classes, record=True)
        assert codegen_audit._strip_ring_statements(recording) == fast
        assert recording != fast

    def test_qa_meta_attached(self):
        compiled, classes = _compiled_for("majority", 25)
        stepper = compiled.stepper("uniform", classes)
        meta = stepper.__qa_meta__
        assert meta["kind"] == "uniform"
        assert meta["record"] is False
        assert meta["num_transitions"] == compiled.num_transitions


def _vectorized_for(name, population):
    protocol, _inputs = build_protocol_and_inputs(name, population)
    net = protocol.petri_net
    assert net is not None
    vectorized = net.vectorized(extra_states=protocol.states)
    classes = vectorized.output_classes(protocol.output_table)
    return vectorized, classes


@pytest.mark.skipif(not numpy_available(), reason="NumPy not installed")
class TestEnsembleAudit:
    @pytest.mark.parametrize("name", PAPER_PROTOCOLS)
    @pytest.mark.parametrize("population", AUDIT_POPULATIONS)
    def test_paper_protocols_pass(self, name, population):
        vectorized, classes = _vectorized_for(name, population)
        assert codegen_audit.audit_ensemble_net(vectorized, classes) == []

    def test_corrupted_csr_displacement_fails(self):
        vectorized, classes = _vectorized_for("majority", 25)
        tables = vectorized.ensemble_tables()
        original = int(tables.d_val[0])
        tables.d_val[0] = original + 7
        try:
            problems = codegen_audit.audit_ensemble_net(vectorized, classes)
        finally:
            tables.d_val[0] = original
        assert any("CSR displacements" in problem for problem in problems)

    def test_missing_dummy_slot_fails(self):
        vectorized, classes = _vectorized_for("majority", 25)
        tables = vectorized.ensemble_tables()
        original = tables.padded
        tables.padded = vectorized.num_transitions
        try:
            problems = codegen_audit.audit_ensemble_net(vectorized, classes)
        finally:
            tables.padded = original
        assert any("dummy slot" in problem for problem in problems)

    def test_corrupted_padded_affected_row_fails(self):
        vectorized, classes = _vectorized_for("majority", 25)
        tables = vectorized.ensemble_tables()
        assert tables.fast_uniform
        original = int(tables.a_pad[0, 0])
        tables.a_pad[0, 0] = (original + 1) % vectorized.num_transitions
        try:
            problems = codegen_audit.audit_ensemble_net(vectorized, classes)
        finally:
            tables.a_pad[0, 0] = original
        assert any("padded affected row" in problem for problem in problems)


class TestUniverseGuard:
    def test_colliding_str_renderings_rejected(self):
        from repro.core.configuration import Configuration
        from repro.core.petrinet import PetriNet
        from repro.core.transition import Transition

        class Alias:
            """Two distinct, hashable states rendering identically."""

            def __init__(self, tag):
                self.tag = tag

            def __hash__(self):
                return hash(self.tag)

            def __eq__(self, other):
                return isinstance(other, Alias) and self.tag == other.tag

            def __str__(self):
                return "same"

        a, b = Alias(1), Alias(2)
        net = PetriNet(
            [Transition(pre=Configuration({a: 1}), post=Configuration({b: 1}))],
            name="aliased",
        )
        with pytest.raises(ValueError, match="distinct string renderings"):
            net.compiled()


# ----------------------------------------------------------------------
# CLI exit codes (the contract the CI gates on)
# ----------------------------------------------------------------------
VIOLATION_SOURCE = """\
import random


def draw():
    return random.random()
"""

CLEAN_SOURCE = """\
import random


def draw(seed):
    rng = random.Random(seed)
    return rng.random()
"""


class TestCliExitCodes:
    def test_lint_clean_exits_0(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "clean.py").write_text(CLEAN_SOURCE)
        assert qa_main(["lint", "clean.py"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_violation_exits_1(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "dirty.py").write_text(VIOLATION_SOURCE)
        assert qa_main(["lint", "dirty.py"]) == 1
        out = capsys.readouterr().out
        assert "DET101" in out

    def test_lint_missing_path_exits_2(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert qa_main(["lint", "no/such/path.py"]) == 2

    def test_lint_baseline_workflow(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "dirty.py").write_text(VIOLATION_SOURCE)
        assert qa_main(["lint", "dirty.py", "--write-baseline"]) == 0
        assert (tmp_path / "qa_baseline.json").exists()
        capsys.readouterr()
        # Baselined finding no longer gates ...
        assert qa_main(["lint", "dirty.py"]) == 0
        assert "suppressed" in capsys.readouterr().out
        # ... but a second copy of the same hazard does.
        (tmp_path / "dirty.py").write_text(
            VIOLATION_SOURCE + "\n\ndef draw2():\n    return random.random()\n"
        )
        assert qa_main(["lint", "dirty.py"]) == 1

    def test_lint_explicit_missing_baseline_exits_2(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "clean.py").write_text(CLEAN_SOURCE)
        assert qa_main(["lint", "clean.py", "--baseline", "absent.json"]) == 2

    def test_lint_shipped_tree_is_clean(self, repo_src, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # no baseline in cwd: findings must gate
        assert qa_main(["lint", str(repo_src)]) == 0

    def test_check_pickle_exit_codes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "bad.py").write_text(
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self.fn = lambda: 1\n"
        )
        assert qa_main(["check-pickle", "bad.py"]) == 1
        (tmp_path / "bad.py").write_text(CLEAN_SOURCE)
        assert qa_main(["check-pickle", "bad.py"]) == 0

    def test_audit_codegen_exits_0(self, capsys):
        assert qa_main(["audit-codegen", "--population", "25"]) == 0
        out = capsys.readouterr().out
        for name in PAPER_PROTOCOLS:
            assert f"{name}@25: ok" in out

    def test_audit_codegen_unknown_protocol_exits_2(self, capsys):
        assert qa_main(["audit-codegen", "--protocol", "nonesuch"]) == 2

    def test_rules_subcommand(self, capsys):
        assert qa_main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_typecheck_without_mypy_exits_2(self, capsys):
        mypy_installed = True
        try:
            import mypy  # noqa: F401
        except ImportError:
            mypy_installed = False
        if mypy_installed:
            pytest.skip("mypy installed; the missing-dependency path is moot")
        assert qa_main(["typecheck"]) == 2
        assert "pip install" in capsys.readouterr().err
