"""Tests for the observability layer (repro.obs) and its integrations.

The load-bearing properties:

* the metrics registry renders deterministic Prometheus text exposition —
  stable sort, ``# HELP``/``# TYPE`` headers, integers bare — and survives
  threaded hammering without losing updates or corrupting a concurrent
  scrape,
* spans nest by call stack, ship across process boundaries via
  capture/adopt with ids remapped and top-level spans re-parented,
* the canonical rendering of a traced ensemble is **byte-identical**
  between the serial and process backends for a fixed seed (timing and
  topology attrs stripped, logical structure kept),
* a traced sweep cell / serve job reconstructs its full span tree,
* the serve ``/metrics`` endpoint is idle-deterministic (two scrapes of an
  untouched server are byte-identical) and self-describing,
* the heartbeat pump turns lease trouble into structured warnings instead
  of silence.
"""

import json
import threading

import pytest

from repro.core import from_counts
from repro.obs import render
from repro.obs import trace as obs_trace
from repro.obs.__main__ import main as obs_main
from repro.obs.profile import RUN_SECONDS_BUCKETS, EngineProfiler
from repro.obs.registry import MetricsRegistry, get_registry
from repro.protocols import majority_protocol
from repro.serve.server import SimulationServer
from repro.simulation import Simulator
from repro.sweep import MemoryResultStore, SweepRunner, SweepSpec
from repro.sweep.runner import _HeartbeatPump

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Every test starts and ends with no process-wide tracer installed."""
    obs_trace.uninstall_tracer()
    yield
    obs_trace.uninstall_tracer()


def _install_file_tracer(path):
    return obs_trace.install_tracer(obs_trace.Tracer(str(path)))


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_accumulates_and_rejects_negative(self):
        registry = MetricsRegistry()
        jobs = registry.counter("repro_test_jobs_total", "Jobs.")
        jobs.inc()
        jobs.inc(4)
        assert jobs.value() == 5
        with pytest.raises(ValueError, match="only go up"):
            jobs.inc(-1)

    def test_labeled_series_are_independent(self):
        registry = MetricsRegistry()
        claims = registry.counter(
            "repro_test_claims_total", "Claims.", labelnames=("outcome",)
        )
        claims.inc(outcome="executed")
        claims.inc(2, outcome="lost")
        assert claims.value(outcome="executed") == 1
        assert claims.value(outcome="lost") == 2
        assert claims.value(outcome="parked") == 0

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        depth = registry.gauge("repro_test_depth", "Queue depth.")
        depth.set(7)
        depth.inc(2)
        depth.dec()
        assert depth.value() == 8

    def test_histogram_buckets_are_cumulative_with_inf(self):
        registry = MetricsRegistry()
        lat = registry.histogram(
            "repro_test_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            lat.observe(value)
        text = registry.render()
        assert 'repro_test_latency_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_test_latency_seconds_bucket{le="1"} 2' in text
        assert 'repro_test_latency_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_test_latency_seconds_count 3" in text
        assert "repro_test_latency_seconds_sum 5.55" in text

    def test_get_or_create_returns_same_family_and_rejects_mismatch(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", "Help.")
        assert registry.counter("repro_test_total", "Help.") is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_test_total", "Help.")
        with pytest.raises(ValueError, match="label"):
            registry.counter("repro_test_total", "Help.", labelnames=("x",))

    def test_render_is_sorted_self_describing_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("repro_z_total", "Last.").inc()
        registry.gauge("repro_a_value", "First.").set(3)
        text = registry.render()
        assert text == registry.render()  # no mutation -> byte-identical
        assert "# HELP repro_a_value First." in text
        assert "# TYPE repro_a_value gauge" in text
        assert "# TYPE repro_z_total counter" in text
        assert text.index("repro_a_value") < text.index("repro_z_total")
        # Integers render bare (no trailing .0) for byte-stability.
        assert "repro_a_value 3\n" in text

    def test_threaded_increments_lose_no_updates(self):
        # Satellite: the registry is hammered from pool callback threads and
        # the heartbeat pump; dropped updates would silently skew metrics.
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_test_hammer_total", "Hammered.", labelnames=("lane",)
        )
        hist = registry.histogram("repro_test_hammer_seconds", "Hammered.")
        threads, per_thread, scrapes = 8, 2000, []

        def hammer(lane):
            for _ in range(per_thread):
                counter.inc(lane=lane)
                hist.observe(0.01)

        def scrape():
            for _ in range(50):
                scrapes.append(registry.render())

        workers = [
            threading.Thread(target=hammer, args=(f"lane{i % 2}",))
            for i in range(threads)
        ] + [threading.Thread(target=scrape)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert counter.value(lane="lane0") == 4 * per_thread
        assert counter.value(lane="lane1") == 4 * per_thread
        count, total = hist.snapshot()
        assert count == threads * per_thread
        assert total == pytest.approx(threads * per_thread * 0.01)
        # A concurrent scrape may be stale but never torn: every sample line
        # must parse, and bucket counts must stay cumulative.
        for text in scrapes:
            for line in text.splitlines():
                if line.startswith("#") or not line:
                    continue
                name, _, value = line.rpartition(" ")
                assert name
                float(value)

    def test_sample_values_flattens_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "T.", labelnames=("k",)).inc(k="a")
        registry.gauge("repro_test_depth", "D.").set(2)
        values = registry.sample_values()
        assert values['repro_test_total{k="a"}'] == 1
        assert values["repro_test_depth"] == 2


# ---------------------------------------------------------------------------
# Tracing core
# ---------------------------------------------------------------------------


class TestTracing:
    def test_spans_nest_by_call_stack(self):
        with obs_trace.capture_events() as events:
            with obs_trace.span("outer", kind="ensemble", reps=2) as outer:
                with obs_trace.span("inner", kind="run"):
                    pass
                obs_trace.event("ping", kind="warning", reason="test")
        inner, ping, outer_rec = events
        assert inner["kind"] == "run" and inner["parent"] == outer.id
        assert ping["ev"] == "event" and ping["parent"] == outer.id
        assert outer_rec["id"] == outer.id and outer_rec["parent"] is None
        assert outer_rec["attrs"]["reps"] == 2
        assert outer_rec["dur"] >= 0.0

    def test_span_records_error_and_reraises(self):
        with obs_trace.capture_events() as events:
            with pytest.raises(RuntimeError):
                with obs_trace.span("boom", kind="run"):
                    raise RuntimeError("nope")
        assert events[0]["error"] == "RuntimeError"

    def test_span_is_noop_when_nothing_listens(self):
        with obs_trace.span("quiet", kind="run") as handle:
            handle.set(ignored=True)
        assert handle.id is None
        assert not obs_trace.tracing_active()

    def test_span_event_emits_pretimed_span(self):
        with obs_trace.capture_events() as events:
            obs_trace.span_event("run", "run", 1.0, 0.5, seed=7)
        assert events[0]["t0"] == 1.0 and events[0]["dur"] == 0.5
        assert events[0]["attrs"] == {"seed": 7}

    def test_tracer_writes_meta_header_then_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _install_file_tracer(path)
        with obs_trace.span("root", kind="ensemble"):
            pass
        obs_trace.uninstall_tracer()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["ev"] == "meta" and lines[0]["version"] == 1
        assert lines[1]["ev"] == "span" and lines[1]["name"] == "root"

    def test_adopt_remaps_ids_and_reparents_roots(self):
        # Simulate a worker: its ids restart at whatever its process counter
        # held, so the parent must remap them into its own id space.
        shipped = [
            {"ev": "meta", "version": 1},
            {"ev": "span", "kind": "run", "name": "run", "id": 1,
             "parent": 2, "attrs": {"seed": 0}},
            {"ev": "span", "kind": "chunk", "name": "chunk", "id": 2,
             "parent": None, "attrs": {}},
        ]
        with obs_trace.capture_events() as events:
            with obs_trace.span("dispatch", kind="dispatch") as dispatch:
                adopted = obs_trace.adopt(shipped, parent=dispatch.id)
        assert len(adopted) == 2  # meta dropped
        run, chunk = adopted
        assert run["id"] != 1 and chunk["id"] != 2
        assert run["parent"] == chunk["id"]  # intra-batch edge follows remap
        assert chunk["parent"] == dispatch.id  # root re-homed under dispatch
        assert events[-1]["id"] == dispatch.id

    def test_tracer_from_env_installs_once(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_TRACE_PATH", str(tmp_path / "env.jsonl"))
        first = obs_trace.tracer_from_env()
        assert first is not None
        assert obs_trace.tracer_from_env() is first
        monkeypatch.setenv("REPRO_TRACE", "0")
        obs_trace.uninstall_tracer()
        assert obs_trace.tracer_from_env() is None


# ---------------------------------------------------------------------------
# Profiler
# ---------------------------------------------------------------------------


class TestEngineProfiler:
    def test_record_flushes_counters_and_rate(self):
        registry = MetricsRegistry()
        profiler = EngineProfiler(registry=registry, sample_every=4)
        for _ in range(4):
            profiler.record("compiled", steps=100, seconds=0.01)
        runs = registry.counter(
            "repro_engine_runs_total", "", labelnames=("engine",)
        )
        steps = registry.counter(
            "repro_engine_steps_total", "", labelnames=("engine",)
        )
        assert runs.value(engine="compiled") == 4
        assert steps.value(engine="compiled") == 400
        rate = registry.gauge(
            "repro_engine_steps_per_second", "", labelnames=("engine",)
        )
        assert rate.value(engine="compiled") == pytest.approx(10000.0)

    def test_flush_drains_partial_window(self):
        registry = MetricsRegistry()
        profiler = EngineProfiler(registry=registry, sample_every=100)
        profiler.record("reference", steps=10, seconds=0.5)
        runs = registry.counter(
            "repro_engine_runs_total", "", labelnames=("engine",)
        )
        assert runs.value(engine="reference") == 0  # window not full yet
        profiler.flush()
        assert runs.value(engine="reference") == 1

    def test_every_run_lands_in_the_seconds_histogram(self):
        registry = MetricsRegistry()
        profiler = EngineProfiler(registry=registry, sample_every=1000)
        profiler.record("compiled", steps=1, seconds=0.25)
        hist = registry.histogram(
            "repro_engine_run_seconds", "", labelnames=("engine",),
            buckets=RUN_SECONDS_BUCKETS,
        )
        count, total = hist.snapshot(engine="compiled")
        assert (count, total) == (1, 0.25)


# ---------------------------------------------------------------------------
# Engine / pool integration and cross-backend byte-identity
# ---------------------------------------------------------------------------


def _traced_ensemble(path, backend, **kwargs):
    protocol = majority_protocol()
    inputs = from_counts(A=16, B=8)
    _install_file_tracer(path)
    try:
        results = Simulator(protocol, seed=2022).run_many(
            inputs, repetitions=8, max_steps=2000, backend=backend, **kwargs
        )
    finally:
        obs_trace.uninstall_tracer()
    return results


class TestEngineIntegration:
    def test_traced_serial_ensemble_emits_run_spans_under_ensemble(self, tmp_path):
        path = tmp_path / "serial.jsonl"
        results = _traced_ensemble(path, "serial")
        events = render.load_events(str(path))
        runs = [e for e in events if e.get("kind") == "run"]
        ensembles = [e for e in events if e.get("kind") == "ensemble"]
        assert len(runs) == len(results) == 8
        assert len(ensembles) == 1
        assert all(r["parent"] == ensembles[0]["id"] for r in runs)
        assert [r["attrs"]["steps"] for r in runs] == [r.steps for r in results]

    def test_process_trace_reconstructs_dispatch_and_chunk_layers(self, tmp_path):
        path = tmp_path / "process.jsonl"
        _traced_ensemble(path, "process", max_workers=2)
        events = render.load_events(str(path))
        by_kind = {}
        for record in events:
            by_kind.setdefault(record.get("kind"), []).append(record)
        (dispatch,) = by_kind["dispatch"]
        (ensemble,) = by_kind["ensemble"]
        assert dispatch["parent"] == ensemble["id"]
        chunk_ids = {c["id"] for c in by_kind["chunk"]}
        assert all(c["parent"] == dispatch["id"] for c in by_kind["chunk"])
        assert all(r["parent"] in chunk_ids for r in by_kind["run"])
        assert len(by_kind["run"]) == 8

    def test_canon_is_byte_identical_across_backends(self, tmp_path):
        # The acceptance criterion: strip timing/topology, and a fixed-seed
        # trace is the same bytes whether the ensemble ran serially or
        # through worker processes.
        serial_path = tmp_path / "serial.jsonl"
        process_path = tmp_path / "process.jsonl"
        serial = _traced_ensemble(serial_path, "serial")
        parallel = _traced_ensemble(process_path, "process", max_workers=2)
        assert serial == parallel  # the existing bit-identity contract
        canon_serial = render.canon(render.load_events(str(serial_path)))
        canon_process = render.canon(render.load_events(str(process_path)))
        assert canon_serial.encode() == canon_process.encode()
        kinds = [json.loads(l)["kind"] for l in canon_serial.splitlines()]
        assert set(kinds) == {"run", "ensemble"}


# ---------------------------------------------------------------------------
# Sweep integration
# ---------------------------------------------------------------------------


def _sweep_spec():
    return SweepSpec(
        protocols=("majority",),
        populations=(8, 12),
        schedulers=("uniform",),
        engines=("compiled",),
        repetitions=2,
        master_seed=42,
        max_steps=300,
        stability_window=50,
    )


class TestSweepIntegration:
    def test_sweep_cell_span_tree_and_claim_counters(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        _install_file_tracer(path)
        try:
            report = SweepRunner(
                _sweep_spec(), MemoryResultStore(), backend="serial"
            ).run()
        finally:
            obs_trace.uninstall_tracer()
        assert report.executed == 2
        events = render.load_events(str(path))
        cells = [e for e in events if e.get("kind") == "sweep-cell"]
        runs = [e for e in events if e.get("kind") == "run"]
        assert len(cells) == 2
        assert all(c["attrs"]["status"] == "done" for c in cells)
        cell_ids = {c["id"] for c in cells}
        assert all(r["parent"] in cell_ids for r in runs)

    def test_sweep_canon_is_byte_identical_across_backends(self, tmp_path):
        canons = {}
        for backend in ("serial", "process"):
            path = tmp_path / f"{backend}.jsonl"
            _install_file_tracer(path)
            try:
                kwargs = {"max_workers": 2} if backend == "process" else {}
                SweepRunner(
                    _sweep_spec(), MemoryResultStore(), backend=backend, **kwargs
                ).run()
            finally:
                obs_trace.uninstall_tracer()
            canons[backend] = render.canon(render.load_events(str(path)))
        assert canons["serial"].encode() == canons["process"].encode()

    def test_heartbeat_pump_warns_on_lost_claim(self):
        class _LostStore:
            lease_seconds = 30.0

            def heartbeat(self, claim):
                return False

        claim = type("Claim", (), {"cell": "c1", "owner": "w1"})()
        before = get_registry().counter(
            "repro_sweep_heartbeat_warnings_total",
            "Heartbeat-pump lease warnings by reason.",
            labelnames=("reason",),
        ).value(reason="lost")
        with obs_trace.capture_events() as events:
            pump = _HeartbeatPump(_LostStore(), claim, interval=0.05)
            with pump:
                pump._thread.join(timeout=5.0)
        assert pump.claim_alive is False
        assert "lost" in pump.warnings
        warning = next(e for e in events if e.get("kind") == "warning")
        assert warning["name"] == "heartbeat-lost"
        assert warning["attrs"]["cell"] == "c1"
        after = get_registry().counter(
            "repro_sweep_heartbeat_warnings_total",
            "Heartbeat-pump lease warnings by reason.",
            labelnames=("reason",),
        ).value(reason="lost")
        assert after == before + 1

    def test_heartbeat_pump_warns_when_lease_margin_gone(self):
        class _TightStore:
            # One beat of margin: every gap lands within a beat of expiry.
            lease_seconds = 0.06

            def __init__(self):
                self.beats = 0

            def heartbeat(self, claim):
                self.beats += 1
                return self.beats < 3

        claim = type("Claim", (), {"cell": "c2", "owner": "w2"})()
        pump = _HeartbeatPump(_TightStore(), claim, interval=0.05)
        with pump:
            pump._thread.join(timeout=5.0)
        assert "lease-at-risk" in pump.warnings


# ---------------------------------------------------------------------------
# Serve integration
# ---------------------------------------------------------------------------


class TestServeIntegration:
    def test_idle_metrics_scrapes_are_byte_identical(self):
        server = SimulationServer(backend="serial")
        first = server.metrics_text()
        second = server.metrics_text()
        assert first.encode() == second.encode()

    def test_metrics_exposition_is_self_describing_and_sorted(self):
        server = SimulationServer(backend="serial")
        text = server.metrics_text()
        assert "# HELP repro_serve_jobs_submitted " in text
        assert "# TYPE repro_serve_jobs_submitted counter" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "# TYPE repro_serve_job_queue_wait_seconds histogram" in text
        samples = [
            line.split("{")[0].rpartition(" ")[0] or line.rpartition(" ")[0]
            for line in text.splitlines()
            if line and not line.startswith("#")
        ]
        families = [s.split("{")[0] for s in samples]
        assert families == sorted(families)
        assert "repro_serve_uptime_seconds" not in text  # clocks break idle identity

    def test_two_servers_do_not_share_counters(self):
        first = SimulationServer(backend="serial")
        second = SimulationServer(backend="serial")
        first.metrics.inc("jobs_submitted")
        assert first.metrics.jobs_submitted == 1
        assert second.metrics.jobs_submitted == 0

    def test_legacy_attribute_writes_still_reach_the_registry(self):
        server = SimulationServer(backend="serial")
        server.metrics.jobs_failed += 1
        assert server.metrics.jobs_failed == 1
        assert "repro_serve_jobs_failed 1" in server.metrics_text()

    def test_serve_job_span_tree_reconstructs_queue_and_execution(self):
        from repro.serve import BackgroundServer, ServeClient

        job = dict(protocol="majority", population=24, repetitions=3,
                   max_steps=8000)
        with obs_trace.capture_events() as events:
            with BackgroundServer(backend="serial", concurrency=1) as bg:
                client = ServeClient(bg.url, client_id="obs1")
                client.run(job, timeout=300)
        jobs = [e for e in events if e.get("kind") == "serve-job"]
        assert len(jobs) == 1
        serve_job = jobs[0]
        assert serve_job["attrs"]["status"] == "done"
        assert serve_job["attrs"]["queue_wait"] >= 0.0
        assert serve_job["attrs"]["exec_seconds"] >= 0.0
        # The executor thread inherits the serve-job span via the copied
        # context, so the per-run spans parent under it.
        runs = [e for e in events if e.get("kind") == "run"]
        assert len(runs) == 3
        assert all(r["parent"] == serve_job["id"] for r in runs)
        hist_count, _ = bg.server._queue_wait.snapshot()
        assert hist_count == 1


# ---------------------------------------------------------------------------
# Rendering and the CLI
# ---------------------------------------------------------------------------


class TestRenderAndCli:
    def _write_trace(self, path):
        _install_file_tracer(path)
        try:
            with obs_trace.span("sweep-cell", kind="sweep-cell", cell="c"):
                obs_trace.span_event("run", "run", 0.0, 0.1, seed=1, steps=5)
                obs_trace.span_event("run", "run", 0.1, 0.2, seed=2, steps=9)
            obs_trace.event("heartbeat-skipped", kind="warning", reason="skipped")
        finally:
            obs_trace.uninstall_tracer()

    def test_summary_counts_spans_and_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        text = render.summary(render.load_events(str(path)))
        assert "run" in text and "sweep-cell" in text
        assert "warning" in text

    def test_timeline_nests_children(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        text = render.timeline(render.load_events(str(path)))
        lines = text.splitlines()
        cell_line = next(i for i, l in enumerate(lines) if "sweep-cell" in l)
        run_lines = [l for l in lines if " run" in l]
        assert len(run_lines) == 2
        # Children render indented beneath their parent.
        assert all(l.index("run") > lines[cell_line].index("sweep-cell")
                   for l in run_lines)

    def test_load_events_names_the_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev":"span"}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            render.load_events(str(path))

    def test_cli_summary_tail_timeline_canon(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        for command in ("summary", "tail", "timeline"):
            assert obs_main([command, str(path)]) == 0
            assert capsys.readouterr().out
        out = tmp_path / "canon.jsonl"
        assert obs_main(["canon", str(path), "-o", str(out)]) == 0
        kinds = [json.loads(l)["kind"] for l in out.read_text().splitlines()]
        assert kinds == ["run", "run", "sweep-cell"]

    def test_cli_reports_missing_file(self, tmp_path, capsys):
        assert obs_main(["summary", str(tmp_path / "absent.jsonl")]) == 1
        assert "absent" in capsys.readouterr().err
