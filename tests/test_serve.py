"""Tests for the serve layer: job specs, content keys, server, client.

The load-bearing properties:

* job validation inherits the sweep layer's rejection rules (unknown
  protocols/params/schedulers/engines, unknown fields, malformed scalars),
* the content key canonicalizes — reordered JSON, case/whitespace spellings
  and defaulted-vs-explicit optional fields share one key, while anything
  that changes the simulated ensemble (seed, population, budget, analytics)
  gets its own,
* seeds follow the sweep discipline: a served job, the equivalent sweep
  cell, and a direct ``Simulator.run_many`` draw identical seeds, so the
  served payload is **byte-identical** (post-JSON) to a direct run,
* the server caches by content key (duplicate submission → cache hit, zero
  new pool work), enforces the per-client 429 cap, coalesces concurrent
  duplicates, and drains gracefully (503 for new work, in-flight completes),
* the config knobs fail loudly on malformed values.
"""

import json
import threading

import pytest

from repro import config
from repro.serve import (
    BackgroundServer,
    JobSpec,
    ServeClient,
    ServeRejected,
    SimulationServer,
)
from repro.simulation.simulator import Simulator
from repro.sweep.spec import SweepSpec, build_protocol_and_inputs, derive_cell_seed


def _job(**overrides):
    base = dict(protocol="majority", population=24, repetitions=3, max_steps=8000)
    base.update(overrides)
    return base


def _render_direct(spec: JobSpec):
    """The job executed directly via Simulator.run_many, rendered like serve."""
    protocol, inputs = build_protocol_and_inputs(
        spec.protocol, spec.population, spec.params
    )
    simulator = Simulator(protocol, engine=spec.engine, seed=spec.ensemble_seed)
    results = simulator.run_many(
        inputs,
        spec.repetitions,
        max_steps=spec.max_steps,
        stability_window=spec.stability_window,
    )
    rendered = [
        {
            "seed": seed,
            "steps": result.steps,
            "consensus": result.consensus,
            "consensus_step": result.consensus_step,
            "converged": result.converged,
            "terminated": result.terminated,
            "interactions_sampled": result.interactions_sampled,
        }
        for seed, result in zip(spec.repetition_seeds(), results)
    ]
    return json.loads(json.dumps(rendered))


class TestJobSpecValidation:
    def test_unknown_protocol_rejected_like_sweeps(self):
        with pytest.raises(ValueError, match="unknown sweep protocol"):
            JobSpec.from_dict(_job(protocol="nope"))

    def test_unknown_params_rejected(self):
        with pytest.raises(ValueError, match="does not accept parameters"):
            JobSpec.from_dict(_job(params={"bogus": 1}))

    def test_unknown_scheduler_and_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler kind"):
            JobSpec.from_dict(_job(scheduler="chaotic"))
        with pytest.raises(ValueError, match="unknown engine"):
            JobSpec.from_dict(_job(engine="warp"))

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown job fields"):
            JobSpec.from_dict(_job(seed=7))

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ValueError, match="'protocol' and 'population'"):
            JobSpec.from_dict({"population": 10})

    def test_non_integral_scalars_rejected(self):
        with pytest.raises(ValueError, match="must be an integer"):
            JobSpec.from_dict(_job(population=10.5))
        with pytest.raises(ValueError, match="must be an integer"):
            JobSpec.from_dict(_job(repetitions="four"))

    def test_round_trips_through_to_dict(self):
        spec = JobSpec.from_dict(_job(analytics=True))
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestContentKeyCanonicalization:
    def test_reordered_json_keys_share_a_key(self):
        a = JobSpec.from_dict(
            {"protocol": "majority", "population": 24, "repetitions": 3}
        )
        b = JobSpec.from_dict(
            {"repetitions": 3, "population": 24, "protocol": "majority"}
        )
        assert a.key == b.key

    def test_equivalent_spellings_share_a_key(self):
        a = JobSpec.from_dict(_job(protocol=" Majority ", engine="NumPy"))
        b = JobSpec.from_dict(_job(protocol="majority", engine="numpy"))
        assert a.key == b.key

    def test_defaulted_and_explicit_optionals_share_a_key(self):
        minimal = JobSpec.from_dict({"protocol": "majority", "population": 24})
        explicit = JobSpec.from_dict(
            {
                "protocol": "majority",
                "population": 24.0,
                "params": {},
                "scheduler": "uniform",
                "engine": "auto",
                "repetitions": 8,
                "master_seed": 0,
                "max_steps": 100000,
                "stability_window": 200,
                "analytics": False,
            }
        )
        assert minimal.key == explicit.key

    def test_reordered_params_share_a_key(self):
        a = JobSpec.from_dict(
            _job(protocol="modulo", params={"modulus": 3, "remainder": 1})
        )
        b = JobSpec.from_dict(
            _job(protocol="modulo", params={"remainder": 1, "modulus": 3})
        )
        assert a.key == b.key

    def test_distinct_seeds_and_populations_do_not_collide(self):
        base = JobSpec.from_dict(_job())
        assert base.key != JobSpec.from_dict(_job(master_seed=1)).key
        assert base.key != JobSpec.from_dict(_job(population=25)).key
        assert base.key != JobSpec.from_dict(_job(repetitions=4)).key
        assert base.key != JobSpec.from_dict(_job(max_steps=9000)).key
        assert base.key != JobSpec.from_dict(_job(stability_window=100)).key
        assert base.key != JobSpec.from_dict(_job(analytics=True)).key
        assert base.key != JobSpec.from_dict(_job(engine="numpy")).key
        assert (
            base.key
            != JobSpec.from_dict(_job(protocol="modulo", params={"modulus": 2})).key
        )

    def test_engine_changes_key_but_not_seed(self):
        auto = JobSpec.from_dict(_job(engine="auto"))
        numpy = JobSpec.from_dict(_job(engine="numpy"))
        assert auto.key != numpy.key
        assert auto.ensemble_seed == numpy.ensemble_seed


class TestSeedDiscipline:
    def test_ensemble_seed_matches_sweep_cell_seed(self):
        spec = JobSpec.from_dict(_job(master_seed=42))
        sweep = SweepSpec(
            protocols=["majority"],
            populations=[24],
            repetitions=3,
            master_seed=42,
            max_steps=8000,
        )
        (cell,) = sweep.cells()
        assert spec.ensemble_seed == sweep.cell_seed(cell)
        assert spec.ensemble_seed == derive_cell_seed(42, cell.seed_scope)

    def test_repetition_seeds_match_run_many_derivation(self):
        spec = JobSpec.from_dict(_job())
        import random

        master = random.Random(spec.ensemble_seed)
        expected = [master.getrandbits(64) for _ in range(spec.repetitions)]
        assert spec.repetition_seeds() == expected


class TestServerEndToEnd:
    def test_served_result_byte_identical_to_direct_run(self):
        job = _job()
        spec = JobSpec.from_dict(job)
        with BackgroundServer(backend="process", max_workers=2, concurrency=1) as bg:
            client = ServeClient(bg.url, client_id="t1")
            result = client.run(job, timeout=300)
        assert result["runs"] == _render_direct(spec)
        assert result["statistics"]["runs"] == spec.repetitions
        assert result["accuracy"] is not None
        assert result["job"] == spec.key

    def test_duplicate_submission_is_a_cache_hit_with_no_new_pool_work(self):
        job = _job()
        respelled = {
            "max_steps": job["max_steps"],
            "repetitions": job["repetitions"],
            "population": float(job["population"]),
            "protocol": " MAJORITY ",
            "engine": "Auto",
            "scheduler": "uniform",
        }
        with BackgroundServer(backend="process", max_workers=2, concurrency=1) as bg:
            client = ServeClient(bg.url, client_id="t2")
            first = client.run(job, timeout=300)
            second = client.submit(respelled)
            metrics = client.metrics()
        assert second["cached"] is True
        assert second["result"] == first
        assert metrics["repro_serve_cache_hits"] == 1
        assert metrics["repro_serve_jobs_completed"] == 1

    def test_analytics_payload_served(self):
        job = _job(analytics=True)
        with BackgroundServer(backend="serial", concurrency=1) as bg:
            client = ServeClient(bg.url, client_id="t3")
            result = client.run(job, timeout=300)
        assert len(result["analytics"]) == job["repetitions"]
        for metrics in result["analytics"]:
            assert "time_to_stable_consensus" in metrics
            assert "correct" in metrics

    def test_validation_errors_surface_as_400(self):
        from repro.serve.client import ServeError

        with BackgroundServer(backend="serial", concurrency=1) as bg:
            client = ServeClient(bg.url, client_id="t4")
            with pytest.raises(ServeError, match="unknown sweep protocol"):
                client.submit(_job(protocol="nope"))
            with pytest.raises(ServeError, match="HTTP 404"):
                client.status("not-a-real-key")

    def test_drain_rejects_new_work_and_finishes_in_flight(self):
        # The stability window equals the step budget, so the ensemble runs
        # its full budget and is reliably still in flight when the drain and
        # the 503 probe land right after the submit.
        job = _job(population=60, repetitions=4, max_steps=120000,
                   stability_window=120000)
        with BackgroundServer(backend="serial", concurrency=1) as bg:
            client = ServeClient(bg.url, client_id="t5")
            submitted = client.submit(job)
            assert submitted["status"] in ("queued", "running")
            bg.drain()
            with pytest.raises(ServeRejected) as rejected:
                client.submit(_job(population=61))
            assert rejected.value.status == 503
        # __exit__ joined the thread: the in-flight ensemble completed and
        # landed in the cache before shutdown.
        assert bg.server.metrics.jobs_completed == 1
        assert bg.server.metrics.jobs_failed == 0
        assert bg.server.metrics.rejected_draining == 1
        status, body = bg.server._job_status(submitted["job"])
        assert status == 200 and body["status"] == "done"
        assert body["result"]["statistics"]["runs"] == 4


class TestBackpressureAndCoalescing:
    """Handler-level tests: deterministic, no event loop or timing needed."""

    def test_in_flight_cap_rejects_with_429(self):
        server = SimulationServer(backend="serial", max_inflight=1)
        status, first = server._submit(_job(), "client-a")
        assert status == 202 and first["status"] == "queued"
        status, second = server._submit(_job(population=25), "client-a")
        assert status == 429
        assert "retry_after" in second
        assert server.metrics.rejected_backpressure == 1
        # A different client is unaffected by client-a's cap.
        status, other = server._submit(_job(population=25), "client-b")
        assert status == 202

    def test_concurrent_duplicate_coalesces_instead_of_requeueing(self):
        server = SimulationServer(backend="serial", max_inflight=4)
        status, first = server._submit(_job(), "client-a")
        assert status == 202
        status, duplicate = server._submit(_job(), "client-b")
        assert status == 202
        assert duplicate["coalesced"] is True
        assert duplicate["job"] == first["job"]
        assert len(server._pending) == 1
        assert server.metrics.jobs_coalesced == 1

    def test_resubmitting_own_active_job_does_not_hit_the_cap(self):
        server = SimulationServer(backend="serial", max_inflight=1)
        status, first = server._submit(_job(), "client-a")
        assert status == 202
        # The same key again from the same client: coalesce, not 429.
        status, again = server._submit(_job(), "client-a")
        assert status == 202 and again["coalesced"] is True

    def test_draining_server_rejects_submissions(self):
        server = SimulationServer(backend="serial")
        server.request_drain()
        status, body = server._submit(_job(), "client-a")
        assert status == 503
        assert "draining" in body["error"]


class TestServeConfigKnobs:
    def test_defaults_without_environment(self, monkeypatch):
        for var in (
            config.SERVE_HOST_ENV,
            config.SERVE_PORT_ENV,
            config.SERVE_CACHE_SIZE_ENV,
            config.SERVE_MAX_INFLIGHT_ENV,
        ):
            monkeypatch.delenv(var, raising=False)
        assert config.serve_host() == config.DEFAULT_SERVE_HOST
        assert config.serve_port() == config.DEFAULT_SERVE_PORT
        assert config.serve_cache_size() == config.DEFAULT_SERVE_CACHE_SIZE
        assert config.serve_max_inflight() == config.DEFAULT_SERVE_MAX_INFLIGHT

    def test_overrides_are_honored(self, monkeypatch):
        monkeypatch.setenv(config.SERVE_HOST_ENV, "0.0.0.0")
        monkeypatch.setenv(config.SERVE_PORT_ENV, "0")
        monkeypatch.setenv(config.SERVE_CACHE_SIZE_ENV, "5")
        monkeypatch.setenv(config.SERVE_MAX_INFLIGHT_ENV, "2")
        assert config.serve_host() == "0.0.0.0"
        assert config.serve_port() == 0
        assert config.serve_cache_size() == 5
        assert config.serve_max_inflight() == 2

    def test_malformed_values_fail_loudly(self, monkeypatch):
        monkeypatch.setenv(config.SERVE_PORT_ENV, "http")
        with pytest.raises(ValueError, match=config.SERVE_PORT_ENV):
            config.serve_port()
        monkeypatch.setenv(config.SERVE_CACHE_SIZE_ENV, "0")
        with pytest.raises(ValueError, match=config.SERVE_CACHE_SIZE_ENV):
            config.serve_cache_size()
        monkeypatch.setenv(config.SERVE_MAX_INFLIGHT_ENV, "-1")
        with pytest.raises(ValueError, match=config.SERVE_MAX_INFLIGHT_ENV):
            config.serve_max_inflight()

    def test_server_constructor_validates_knobs(self):
        with pytest.raises(ValueError, match="backend"):
            SimulationServer(backend="quantum")
        with pytest.raises(ValueError, match="concurrency"):
            SimulationServer(backend="serial", concurrency=0)
        with pytest.raises(ValueError, match="cache_size"):
            SimulationServer(backend="serial", cache_size=0)
        with pytest.raises(ValueError, match="max_inflight"):
            SimulationServer(backend="serial", max_inflight=0)


class TestResultCacheBounds:
    def test_cache_evicts_least_recently_used(self):
        server = SimulationServer(backend="serial", cache_size=2)
        for population in (10, 11, 12):
            spec = JobSpec.from_dict(_job(population=population))
            server._cache[spec.key] = {"population": population}
            server._cache.move_to_end(spec.key)
            while len(server._cache) > server.cache_size:
                server._cache.popitem(last=False)
        assert len(server._cache) == 2
        oldest = JobSpec.from_dict(_job(population=10))
        status, body = server._job_status(oldest.key)
        assert status == 404
