"""Unit tests for repro.core.semantics (output stability and stable computation)."""

import pytest

from repro.core import (
    OUTPUT_ONE,
    OUTPUT_ZERO,
    PetriNet,
    Protocol,
    always_eventually_stable,
    from_counts,
    is_output_stable,
    output_stable_nodes,
    pairwise,
    stable_consensus_value,
    zero,
)


@pytest.fixture
def threshold_two_protocol():
    """The classical 'two agents meet and accept' protocol for x >= 2."""
    net = PetriNet(
        [
            pairwise(("i", "i"), ("p", "p"), name="accept"),
            pairwise(("p", "i"), ("p", "p"), name="convert"),
        ]
    )
    return Protocol.from_petri_net(
        net,
        leaders=zero(),
        initial_states=["i"],
        output={"i": OUTPUT_ZERO, "p": OUTPUT_ONE},
        name="threshold-2",
    )


class TestOutputStability:
    def test_all_accepting_configuration_is_one_stable(self, threshold_two_protocol):
        assert is_output_stable(threshold_two_protocol, from_counts(p=3), OUTPUT_ONE)

    def test_single_rejecting_agent_is_zero_stable(self, threshold_two_protocol):
        # A single i cannot interact: it stays a 0-consensus forever.
        assert is_output_stable(threshold_two_protocol, from_counts(i=1), OUTPUT_ZERO)

    def test_two_input_agents_are_not_zero_stable(self, threshold_two_protocol):
        assert not is_output_stable(threshold_two_protocol, from_counts(i=2), OUTPUT_ZERO)

    def test_mixed_configuration_not_one_stable_but_can_become(self, threshold_two_protocol):
        configuration = from_counts(p=1, i=1)
        assert not is_output_stable(threshold_two_protocol, configuration, OUTPUT_ZERO)
        # It is 1-stable because every reachable configuration (itself and all-p)
        # must eventually... actually itself has mixed outputs, so it is not 1-stable.
        assert not is_output_stable(threshold_two_protocol, configuration, OUTPUT_ONE)

    def test_zero_configuration_is_zero_stable(self, threshold_two_protocol):
        assert is_output_stable(threshold_two_protocol, zero(), OUTPUT_ZERO)
        assert not is_output_stable(threshold_two_protocol, zero(), OUTPUT_ONE)

    def test_output_stable_nodes_on_graph(self, threshold_two_protocol):
        net = threshold_two_protocol.petri_net
        root = from_counts(i=3)
        graph = net.reachability_graph([root])
        stable_one = output_stable_nodes(graph, threshold_two_protocol, OUTPUT_ONE)
        assert from_counts(p=3) in stable_one
        assert root not in stable_one

    def test_stability_requires_petri_net_protocol(self, threshold_two_protocol):
        from repro.core import RelationPreorder

        protocol = Protocol(
            states=["i"],
            preorder=RelationPreorder(lambda a, b: a == b),
            leaders=zero(),
            initial_states=["i"],
            output={"i": OUTPUT_ZERO},
        )
        with pytest.raises(ValueError):
            is_output_stable(protocol, from_counts(i=1), OUTPUT_ZERO)


class TestStableComputation:
    def test_two_agents_compute_one(self, threshold_two_protocol):
        assert stable_consensus_value(threshold_two_protocol, from_counts(i=2)) == 1

    def test_single_agent_computes_zero(self, threshold_two_protocol):
        assert stable_consensus_value(threshold_two_protocol, from_counts(i=1)) == 0

    def test_empty_input_computes_zero(self, threshold_two_protocol):
        assert stable_consensus_value(threshold_two_protocol, zero()) == 0

    def test_always_eventually_stable_from_every_reachable_configuration(
        self, threshold_two_protocol
    ):
        net = threshold_two_protocol.petri_net
        root = from_counts(i=4)
        graph = net.reachability_graph([root])
        assert always_eventually_stable(graph, threshold_two_protocol, root, OUTPUT_ONE)
        assert not always_eventually_stable(graph, threshold_two_protocol, root, OUTPUT_ZERO)

    def test_ill_specified_protocol_detected(self):
        # A protocol that can commit to either output depending on scheduling:
        # i + i -> p + p (accept) but also i + i -> r + r (reject sink).
        net = PetriNet(
            [
                pairwise(("i", "i"), ("p", "p")),
                pairwise(("i", "i"), ("r", "r")),
            ]
        )
        protocol = Protocol.from_petri_net(
            net,
            leaders=zero(),
            initial_states=["i"],
            output={"i": OUTPUT_ZERO, "p": OUTPUT_ONE, "r": OUTPUT_ZERO},
            name="ill-specified",
        )
        assert stable_consensus_value(protocol, from_counts(i=2)) is None
