"""Shared fixtures for the test suite.

The suite honours the ``REPRO_FORCE_ENGINE`` environment variable (also
consulted by ``Simulator(engine="auto")`` itself): the CI matrix sets it to
``numpy`` to drive every auto-mode simulation — including all the batch and
trajectory tests — through the vectorized engine, proving it is a drop-in
replacement.  The session fixture below validates the value up front and
skips the run with a clear message when the forced engine's optional
dependency is missing, instead of failing every test individually.
"""

import os

import pytest

from repro.simulation.simulator import _ENGINES


@pytest.fixture(scope="session", autouse=True)
def _honour_forced_engine():
    forced = os.environ.get("REPRO_FORCE_ENGINE")
    if forced:
        if forced not in _ENGINES:
            pytest.exit(
                f"REPRO_FORCE_ENGINE must be one of {_ENGINES}, got {forced!r}",
                returncode=4,
            )
        if forced in ("numpy", "ensemble"):
            pytest.importorskip(
                "numpy",
                reason=f"REPRO_FORCE_ENGINE={forced} requires the optional 'sim' extra",
            )
    yield
