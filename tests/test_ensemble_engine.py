"""Tests for the lock-step ensemble engine (repro.simulation.ensemble).

The contract: ``engine="ensemble"`` advances a whole seed list as one
``(reps, states)`` matrix program, and every row is **bit-identical** to a
per-run ``engine="numpy"`` execution with the same derived seed — across all
four paper protocols, both built-in schedulers, ragged retirement (rows
converging at different steps), trajectory recording, analytics extraction
and both batch backends.  Plus the machinery around it: the blocked weight
selection agreeing with the flat scan, the ``Stepper`` protocol conformance
of :class:`VectorizedEnsemble`, engine selection (``auto`` never picks the
ensemble; ``REPRO_FORCE_ENGINE=ensemble`` does), the one-time warning when
the override is shadowed by an explicit engine, and the empty-ensemble edge
agreeing across every entry point.
"""

import random
import warnings

import pytest

from repro.config import FORCE_ENGINE_ENV
from repro.core import Configuration, Protocol, Transition, from_counts
from repro.core.petrinet import PetriNet
from repro.core.protocol import OUTPUT_ONE, OUTPUT_ZERO
from repro.protocols import majority_protocol
from repro.simulation import Simulator, TransitionScheduler, UniformScheduler
from repro.simulation.batch import BatchRunner, WorkerPool, run_ensemble
from repro.simulation.compiled import Stepper
from repro.simulation.vectorized import numpy_available
from repro.sweep.spec import build_protocol_and_inputs

from test_compiled_engine import assert_same_result

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy not installed (the optional 'sim' extra)"
)

PAPER_PROTOCOLS = ("majority", "modulo", "succinct", "flock")


def _run_pair(protocol, inputs, scheduler, reps, seed=99, max_steps=400,
              stability_window=150, **kwargs):
    """Per-run numpy and lock-step ensemble results for identical seeds."""
    results = []
    for engine in ("numpy", "ensemble"):
        simulator = Simulator(
            protocol, scheduler=scheduler, engine=engine, seed=seed
        )
        results.append(
            simulator.run_many(
                inputs, reps, max_steps=max_steps,
                stability_window=stability_window, **kwargs
            )
        )
    return results


def _assert_rows_identical(per_run, ensemble):
    assert len(per_run) == len(ensemble)
    for row_per_run, row_ensemble in zip(per_run, ensemble):
        assert_same_result(row_ensemble, row_per_run)
        assert row_ensemble.trajectory == row_per_run.trajectory
        assert row_ensemble.analytics == row_per_run.analytics


def _multiplicity_protocol():
    """A net with multiplicity-2/3 pre-sets: forces the ragged general path."""
    net = PetriNet(
        [
            Transition({"a": 3}, {"b": 3}, name="triple"),
            Transition({"a": 2, "b": 1}, {"a": 1, "b": 2}, name="mixed"),
            Transition({"b": 2}, {"a": 2}, name="back"),
        ],
        name="multiplicities",
    )
    protocol = Protocol.from_petri_net(
        net,
        leaders=Configuration({}),
        initial_states=["a", "b"],
        output={"a": OUTPUT_ONE, "b": OUTPUT_ZERO},
        name="multiplicities",
    )
    return protocol, Configuration({"a": 9, "b": 4})


@requires_numpy
class TestRowBitIdentity:
    @pytest.mark.parametrize("name", PAPER_PROTOCOLS)
    @pytest.mark.parametrize(
        "scheduler", [UniformScheduler(), TransitionScheduler()],
        ids=["uniform", "transition"],
    )
    def test_paper_protocols_match_per_run_numpy(self, name, scheduler):
        protocol, inputs = build_protocol_and_inputs(name, 60)
        per_run, ensemble = _run_pair(
            protocol, inputs, scheduler, reps=9, record_trajectory=True
        )
        _assert_rows_identical(per_run, ensemble)

    def test_ragged_retirement(self):
        # Rows converge at different steps: compaction must keep every
        # surviving row on its own stream and flush outputs to the right
        # original index.
        protocol, inputs = build_protocol_and_inputs("majority", 40)
        per_run, ensemble = _run_pair(
            protocol, inputs, None, reps=16, max_steps=6000,
            stability_window=60, record_trajectory=True,
        )
        _assert_rows_identical(per_run, ensemble)
        assert len({result.steps for result in ensemble}) > 1

    def test_single_repetition(self):
        protocol, inputs = build_protocol_and_inputs("flock", 30)
        per_run, ensemble = _run_pair(
            protocol, inputs, None, reps=1, record_trajectory=True
        )
        _assert_rows_identical(per_run, ensemble)

    def test_multi_block_random_net(self):
        # A net wide enough for several weight blocks exercises the blocked
        # two-level pick against the per-run flat searchsorted.
        from repro.experiments.experiment_defs import random_interaction_protocol

        protocol, inputs = random_interaction_protocol(1200, random.Random(7))
        per_run, ensemble = _run_pair(
            protocol, inputs, None, reps=5, max_steps=250,
            stability_window=10 ** 9, record_trajectory=True,
        )
        _assert_rows_identical(per_run, ensemble)

    def test_exact_grid_net_keeps_a_dummy_slot(self):
        # 2048 transitions exactly fill the block grid; the layout must grow
        # a spare block so the fast path's dummy weight slot exists.
        from repro.experiments.experiment_defs import random_interaction_protocol

        protocol, inputs = random_interaction_protocol(2048, random.Random(7))
        simulator = Simulator(protocol, engine="ensemble", seed=1)
        tables = simulator._compiled.ensemble_tables()
        assert tables.padded > 2048
        per_run, ensemble = _run_pair(
            protocol, inputs, None, reps=4, max_steps=200,
            stability_window=10 ** 9,
        )
        for row_per_run, row_ensemble in zip(per_run, ensemble):
            assert_same_result(row_ensemble, row_per_run)

    def test_multiplicity_nets_use_the_general_path(self):
        protocol, inputs = _multiplicity_protocol()
        simulator = Simulator(protocol, engine="ensemble", seed=5)
        assert not simulator._compiled.ensemble_tables().fast_uniform
        for scheduler in (None, TransitionScheduler()):
            per_run, ensemble = _run_pair(
                protocol, inputs, scheduler, reps=8, max_steps=500,
                stability_window=10 ** 9, record_trajectory=True,
            )
            _assert_rows_identical(per_run, ensemble)

    def test_analytics_metric_dicts_match(self):
        from repro.analytics.metrics import AnalyticsSpec

        protocol, inputs = build_protocol_and_inputs("majority", 40)
        spec = AnalyticsSpec(curve_checkpoints=(0, 50, 200), expected_output=1)
        per_run, ensemble = _run_pair(
            protocol, inputs, None, reps=6, max_steps=4000,
            stability_window=100, analytics=spec,
        )
        _assert_rows_identical(per_run, ensemble)
        assert all(result.analytics is not None for result in ensemble)

    def test_single_run_uses_the_per_run_stepper(self):
        # Simulator.run under engine="ensemble" goes through the per-run
        # numpy stepper; the trajectory must equal the numpy engine's.
        protocol, inputs = build_protocol_and_inputs("modulo", 30)
        fast = Simulator(protocol, engine="numpy", seed=3).run(
            inputs, max_steps=500, record_trajectory=True
        )
        lock_step = Simulator(protocol, engine="ensemble", seed=3).run(
            inputs, max_steps=500, record_trajectory=True
        )
        assert_same_result(lock_step, fast)
        assert lock_step.trajectory == fast.trajectory


@requires_numpy
class TestBatchIntegration:
    def test_backends_agree(self):
        protocol, inputs = build_protocol_and_inputs("majority", 30)
        seeds = [11, 22, 33, 44, 55]
        serial = run_ensemble(
            protocol, inputs, seeds, engine="ensemble", max_steps=3000
        )
        process = run_ensemble(
            protocol, inputs, seeds, engine="ensemble", max_steps=3000,
            backend="process", max_workers=2,
        )
        assert len(serial) == len(process) == len(seeds)
        for serial_result, process_result in zip(serial, process):
            assert_same_result(process_result, serial_result)

    def test_batch_runner_matches_simulator_run_many(self):
        protocol, inputs = build_protocol_and_inputs("flock", 24)
        direct = Simulator(protocol, engine="ensemble", seed=17).run_many(
            inputs, 6, max_steps=3000
        )
        with BatchRunner(protocol, engine="ensemble") as runner:
            batched = runner.run_many(inputs, 6, seed=17, max_steps=3000)
        for direct_result, batched_result in zip(direct, batched):
            assert_same_result(batched_result, direct_result)

    def test_empty_ensembles_agree_across_entry_points(self):
        protocol, inputs = build_protocol_and_inputs("majority", 20)
        assert Simulator(protocol, engine="ensemble", seed=0).run_many(
            inputs, 0
        ) == []
        assert run_ensemble(
            protocol, inputs, [], engine="ensemble", backend="process"
        ) == []
        with WorkerPool(max_workers=1) as pool:
            assert pool.run_seeds(protocol, inputs, [], engine="ensemble") == []
        with BatchRunner(protocol, engine="ensemble", backend="process") as runner:
            assert runner.run_seeds(inputs, []) == []

    def test_empty_ensemble_still_validates_the_spec(self):
        # An empty seed list must not silently accept a spec every non-empty
        # call would reject — all entry points raise the same way.
        protocol, inputs = build_protocol_and_inputs("majority", 20)
        with pytest.raises(ValueError):
            run_ensemble(protocol, inputs, [], engine="warp")
        with WorkerPool(max_workers=1) as pool:
            with pytest.raises(ValueError):
                pool.run_seeds(protocol, inputs, [], engine="warp")


@requires_numpy
class TestEngineSelection:
    def test_auto_never_picks_the_ensemble(self, monkeypatch):
        monkeypatch.delenv(FORCE_ENGINE_ENV, raising=False)
        from repro.experiments.experiment_defs import random_interaction_protocol

        protocol, _ = random_interaction_protocol(600, random.Random(3))
        simulator = Simulator(protocol, seed=0)
        assert simulator._choice in ("compiled", "numpy")

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_force_engine_env_selects_the_ensemble(self, monkeypatch):
        monkeypatch.setenv(FORCE_ENGINE_ENV, "ensemble")
        simulator = Simulator(majority_protocol(), seed=0)
        assert simulator._choice == "ensemble"
        per_run = Simulator(majority_protocol(), engine="numpy", seed=12).run_many(
            from_counts(A=9, B=6), 4, max_steps=2000
        )
        forced = Simulator(majority_protocol(), seed=12).run_many(
            from_counts(A=9, B=6), 4, max_steps=2000
        )
        for per_run_result, forced_result in zip(per_run, forced):
            assert_same_result(forced_result, per_run_result)

    def test_shadowed_override_warns_once_per_pair(self, monkeypatch):
        import repro.config as config

        monkeypatch.setenv(FORCE_ENGINE_ENV, "numpy")
        monkeypatch.setattr(config, "_IGNORED_FORCE_WARNED", set())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Simulator(majority_protocol(), engine="ensemble", seed=0)
            Simulator(majority_protocol(), engine="ensemble", seed=1)
        runtime_warnings = [
            warning for warning in caught
            if issubclass(warning.category, RuntimeWarning)
        ]
        assert len(runtime_warnings) == 1
        message = str(runtime_warnings[0].message)
        assert "REPRO_FORCE_ENGINE=numpy" in message
        assert "ensemble" in message

    def test_matching_override_stays_silent(self, monkeypatch):
        import repro.config as config

        monkeypatch.setenv(FORCE_ENGINE_ENV, "ensemble")
        monkeypatch.setattr(config, "_IGNORED_FORCE_WARNED", set())
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            Simulator(majority_protocol(), engine="ensemble", seed=0)
        assert not [
            warning for warning in caught
            if issubclass(warning.category, RuntimeWarning)
        ]

    def test_invalid_override_rejected_for_explicit_engines(self, monkeypatch):
        monkeypatch.setenv(FORCE_ENGINE_ENV, "warp")
        with pytest.raises(ValueError, match="REPRO_FORCE_ENGINE"):
            Simulator(majority_protocol(), engine="numpy", seed=0)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            Simulator(majority_protocol(), engine="warp", seed=0)


@requires_numpy
class TestStepperProtocol:
    def test_ensemble_satisfies_the_stepper_protocol(self):
        from repro.simulation.ensemble import VectorizedEnsemble

        simulator = Simulator(majority_protocol(), engine="ensemble", seed=0)
        ensemble = VectorizedEnsemble(
            simulator._compiled, "uniform", simulator._classes
        )
        assert isinstance(ensemble, Stepper)
        assert ensemble.source() is None
        assert ensemble.qa_meta["implementation"] == "numpy-ensemble"
        assert ensemble.qa_meta["kind"] == "uniform"

    def test_tables_are_cached_and_dropped_on_pickle(self):
        import pickle

        simulator = Simulator(majority_protocol(), engine="ensemble", seed=0)
        net = simulator._compiled
        tables = net.ensemble_tables()
        assert net.ensemble_tables() is tables
        clone = pickle.loads(pickle.dumps(net))
        assert clone._ensemble_tables is None
        rebuilt = clone.ensemble_tables()
        assert rebuilt.num_blocks == tables.num_blocks
        assert rebuilt.block == tables.block

    def test_blocked_layout_covers_the_net(self):
        import numpy as np

        from repro.experiments.experiment_defs import random_interaction_protocol

        for num_transitions in (1, 5, 33, 700, 1200):
            protocol, _ = random_interaction_protocol(
                num_transitions, random.Random(num_transitions)
            )
            net = Simulator(protocol, engine="ensemble", seed=0)._compiled
            tables = net.ensemble_tables()
            assert tables.padded >= tables.num_blocks * tables.block
            assert tables.padded > net.num_transitions
            assert tables.block == 1 << tables.block_shift
            assert 2 * tables.block * tables.block >= net.num_transitions
            assert int(np.sum(tables.a_len)) == sum(
                len(affected) for affected in net.affected
            )
